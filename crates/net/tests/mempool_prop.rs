//! Property tests over the mempool: size bounds, replace-by-fee
//! monotonicity, per-sender nonce-chain integrity, and visibility
//! consistency with the gossip graph.

use mev_net::{Mempool, Network};
use mev_types::{gwei, Action, Address, Gas, Transaction, TxFee, Wei};
use proptest::prelude::*;

fn tx(from: u64, nonce: u64, price_gwei: u128) -> Transaction {
    Transaction::new(
        Address::from_index(from),
        nonce,
        TxFee::Legacy {
            gas_price: gwei(price_gwei),
        },
        Gas(21_000),
        Action::Other { gas: Gas(21_000) },
        Wei::ZERO,
        None,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pool never exceeds its capacity, and whatever survives a storm
    /// of inserts is exactly retrievable: contains(hash) ⇔ iter() yields it.
    #[test]
    fn capacity_and_membership_consistency(
        inserts in proptest::collection::vec((0u64..6, 0u64..4, 1u128..200), 1..120),
        cap in 1usize..40,
    ) {
        let mut pool = Mempool::new(cap);
        for (from, nonce, price) in inserts {
            let _ = pool.insert(tx(from, nonce, price), 0, 0);
            prop_assert!(pool.len() <= cap);
        }
        let iterated: std::collections::HashSet<_> =
            pool.iter().map(|p| p.tx.hash()).collect();
        prop_assert_eq!(iterated.len(), pool.len());
        for h in &iterated {
            prop_assert!(pool.contains(*h));
        }
        // Per-sender pending counts sum to the pool size.
        let senders: std::collections::HashSet<_> = pool.iter().map(|p| p.tx.from).collect();
        let sum: usize = senders.iter().map(|&s| pool.pending_count(s)).sum();
        prop_assert_eq!(sum, pool.len());
    }

    /// Replace-by-fee can only ever increase the resident bid for a
    /// (sender, nonce) slot, and never duplicates the slot.
    #[test]
    fn rbf_is_monotone(prices in proptest::collection::vec(1u128..10_000, 1..30)) {
        let mut pool = Mempool::new(100);
        let mut best: Option<u128> = None;
        for p in prices {
            let accepted = pool.insert(tx(1, 0, p), 0, 0).is_ok();
            match best {
                None => {
                    prop_assert!(accepted, "first insert always lands");
                    best = Some(p);
                }
                Some(b) => {
                    // The 10 % bump rule.
                    let required = b + b / 10;
                    if p >= required && accepted {
                        best = Some(p);
                    } else {
                        prop_assert!(!accepted || p >= required);
                    }
                }
            }
            // Exactly one resident for the slot.
            prop_assert_eq!(pool.pending_count(Address::from_index(1)), 1);
            let resident = pool.iter().next().expect("one resident").tx.bid_per_gas();
            prop_assert_eq!(resident, gwei(best.expect("set")));
        }
    }

    /// prune_sender removes exactly the sub-nonce entries.
    #[test]
    fn prune_is_exact(nonces in proptest::collection::hash_set(0u64..30, 1..20), cut in 0u64..35) {
        let mut pool = Mempool::new(100);
        for &n in &nonces {
            pool.insert(tx(1, n, 50), 0, 0).unwrap();
        }
        pool.prune_sender(Address::from_index(1), cut);
        let remaining: std::collections::HashSet<u64> =
            pool.iter().map(|p| p.tx.nonce).collect();
        let expected: std::collections::HashSet<u64> =
            nonces.iter().copied().filter(|&n| n >= cut).collect();
        prop_assert_eq!(remaining, expected);
    }

    /// Visibility is monotone in time and converges to the full pool.
    #[test]
    fn visibility_monotone_in_time(
        subs in proptest::collection::vec((0u64..8, 0usize..6, 0u64..5_000), 1..25),
    ) {
        let net = Network::uniform(6, 250);
        let mut pool = Mempool::new(100);
        for (i, (from, origin, t)) in subs.iter().enumerate() {
            let _ = pool.insert(tx(*from, i as u64, 50), origin % 6, *t);
        }
        let mut prev = 0;
        for t in [0u64, 1_000, 2_500, 5_000, 10_000] {
            let visible = pool.visible_at(&net, 3, t).len();
            prop_assert!(visible >= prev, "visibility can only grow");
            prev = visible;
        }
        prop_assert_eq!(prev, pool.len(), "everything visible eventually");
    }
}
