//! The public mempool: pending transactions with replace-by-fee,
//! per-sender nonce chains, fee-based eviction, and time-of-visibility
//! queries against the gossip graph.
//!
//! "The mempool has no blockchain-like guarantees of consistency" (§2.1) —
//! each node sees transactions at different times; this implementation
//! keeps one logical pool plus per-transaction origin/submit-time so any
//! node's view at any instant can be reconstructed.

use crate::gossip::{Network, NodeId};
use mev_types::{Address, Transaction, TxHash, Wei};
use std::collections::{BTreeMap, HashMap};

/// A pending transaction with its propagation coordinates.
#[derive(Debug, Clone)]
pub struct PendingTx {
    pub tx: Transaction,
    /// Node where the transaction was first submitted.
    pub origin: NodeId,
    /// Submission time, ms since epoch.
    pub submit_ms: u64,
}

/// Why an insertion was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MempoolError {
    /// Same (sender, nonce) already pending at a fee the newcomer does not
    /// beat by the replacement bump (10 %).
    ReplacementUnderpriced,
    /// Pool full and the newcomer's bid is below the cheapest resident.
    FeeTooLowToEvict,
}

/// The public mempool.
#[derive(Debug, Clone)]
pub struct Mempool {
    txs: HashMap<TxHash, PendingTx>,
    /// sender → nonce → hash.
    by_sender: HashMap<Address, BTreeMap<u64, TxHash>>,
    max_size: usize,
}

/// Required fee bump for replace-by-fee, in percent.
const REPLACEMENT_BUMP_PCT: u128 = 10;

impl Mempool {
    pub fn new(max_size: usize) -> Mempool {
        assert!(max_size > 0);
        Mempool {
            txs: HashMap::new(),
            by_sender: HashMap::new(),
            max_size,
        }
    }

    pub fn len(&self) -> usize {
        self.txs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    pub fn contains(&self, hash: TxHash) -> bool {
        self.txs.contains_key(&hash)
    }

    pub fn get(&self, hash: TxHash) -> Option<&PendingTx> {
        self.txs.get(&hash)
    }

    /// Submit a transaction at `origin` at time `submit_ms`.
    pub fn insert(
        &mut self,
        tx: Transaction,
        origin: NodeId,
        submit_ms: u64,
    ) -> Result<(), MempoolError> {
        // Replace-by-fee on (sender, nonce).
        if let Some(&existing_hash) = self.by_sender.get(&tx.from).and_then(|m| m.get(&tx.nonce)) {
            let existing_bid = self.txs[&existing_hash].tx.bid_per_gas();
            let required = Wei(existing_bid.0 + existing_bid.0 * REPLACEMENT_BUMP_PCT / 100);
            if tx.bid_per_gas() < required {
                return Err(MempoolError::ReplacementUnderpriced);
            }
            self.remove(existing_hash);
        }
        // Eviction when full: drop the cheapest resident if the newcomer
        // outbids it, otherwise reject.
        if self.txs.len() >= self.max_size {
            let cheapest = self
                .txs
                .values()
                .min_by_key(|p| (p.tx.bid_per_gas(), p.tx.hash()))
                .map(|p| (p.tx.hash(), p.tx.bid_per_gas()))
                // lint:allow(panic: cannot fail — guarded by the len >= max_size check above)
                .expect("non-empty");
            if tx.bid_per_gas() <= cheapest.1 {
                return Err(MempoolError::FeeTooLowToEvict);
            }
            self.remove(cheapest.0);
        }
        let hash = tx.hash();
        self.by_sender
            .entry(tx.from)
            .or_default()
            .insert(tx.nonce, hash);
        self.txs.insert(
            hash,
            PendingTx {
                tx,
                origin,
                submit_ms,
            },
        );
        Ok(())
    }

    /// Remove one transaction.
    pub fn remove(&mut self, hash: TxHash) -> Option<PendingTx> {
        let p = self.txs.remove(&hash)?;
        if let Some(m) = self.by_sender.get_mut(&p.tx.from) {
            m.remove(&p.tx.nonce);
            if m.is_empty() {
                self.by_sender.remove(&p.tx.from);
            }
        }
        Some(p)
    }

    /// Drop transactions made stale by on-chain nonces: any pending tx of
    /// `sender` with nonce `< next_nonce`.
    pub fn prune_sender(&mut self, sender: Address, next_nonce: u64) {
        let stale: Vec<TxHash> = self
            .by_sender
            .get(&sender)
            .map(|m| m.range(..next_nonce).map(|(_, &h)| h).collect())
            .unwrap_or_default();
        for h in stale {
            self.remove(h);
        }
    }

    /// The mempool as seen from `node` at `now_ms`: every pending tx whose
    /// gossip wavefront has reached the node.
    pub fn visible_at(&self, network: &Network, node: NodeId, now_ms: u64) -> Vec<&PendingTx> {
        let mut v: Vec<&PendingTx> = self
            .txs
            .values()
            .filter(|p| network.arrival_ms(p.origin, node, p.submit_ms) <= now_ms)
            .collect();
        // Deterministic order: descending bid, then hash.
        v.sort_by(|a, b| {
            b.tx.bid_per_gas()
                .cmp(&a.tx.bid_per_gas())
                .then_with(|| a.tx.hash().cmp(&b.tx.hash()))
        });
        v
    }

    /// Iterate all pending transactions (no visibility filter).
    pub fn iter(&self) -> impl Iterator<Item = &PendingTx> {
        self.txs.values()
    }

    /// Number of pending transactions from one sender (the nonce-chain
    /// length a new submission must append after).
    pub fn pending_count(&self, sender: Address) -> usize {
        self.by_sender.get(&sender).map(|m| m.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{gwei, Action, Gas, TxFee};

    fn tx(from: u64, nonce: u64, price: Wei) -> Transaction {
        Transaction::new(
            Address::from_index(from),
            nonce,
            TxFee::Legacy { gas_price: price },
            Gas(21_000),
            Action::Other { gas: Gas(21_000) },
            Wei::ZERO,
            None,
        )
    }

    #[test]
    fn insert_and_lookup() {
        let mut m = Mempool::new(100);
        let t = tx(1, 0, gwei(50));
        let h = t.hash();
        m.insert(t, 0, 1000).unwrap();
        assert!(m.contains(h));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(h).unwrap().submit_ms, 1000);
    }

    #[test]
    fn replace_by_fee_requires_bump() {
        let mut m = Mempool::new(100);
        m.insert(tx(1, 0, gwei(100)), 0, 0).unwrap();
        // +9 % rejected.
        assert_eq!(
            m.insert(tx(1, 0, gwei(109)), 0, 0),
            Err(MempoolError::ReplacementUnderpriced)
        );
        // +10 % accepted, replacing the old one.
        m.insert(tx(1, 0, gwei(110)), 0, 0).unwrap();
        assert_eq!(m.len(), 1);
        let only = m.iter().next().unwrap();
        assert_eq!(only.tx.bid_per_gas(), gwei(110));
    }

    #[test]
    fn eviction_when_full() {
        let mut m = Mempool::new(2);
        m.insert(tx(1, 0, gwei(10)), 0, 0).unwrap();
        m.insert(tx(2, 0, gwei(20)), 0, 0).unwrap();
        // Cheaper than the floor: rejected.
        assert_eq!(
            m.insert(tx(3, 0, gwei(10)), 0, 0),
            Err(MempoolError::FeeTooLowToEvict)
        );
        // Richer: evicts the gwei(10) tx.
        m.insert(tx(3, 0, gwei(30)), 0, 0).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|p| p.tx.bid_per_gas() >= gwei(20)));
    }

    #[test]
    fn prune_sender_drops_stale_nonces() {
        let mut m = Mempool::new(100);
        for n in 0..5 {
            m.insert(tx(1, n, gwei(50)), 0, 0).unwrap();
        }
        m.prune_sender(Address::from_index(1), 3);
        assert_eq!(m.len(), 2);
        let nonces: Vec<_> = m.iter().map(|p| p.tx.nonce).collect();
        assert!(nonces.contains(&3) && nonces.contains(&4));
    }

    #[test]
    fn visibility_respects_gossip_latency() {
        let net = Network::uniform(3, 100);
        let mut m = Mempool::new(100);
        m.insert(tx(1, 0, gwei(50)), 0, 1_000).unwrap();
        // At origin: visible immediately.
        assert_eq!(m.visible_at(&net, 0, 1_000).len(), 1);
        // Remote node: not yet at t=1050, visible at t=1100.
        assert_eq!(m.visible_at(&net, 1, 1_050).len(), 0);
        assert_eq!(m.visible_at(&net, 1, 1_100).len(), 1);
    }

    #[test]
    fn visible_ordering_is_fee_descending() {
        let net = Network::uniform(2, 1);
        let mut m = Mempool::new(100);
        m.insert(tx(1, 0, gwei(10)), 0, 0).unwrap();
        m.insert(tx(2, 0, gwei(90)), 0, 0).unwrap();
        m.insert(tx(3, 0, gwei(40)), 0, 0).unwrap();
        let bids: Vec<_> = m
            .visible_at(&net, 1, 10)
            .iter()
            .map(|p| p.tx.bid_per_gas())
            .collect();
        assert_eq!(bids, vec![gwei(90), gwei(40), gwei(10)]);
    }

    #[test]
    fn remove_clears_sender_index() {
        let mut m = Mempool::new(100);
        let t = tx(1, 0, gwei(50));
        let h = t.hash();
        m.insert(t, 0, 0).unwrap();
        m.remove(h).unwrap();
        assert!(m.is_empty());
        // Re-inserting the same (sender, nonce) works without RBF check.
        m.insert(tx(1, 0, gwei(10)), 0, 0).unwrap();
    }
}
