//! Propagation measurement — the Kiffer et al. style analysis the paper
//! leans on for §6.1's key assumption ("our node saw the vast majority of
//! transactions propagated through the network").
//!
//! Given the gossip graph, compute how node coverage grows with time after
//! a transaction is submitted, and in particular how long until a specific
//! observer node is reached — the window in which a frontrunner can act on
//! a transaction the observer has not yet seen.

use crate::gossip::{Network, NodeId};

/// Coverage curve: for each checkpoint `t_ms`, the fraction of nodes a
/// message from `origin` has reached by `t_ms`.
pub fn coverage_curve(network: &Network, origin: NodeId, checkpoints_ms: &[u64]) -> Vec<f64> {
    let n = network.len() as f64;
    checkpoints_ms
        .iter()
        .map(|&t| {
            let reached = (0..network.len())
                .filter(|&node| network.latency_ms(origin, node) <= t)
                .count();
            reached as f64 / n
        })
        .collect()
}

/// Time for a message from `origin` to reach `fraction` of all nodes.
pub fn time_to_coverage_ms(network: &Network, origin: NodeId, fraction: f64) -> u64 {
    assert!((0.0..=1.0).contains(&fraction));
    let mut delays: Vec<u64> = (0..network.len())
        .map(|node| network.latency_ms(origin, node))
        .collect();
    delays.sort_unstable();
    let k = ((network.len() as f64 * fraction).ceil() as usize).clamp(1, network.len());
    delays[k - 1]
}

/// Worst-case delay from any origin to the observer: an upper bound on how
/// stale the observer's pending view can be for propagating transactions.
pub fn observer_max_lag_ms(network: &Network, observer: NodeId) -> u64 {
    (0..network.len())
        .map(|origin| network.latency_ms(origin, observer))
        .max()
        .unwrap_or(0)
}

/// Fraction of (origin, submit-offset) combinations whose transaction
/// reaches the observer before a block built `block_interval_ms` after
/// submission — an analytic estimate of observer coverage for uniformly
/// timed submissions.
pub fn expected_observer_coverage(
    network: &Network,
    observer: NodeId,
    block_interval_ms: u64,
) -> f64 {
    if block_interval_ms == 0 {
        return 0.0;
    }
    // A tx submitted at uniform offset u in [0, interval) from origin o is
    // seen before the block if latency(o, observer) <= interval - u.
    // Integrating over u: P(seen | o) = max(0, 1 - latency / interval).
    let n = network.len() as f64;
    (0..network.len())
        .map(|o| {
            let l = network.latency_ms(o, observer) as f64;
            (1.0 - l / block_interval_ms as f64).max(0.0)
        })
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coverage_curve_is_monotone_and_complete() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::random(30, 60, (5, 50), &mut rng);
        let cps = [0u64, 10, 25, 50, 100, 1_000];
        let curve = coverage_curve(&net, 0, &cps);
        assert_eq!(curve.len(), cps.len());
        for w in curve.windows(2) {
            assert!(w[0] <= w[1], "monotone");
        }
        assert!(curve[0] >= 1.0 / 30.0, "origin always reached at t=0");
        assert_eq!(curve[cps.len() - 1], 1.0, "full coverage eventually");
    }

    #[test]
    fn time_to_coverage_brackets_the_curve() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = Network::random(25, 40, (5, 50), &mut rng);
        let t50 = time_to_coverage_ms(&net, 0, 0.5);
        let t99 = time_to_coverage_ms(&net, 0, 0.99);
        assert!(t50 <= t99);
        let at_t50 = coverage_curve(&net, 0, &[t50])[0];
        assert!(at_t50 >= 0.5);
        assert_eq!(time_to_coverage_ms(&net, 0, 0.0), 0, "self counts");
    }

    #[test]
    fn observer_lag_is_the_eclipse_bound() {
        let net = Network::uniform(8, 40);
        assert_eq!(observer_max_lag_ms(&net, 0), 40);
    }

    #[test]
    fn expected_coverage_rises_with_block_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = Network::random(30, 60, (5, 150), &mut rng);
        let fast = expected_observer_coverage(&net, 0, 200);
        let slow = expected_observer_coverage(&net, 0, 13_000);
        assert!(fast < slow);
        assert!(slow > 0.97, "13 s blocks ⇒ near-complete coverage: {slow}");
        assert_eq!(expected_observer_coverage(&net, 0, 0), 0.0);
    }

    #[test]
    fn uniform_network_coverage_closed_form() {
        // latency 100 everywhere, interval 1000: P(seen) = 0.9 for remote
        // origins, 1.0 for self ⇒ (1 + 7·0.9)/8.
        let net = Network::uniform(8, 100);
        let got = expected_observer_coverage(&net, 0, 1_000);
        let expect = (1.0 + 7.0 * 0.9) / 8.0;
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }
}
