//! # mev-net
//!
//! The peer-to-peer layer: a latency-weighted gossip graph, the public
//! mempool with replace-by-fee and fee-based eviction, and the
//! pending-transaction observer that plays the role of the paper's
//! measurement node (§3.2 — `web3.eth.subscribe("pendingTransactions")`).
//!
//! Private submission paths (Flashbots bundles, other private pools) do
//! not traverse this layer at all — that is precisely what makes them
//! private, and what the intersection analysis of §6.1 detects.

pub mod gossip;
pub mod mempool;
pub mod observer;
pub mod propagation;

pub use gossip::{Network, NodeId};
pub use mempool::{Mempool, MempoolError, PendingTx};
pub use observer::{ObservedTx, Observer};
pub use propagation::{
    coverage_curve, expected_observer_coverage, observer_max_lag_ms, time_to_coverage_ms,
};
