//! The gossip graph: a connected random topology with per-edge latencies,
//! reduced to an all-pairs propagation-delay matrix.
//!
//! Ethereum gossip floods transactions peer-to-peer; what matters for MEV
//! measurement is *when* a transaction becomes visible at each node
//! relative to block production (§2.4). With ~13 s blocks and millisecond
//! link latencies, propagation completes well within a block — except for
//! transactions submitted in the final moments, which is exactly the race
//! frontrunners exploit. The delay matrix makes that race explicit.

use rand::rngs::StdRng;
use rand::Rng;

/// Index of a node in the gossip graph.
pub type NodeId = usize;

/// A static gossip topology with shortest-path propagation delays.
#[derive(Debug, Clone)]
pub struct Network {
    n: usize,
    /// All-pairs propagation delay in milliseconds.
    dist_ms: Vec<Vec<u64>>,
}

impl Network {
    /// Build a random connected graph: a ring (guaranteeing connectivity)
    /// plus `extra_edges` random chords, with link latencies drawn
    /// uniformly from `latency_range` milliseconds.
    pub fn random(
        n: usize,
        extra_edges: usize,
        latency_range: (u64, u64),
        rng: &mut StdRng,
    ) -> Network {
        assert!(n >= 2, "need at least two nodes");
        assert!(latency_range.0 > 0 && latency_range.0 <= latency_range.1);
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let add_edge = |adj: &mut Vec<Vec<(usize, u64)>>, a: usize, b: usize, w: u64| {
            adj[a].push((b, w));
            adj[b].push((a, w));
        };
        for i in 0..n {
            let w = rng.gen_range(latency_range.0..=latency_range.1);
            add_edge(&mut adj, i, (i + 1) % n, w);
        }
        for _ in 0..extra_edges {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let w = rng.gen_range(latency_range.0..=latency_range.1);
                add_edge(&mut adj, a, b, w);
            }
        }
        let dist_ms = (0..n).map(|src| dijkstra(&adj, src)).collect();
        Network { n, dist_ms }
    }

    /// A fully-connected network with uniform latency (tests).
    pub fn uniform(n: usize, latency_ms: u64) -> Network {
        let dist_ms = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { 0 } else { latency_ms })
                    .collect()
            })
            .collect();
        Network { n, dist_ms }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Propagation delay between two nodes in milliseconds.
    pub fn latency_ms(&self, from: NodeId, to: NodeId) -> u64 {
        self.dist_ms[from][to]
    }

    /// Time (ms since epoch) a message sent from `origin` at `t_ms`
    /// becomes visible at `node`.
    pub fn arrival_ms(&self, origin: NodeId, node: NodeId, t_ms: u64) -> u64 {
        t_ms + self.latency_ms(origin, node)
    }

    /// Worst-case propagation delay from `origin` to any node.
    pub fn eclipse_ms(&self, origin: NodeId) -> u64 {
        self.dist_ms[origin].iter().copied().max().unwrap_or(0)
    }
}

/// Textbook Dijkstra over the adjacency list.
fn dijkstra(adj: &[Vec<(usize, u64)>], src: usize) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![u64::MAX; adj.len()];
    dist[src] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_network_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Network::random(50, 100, (5, 50), &mut rng);
        for i in 0..50 {
            for j in 0..50 {
                assert!(net.latency_ms(i, j) < u64::MAX, "disconnected {i}->{j}");
            }
        }
    }

    #[test]
    fn latency_is_symmetric_and_zero_on_diagonal() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::random(20, 30, (5, 50), &mut rng);
        for i in 0..20 {
            assert_eq!(net.latency_ms(i, i), 0);
            for j in 0..20 {
                assert_eq!(net.latency_ms(i, j), net.latency_ms(j, i));
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::random(15, 20, (5, 50), &mut rng);
        for a in 0..15 {
            for b in 0..15 {
                for c in 0..15 {
                    assert!(net.latency_ms(a, c) <= net.latency_ms(a, b) + net.latency_ms(b, c));
                }
            }
        }
    }

    #[test]
    fn arrival_adds_latency() {
        let net = Network::uniform(4, 100);
        assert_eq!(net.arrival_ms(0, 1, 5_000), 5_100);
        assert_eq!(net.arrival_ms(2, 2, 5_000), 5_000);
        assert_eq!(net.eclipse_ms(0), 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Network::random(10, 10, (5, 50), &mut StdRng::seed_from_u64(42));
        let b = Network::random(10, 10, (5, 50), &mut StdRng::seed_from_u64(42));
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(a.latency_ms(i, j), b.latency_ms(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_network_panics() {
        Network::random(1, 0, (5, 50), &mut StdRng::seed_from_u64(0));
    }
}
