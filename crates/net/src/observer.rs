//! The measurement vantage point: a node subscribed to pending
//! transactions, recording everything it sees during a collection window.
//!
//! Mirrors §3.2 of the paper (125.6 M pending transactions collected over
//! five months via `web3.eth.subscribe("pendingTransactions")`). The
//! observer's *coverage* is imperfect — the paper assumes its node "saw
//! the vast majority of transactions" — so a configurable per-transaction
//! miss probability models subscription drops, and the private-inference
//! sensitivity ablation sweeps it.

use crate::gossip::{Network, NodeId};
use mev_types::TxHash;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// One observed pending transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedTx {
    pub hash: TxHash,
    /// When the subscription delivered it (ms since epoch).
    pub seen_ms: u64,
}

/// A pending-transaction observer attached to one gossip node.
#[derive(Debug, Clone)]
pub struct Observer {
    node: NodeId,
    /// Collection window (ms since epoch, inclusive).
    window: (u64, u64),
    /// Probability a delivered transaction is missed (subscription drop).
    miss_rate: f64,
    seen: HashMap<TxHash, u64>,
    /// Count of transactions dropped by the miss model.
    pub dropped: u64,
}

impl Observer {
    /// Create an observer at `node` for the given window.
    pub fn new(node: NodeId, window: (u64, u64), miss_rate: f64) -> Observer {
        assert!(window.0 <= window.1, "inverted window");
        assert!(
            (0.0..1.0).contains(&miss_rate),
            "miss rate must be in [0,1)"
        );
        Observer {
            node,
            window,
            miss_rate,
            seen: HashMap::new(),
            dropped: 0,
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn window(&self) -> (u64, u64) {
        self.window
    }

    /// Effective coverage: `1 − miss_rate`.
    pub fn coverage(&self) -> f64 {
        1.0 - self.miss_rate
    }

    /// Offer a publicly gossiped transaction: the observer records it if
    /// its arrival at the observer's node falls inside the window and the
    /// miss model doesn't drop it.
    pub fn offer(
        &mut self,
        network: &Network,
        hash: TxHash,
        origin: NodeId,
        submit_ms: u64,
        rng: &mut StdRng,
    ) {
        let arrival = network.arrival_ms(origin, self.node, submit_ms);
        if arrival < self.window.0 || arrival > self.window.1 {
            return;
        }
        if self.miss_rate > 0.0 && rng.gen_bool(self.miss_rate) {
            self.dropped += 1;
            return;
        }
        self.seen.entry(hash).or_insert(arrival);
    }

    /// Was this hash observed as pending? The §6.1 membership test:
    /// a mined transaction never observed pending is *private*.
    pub fn saw(&self, hash: TxHash) -> bool {
        self.seen.contains_key(&hash)
    }

    /// When the hash was first seen, if at all.
    pub fn first_seen_ms(&self, hash: TxHash) -> Option<u64> {
        self.seen.get(&hash).copied()
    }

    /// Number of distinct transactions observed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::H256;
    use rand::SeedableRng;

    fn hash(i: u8) -> TxHash {
        let mut b = [0u8; 32];
        b[0] = i;
        H256(b)
    }

    #[test]
    fn records_inside_window_only() {
        let net = Network::uniform(2, 100);
        let mut rng = StdRng::seed_from_u64(0);
        let mut o = Observer::new(0, (1_000, 2_000), 0.0);
        // Arrives at 950: before window.
        o.offer(&net, hash(1), 1, 850, &mut rng);
        // Arrives at 1_500: inside.
        o.offer(&net, hash(2), 1, 1_400, &mut rng);
        // Arrives at 2_100: after.
        o.offer(&net, hash(3), 1, 2_000, &mut rng);
        assert!(!o.saw(hash(1)));
        assert!(o.saw(hash(2)));
        assert!(!o.saw(hash(3)));
        assert_eq!(o.first_seen_ms(hash(2)), Some(1_500));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn zero_miss_rate_sees_everything_in_window() {
        let net = Network::uniform(2, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut o = Observer::new(0, (0, u64::MAX), 0.0);
        for i in 0..100 {
            o.offer(&net, hash(i), 1, 100, &mut rng);
        }
        assert_eq!(o.len(), 100);
        assert_eq!(o.dropped, 0);
    }

    #[test]
    fn miss_rate_drops_roughly_that_fraction() {
        let net = Network::uniform(2, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut o = Observer::new(0, (0, u64::MAX), 0.2);
        for i in 0..200u64 {
            let mut b = [0u8; 32];
            b[..8].copy_from_slice(&i.to_be_bytes());
            o.offer(&net, H256(b), 1, 100, &mut rng);
        }
        let miss = o.dropped as f64 / 200.0;
        assert!((0.1..0.3).contains(&miss), "miss fraction {miss}");
        assert_eq!(o.len() as u64 + o.dropped, 200);
    }

    #[test]
    fn duplicate_offers_keep_first_seen() {
        let net = Network::uniform(2, 10);
        let mut rng = StdRng::seed_from_u64(0);
        let mut o = Observer::new(0, (0, u64::MAX), 0.0);
        o.offer(&net, hash(1), 1, 500, &mut rng);
        o.offer(&net, hash(1), 1, 900, &mut rng);
        assert_eq!(o.first_seen_ms(hash(1)), Some(510));
        assert_eq!(o.len(), 1);
    }

    #[test]
    #[should_panic(expected = "inverted window")]
    fn inverted_window_panics() {
        Observer::new(0, (10, 5), 0.0);
    }
}
