//! Finding type and its JSON round-trip.
//!
//! The findings file doubles as the baseline format, so the writer must
//! be deterministic (sorted, fixed field order, one object per line) and
//! the parser must read back exactly what the writer emits. Both are
//! hand-rolled: the tool stays dependency-free so it builds anywhere the
//! Rust toolchain exists, and never enters the library dependency graph.

use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule slug: `determinism`, `wei-math`, `atomics`, `panic`,
    /// `deprecated` or `allow-syntax`.
    pub rule: String,
    /// Trimmed source line the finding sits on.
    pub snippet: String,
    /// Human explanation of what to do instead.
    pub message: String,
}

impl Finding {
    /// Baseline identity: file + rule + snippet, *not* the line number,
    /// so unrelated edits that shift code downward do not un-baseline
    /// old debt.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.file, self.rule, self.snippet)
    }
}

/// Sort findings into the canonical emission order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.rule, &a.snippet)
            .cmp(&(&b.file, b.line, b.col, &b.rule, &b.snippet))
    });
}

/// Serialize findings as a deterministic JSON array, one object per line.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"snippet\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.rule),
            json_str(&f.snippet),
            json_str(&f.message),
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a findings JSON array (the subset `to_json` emits). Tolerates
/// arbitrary whitespace and field order. Returns `Err` with a short
/// description on malformed input.
pub fn from_json(src: &str) -> Result<Vec<Finding>, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    p.eat(b'[')?;
    let mut out = Vec::new();
    p.ws();
    if p.peek() == Some(b']') {
        return Ok(out);
    }
    loop {
        out.push(p.object()?);
        p.ws();
        match p.next()? {
            b',' => p.ws(),
            b']' => break,
            c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Result<u8, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.i += 1;
        Ok(c)
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.next()? {
            c if c == want => Ok(()),
            c => Err(format!("expected '{}', got '{}'", want as char, c as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let c = self.next()?;
                            v = v * 16
                                + (c as char)
                                    .to_digit(16)
                                    .ok_or("bad \\u escape".to_string())?;
                        }
                        out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape '\\{}'", c as char)),
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble multi-byte UTF-8 from the raw input.
                    let start = self.i - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.b.len());
                    out.push_str(
                        std::str::from_utf8(&self.b[start..end]).map_err(|_| "bad utf-8")?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u32, String> {
        let start = self.i;
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.i += 1;
        }
        if start == self.i {
            return Err("expected number".to_string());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "bad number".to_string())
    }

    fn object(&mut self) -> Result<Finding, String> {
        self.ws();
        self.eat(b'{')?;
        let mut f = Finding {
            file: String::new(),
            line: 0,
            col: 0,
            rule: String::new(),
            snippet: String::new(),
            message: String::new(),
        };
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            match key.as_str() {
                "line" => f.line = self.number()?,
                "col" => f.col = self.number()?,
                "file" => f.file = self.string()?,
                "rule" => f.rule = self.string()?,
                "snippet" => f.snippet = self.string()?,
                "message" => f.message = self.string()?,
                other => return Err(format!("unknown field '{other}'")),
            }
            self.ws();
            match self.next()? {
                b',' => continue,
                b'}' => return Ok(f),
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &str, snippet: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col: 3,
            rule: rule.to_string(),
            snippet: snippet.to_string(),
            message: format!("msg for {rule}"),
        }
    }

    #[test]
    fn json_roundtrip_preserves_findings() {
        let mut fs = vec![
            finding("b.rs", 2, "panic", "x.unwrap();"),
            finding("a.rs", 9, "wei-math", "a + b"),
            finding("a.rs", 1, "determinism", "for k in m.keys() {"),
        ];
        sort_findings(&mut fs);
        let json = to_json(&fs);
        let back = from_json(&json).expect("parses");
        assert_eq!(back, fs);
        assert_eq!(back[0].file, "a.rs");
        assert_eq!(back[0].line, 1);
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let fs = vec![finding("a.rs", 1, "panic", r#"x.expect("no \ luck");"#)];
        let json = to_json(&fs);
        let back = from_json(&json).expect("parses");
        assert_eq!(back[0].snippet, r#"x.expect("no \ luck");"#);
    }

    #[test]
    fn empty_array_roundtrips() {
        assert_eq!(to_json(&[]), "[\n]\n");
        assert_eq!(from_json("[\n]\n").expect("parses"), vec![]);
        assert_eq!(from_json("[]").expect("parses"), vec![]);
    }

    #[test]
    fn writer_is_deterministic() {
        let mut a = vec![
            finding("z.rs", 5, "atomics", "Ordering::Relaxed"),
            finding("a.rs", 5, "panic", "panic!()"),
        ];
        let mut b = a.clone();
        b.reverse();
        sort_findings(&mut a);
        sort_findings(&mut b);
        assert_eq!(to_json(&a), to_json(&b));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{").is_err());
        assert!(from_json("[{\"file\":}]").is_err());
        assert!(from_json("[{\"nope\":\"x\"}]").is_err());
    }

    #[test]
    fn key_ignores_line_numbers() {
        let a = finding("a.rs", 1, "panic", "x.unwrap();");
        let b = finding("a.rs", 99, "panic", "x.unwrap();");
        assert_eq!(a.key(), b.key());
    }
}
