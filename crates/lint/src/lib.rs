//! `mev-lint` — workspace static analysis for the flashpan measurement
//! pipeline.
//!
//! A dev-only tool crate (never a dependency of the library crates)
//! that analyzes the workspace in two passes:
//!
//! **Pass 1** lexes every source file and extracts a per-file symbol
//! graph (fn/struct definitions with declared types, call sites, `use`
//! edges, `#[deprecated]` spans, lock/Condvar/channel construction
//! sites, file-IO call sites) on a small thread pool; results merge
//! deterministically by path and serialize as `lint_symbols.json`.
//!
//! **Pass 2** runs the per-file lexical rules plus the cross-file graph
//! rules:
//!
//! | rule | slug | guards |
//! |------|------|--------|
//! | R1 | `determinism` | no `HashMap`/`HashSet` iteration in `core`/`analysis`/`chain`/`flashbots` library code — detector output order feeds serial-vs-pool bit-identity |
//! | R2 | `wei-math` | no narrowing casts / bare `+ - *` on wei-typed values outside `crates/types` — the overflow class PR 2 fixed by hand |
//! | R3 | `atomics` | `Ordering::Relaxed` only inside `crates/obs` |
//! | R4 | `panic` | no `unwrap`/`expect`/`panic!`/`unreachable!` in `core`/`chain`/`dex`/`net`/`store`/`serve` library code |
//! | R5 | `deprecated` | no internal callers of `#[deprecated]` shims (exemption keyed on the item span) |
//! | R6 | `lock-order` | one global lock acquisition order; no blocking calls under a held guard |
//! | R7 | `crash-safety` | `fs::rename` in `crates/store` must have `sync_all`/`sync_data` on an interprocedural path |
//! | R8 | `error-swallow` | no `let _ =` / bare `.ok()` discarding a workspace `Result` in `core`/`chain`/`store`/`serve` |
//! | R9 | `determinism-escape` | no `HashMap`/`HashSet` escaping through pub surfaces into R1 crates |
//!
//! Findings diff against the checked-in `lint_baseline.json`: existing
//! debt is frozen, only new violations fail. Suppress inline with
//! `// lint:allow(rule: reason)` — the reason is mandatory.

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod symbols;
pub mod walk;

use report::{sort_findings, Finding};
use source::SourceFile;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Driver options.
#[derive(Debug, Default)]
pub struct Options {
    /// Pass-1 worker threads; `0` picks the machine's parallelism.
    pub threads: usize,
    /// When set, pass 2 reports findings only for these repo-relative
    /// paths. Pass 1 still covers the whole workspace so cross-file
    /// resolution stays complete.
    pub changed: Option<BTreeSet<String>>,
}

/// Full analysis result: sorted findings plus the merged symbol graph
/// (for `lint_symbols.json` and diagnostics).
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub graph: symbols::SymbolGraph,
}

/// Two-pass analysis of the workspace under `root`.
pub fn analyze(root: &Path, opts: &Options) -> std::io::Result<Analysis> {
    let files = walk::workspace_files(root)?;
    let n = files.len();
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
    .clamp(1, 16)
    .min(n.max(1));

    // Pass 1: parse + extract on a worker pool. Workers claim file
    // indices from a shared cursor and write into per-index slots, so
    // the merged order is the sorted walk order no matter how the
    // scheduler interleaves them.
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<(SourceFile, symbols::FileSymbols)>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let first_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let wf = &files[i];
                match std::fs::read_to_string(&wf.abs) {
                    Ok(src) => {
                        let sf = SourceFile::parse(&wf.rel, &wf.crate_name, wf.is_test_file, &src);
                        let syms = symbols::extract(&sf);
                        slots.lock().unwrap()[i] = Some((sf, syms));
                    }
                    Err(e) => {
                        first_err.lock().unwrap().get_or_insert(e);
                        break;
                    }
                }
            });
        }
    });
    if let Some(e) = first_err.into_inner().unwrap() {
        return Err(e);
    }
    let mut sources = Vec::with_capacity(n);
    let mut syms = Vec::with_capacity(n);
    for slot in slots.into_inner().unwrap() {
        let (sf, sy) = slot.expect("pass 1 fills every slot unless it errored");
        sources.push(sf);
        syms.push(sy);
    }
    let graph = symbols::SymbolGraph::build(syms);

    // Pass 2: lexical rules per file, then graph rules over everything.
    let mut findings = Vec::new();
    for sf in &sources {
        if let Some(changed) = &opts.changed {
            if !changed.contains(&sf.path) {
                continue;
            }
        }
        findings.extend(rules::lint_file(sf));
    }
    let mut graph_findings = graph::lint_graph(&sources, &graph);
    if let Some(changed) = &opts.changed {
        graph_findings.retain(|f| changed.contains(&f.file));
    }
    findings.extend(graph_findings);
    sort_findings(&mut findings);
    Ok(Analysis { findings, graph })
}

/// Lint every workspace file under `root` with default options.
/// Returns sorted findings.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    analyze(root, &Options::default()).map(|a| a.findings)
}
