//! `mev-lint` — workspace static analysis for the flashpan measurement
//! pipeline.
//!
//! A dev-only tool crate (never a dependency of the library crates) that
//! lexes every workspace source file and enforces five project
//! invariants the test suite cannot guard by construction:
//!
//! | rule | slug | guards |
//! |------|------|--------|
//! | R1 | `determinism` | no `HashMap`/`HashSet` iteration in `core`/`analysis`/`chain`/`flashbots` library code — detector output order feeds serial-vs-pool bit-identity |
//! | R2 | `wei-math` | no narrowing casts / bare `+ - *` on wei-typed values outside `crates/types` — the overflow class PR 2 fixed by hand |
//! | R3 | `atomics` | `Ordering::Relaxed` only inside `crates/obs` |
//! | R4 | `panic` | no `unwrap`/`expect`/`panic!`/`unreachable!` in `core`/`chain`/`dex`/`net` library code |
//! | R5 | `deprecated` | no internal callers of the deprecated `inspect`/`inspect_parallel` shims |
//!
//! Findings diff against the checked-in `lint_baseline.json`: existing
//! debt is frozen, only new violations fail. Suppress inline with
//! `// lint:allow(rule: reason)` — the reason is mandatory.

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod walk;

use report::{sort_findings, Finding};
use source::SourceFile;
use std::path::Path;

/// Lint every workspace file under `root`. Returns sorted findings.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for wf in walk::workspace_files(root)? {
        let src = std::fs::read_to_string(&wf.abs)?;
        let sf = SourceFile::parse(&wf.rel, &wf.crate_name, wf.is_test_file, &src);
        findings.extend(rules::lint_file(&sf));
    }
    sort_findings(&mut findings);
    Ok(findings)
}
