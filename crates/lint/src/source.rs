//! Per-file source model: lexed tokens plus the two pieces of context
//! every rule needs — which tokens sit inside `#[cfg(test)]` / `#[test]`
//! regions, and which lines carry `lint:allow(rule: reason)` suppressions.

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// A parsed `lint:allow(rule: reason)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the directive's comment starts on.
    pub line: u32,
    /// Rule slug inside the parentheses.
    pub rule: String,
    /// Reason text after the colon; empty when the author omitted it.
    pub reason: String,
}

/// One workspace source file, lexed and annotated.
pub struct SourceFile {
    /// Repo-relative path with `/` separators (stable across platforms).
    pub path: String,
    /// Directory name under `crates/` (e.g. `core`), or `flashpan` for
    /// the root crate.
    pub crate_name: String,
    /// Whole file is test/dev code (under `tests/`, `benches/`,
    /// `examples/` or a `bin/` directory).
    pub is_test_file: bool,
    pub lexed: Lexed,
    /// Parallel to `lexed.tokens`: true inside `#[cfg(test)]`/`#[test]`
    /// item bodies.
    test_mask: Vec<bool>,
    /// All suppression directives, in line order.
    pub allows: Vec<Allow>,
    /// Raw source lines, for finding snippets.
    lines: Vec<String>,
}

impl SourceFile {
    pub fn parse(path: &str, crate_name: &str, is_test_file: bool, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_mask = compute_test_mask(&lexed.tokens);
        let allows = parse_allows(&lexed);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            is_test_file,
            lexed,
            test_mask,
            allows,
            lines: src.lines().map(|l| l.to_string()).collect(),
        }
    }

    /// Token at `idx` is inside a test region (or the whole file is one).
    pub fn in_test(&self, idx: usize) -> bool {
        self.is_test_file || self.test_mask.get(idx).copied().unwrap_or(false)
    }

    /// Trimmed source text of a 1-based line, for snippets.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// An allow for `rule` covering `line` (same line or the line above).
    /// Returns the directive so the caller can check it carries a reason.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// Mark tokens covered by `#[cfg(test)]` / `#[test]` items: after such an
/// attribute, everything from the item's opening `{` to its matching `}`
/// is test code. An intervening `;` before any `{` means the attribute
/// decorated a braceless item — no region.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Find the end of the attribute: the `]` matching our `[`.
            let mut j = i + 1; // at `[`
            let mut bdepth = 0i32;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => bdepth += 1,
                    "]" => {
                        bdepth -= 1;
                        if bdepth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Scan forward for the item's opening brace; bail at `;`.
            let mut k = j + 1;
            let mut found = None;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "{" => {
                        found = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = found {
                let mut depth = 0i32;
                let mut m = open;
                while m < tokens.len() {
                    match tokens[m].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    mask[m] = true;
                    m += 1;
                }
                if m < tokens.len() {
                    mask[m] = true; // closing brace
                }
                i = m + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// `tokens[i]` starts `#[test]`, `#[cfg(test)]` or `#[cfg(all(test, …))]`
/// (any cfg attribute mentioning the bare ident `test`).
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if tokens[i].text != "#" || i + 1 >= tokens.len() || tokens[i + 1].text != "[" {
        return false;
    }
    // Tokens inside the attribute's brackets.
    let mut j = i + 1;
    let mut bdepth = 0i32;
    let mut inner: Vec<&str> = Vec::new();
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => bdepth += 1,
            "]" => {
                bdepth -= 1;
                if bdepth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if bdepth >= 1 && tokens[j].kind == TokenKind::Ident {
            inner.push(tokens[j].text.as_str());
        }
        j += 1;
    }
    match inner.first() {
        Some(&"test") => inner.len() == 1,
        Some(&"cfg") => inner.contains(&"test"),
        _ => false,
    }
}

/// Extract every `lint:allow(rule: reason)` directive from the comments.
fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(end) = rest.find(')') else { break };
            let body = &rest[..end];
            rest = &rest[end + 1..];
            let (rule, reason) = match body.split_once(':') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (body.trim(), ""),
            };
            out.push(Allow {
                line: c.line,
                rule: rule.to_string(),
                reason: reason.to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", "x", false, src)
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let f = sf("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}");
        let toks = f.tokens();
        let lib_idx = toks.iter().position(|t| t.text == "lib").unwrap();
        let t_idx = toks.iter().position(|t| t.text == "t").unwrap();
        let lib2_idx = toks.iter().position(|t| t.text == "lib2").unwrap();
        assert!(!f.in_test(lib_idx));
        assert!(f.in_test(t_idx));
        assert!(!f.in_test(lib2_idx));
    }

    #[test]
    fn test_fn_attribute_is_masked() {
        let f = sf("#[test]\nfn check() { body(); }\nfn lib() {}");
        let toks = f.tokens();
        let body_idx = toks.iter().position(|t| t.text == "body").unwrap();
        let lib_idx = toks.iter().position(|t| t.text == "lib").unwrap();
        assert!(f.in_test(body_idx));
        assert!(!f.in_test(lib_idx));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let f = sf("#[cfg(feature = \"x\")]\nfn gated() { body(); }");
        let toks = f.tokens();
        let body_idx = toks.iter().position(|t| t.text == "body").unwrap();
        assert!(!f.in_test(body_idx));
    }

    #[test]
    fn braceless_attribute_target_makes_no_region() {
        let f = sf("#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }");
        let toks = f.tokens();
        let body_idx = toks.iter().position(|t| t.text == "body").unwrap();
        assert!(!f.in_test(body_idx));
    }

    #[test]
    fn allows_parse_rule_and_reason() {
        let f = sf("// lint:allow(panic: guarded by the len check above)\nx.unwrap();\n// lint:allow(determinism)\n");
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "panic");
        assert_eq!(f.allows[0].reason, "guarded by the len check above");
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[1].rule, "determinism");
        assert_eq!(f.allows[1].reason, "");
        assert!(f.allow_for("panic", 2).is_some(), "line-above coverage");
        assert!(f.allow_for("panic", 1).is_some(), "same-line coverage");
        assert!(f.allow_for("panic", 3).is_none());
    }

    #[test]
    fn whole_test_file_masks_everything() {
        let f = SourceFile::parse("tests/it.rs", "flashpan", true, "fn x() { a.unwrap(); }");
        assert!(f.in_test(0));
    }
}
