//! The five project rules.
//!
//! R1 `determinism` — no iteration over `HashMap`/`HashSet` in library
//!     code of `core`, `analysis`, `chain` and `flashbots`: detector
//!     output order feeds the serial-vs-pool bit-identity guarantee, and
//!     hash iteration order varies run to run.
//! R2 `wei-math`   — no narrowing `as` casts and no bare `+`/`-`/`*` on
//!     balance/fee/amount-typed values outside `crates/types`; use
//!     `checked_*`/`saturating_*` or the U256-widening helpers.
//! R3 `atomics`    — `Ordering::Relaxed` only inside `crates/obs`.
//! R4 `panic`      — no `unwrap()`/`expect()`/`panic!`/`unreachable!` in
//!     non-test library code of `core`, `chain`, `dex`, `net`, `store`,
//!     `serve`.
//! R5 `deprecated` — no internal callers of the `#[deprecated]`
//!     `MevDataset::inspect` / `inspect_parallel` / `get_logs_all`
//!     shims.
//!
//! All rules are token-pattern checks over [`crate::lexer`] output; none
//! have type information (a `syn` AST would not either), so R1 and R2
//! are deliberately conservative heuristics: R1 only fires on receivers
//! it saw *declared* as a hash collection in the same file, R2 only on
//! identifiers whose names mark them as monetary quantities.

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_WEI_MATH: &str = "wei-math";
pub const RULE_ATOMICS: &str = "atomics";
pub const RULE_PANIC: &str = "panic";
pub const RULE_DEPRECATED: &str = "deprecated";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_CRASH_SAFETY: &str = "crash-safety";
pub const RULE_ERROR_SWALLOW: &str = "error-swallow";
pub const RULE_DETERMINISM_ESCAPE: &str = "determinism-escape";
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";

/// All enforceable rule slugs (what `lint:allow` may name). R1–R5 are
/// the per-file lexical rules in this module; R6–R9 are the cross-file
/// graph rules in [`crate::graph`].
pub const ALL_RULES: [&str; 9] = [
    RULE_DETERMINISM,
    RULE_WEI_MATH,
    RULE_ATOMICS,
    RULE_PANIC,
    RULE_DEPRECATED,
    RULE_LOCK_ORDER,
    RULE_CRASH_SAFETY,
    RULE_ERROR_SWALLOW,
    RULE_DETERMINISM_ESCAPE,
];

/// Crates whose library code must iterate deterministically (R1, and the
/// escape-site analysis of R9).
pub const R1_CRATES: [&str; 4] = ["core", "analysis", "chain", "flashbots"];
/// Crates exempt from R2: `types` hosts the checked/widening helpers
/// themselves.
const R2_EXEMPT: [&str; 1] = ["types"];
/// Crates allowed to use `Ordering::Relaxed` (R3).
const R3_EXEMPT: [&str; 1] = ["obs"];
/// Crates whose library code must not contain panic paths (R4). The
/// persistent store is included: corruption and I/O failure must surface
/// as `StoreError`, never as a panic — the HTTP server must answer
/// malformed requests with error responses, never by dying — and the
/// live follower must keep following: a panic in the service loop
/// orphans the store/checkpoint pair mid-cycle.
const R4_CRATES: [&str; 7] = ["core", "chain", "dex", "net", "store", "serve", "live"];

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
/// Interner tables (R1): their probe-table layout is an implementation
/// detail, so code must walk dense ids (`0..len()`) or the first-intern
/// order `keys_in_order()` — never generic iteration adapters.
const INTERN_TYPES: [&str; 1] = ["Interner"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "into_iter",
];
/// Numeric targets a cast can *lose* wei precision or sign into. `u128`
/// is the canonical wei width (widening) and `f64` is reporting-only, so
/// neither is flagged.
const NARROWING_TARGETS: [&str; 11] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "i128",
];

/// Identifier names treated as monetary quantities for R2.
fn is_weiish(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    // f64/rate-domain suffixes are not wei quantities; `gwei` guards the
    // `*_gwei` f64 reporting fields against the `wei` substring, and
    // `weight`/`rebalanc(ed)` guard ordinary words that embed `wei` /
    // `balance`.
    for excl in [
        "eth", "gwei", "bps", "ratio", "share", "pct", "rate", "weight", "rebalanc",
    ] {
        if lower.contains(excl) {
            return false;
        }
    }
    for m in [
        "wei", "amount", "fee", "balance", "cost", "revenue", "gain", "profit", "tip", "reward",
    ] {
        if lower.contains(m) {
            return true;
        }
    }
    false
}

/// Rust keywords that terminate a backward expression scan.
fn is_expr_boundary_kw(t: &str) -> bool {
    matches!(
        t,
        "let"
            | "return"
            | "if"
            | "else"
            | "while"
            | "match"
            | "in"
            | "for"
            | "use"
            | "pub"
            | "fn"
            | "where"
            | "move"
            | "mut"
            | "ref"
            | "const"
            | "static"
    )
}

/// Lint one already-parsed file. This is the unit the driver calls per
/// file and the fixture tests call directly.
pub fn lint_file(sf: &SourceFile) -> Vec<Finding> {
    // The linter does not lint itself: its doc comments spell out the
    // `lint:allow(rule: reason)` grammar, which would read as malformed
    // directives, and it is a dev tool, not library code.
    if sf.crate_name == "lint" {
        return Vec::new();
    }
    let mut out = Vec::new();
    r1_determinism(sf, &mut out);
    r2_wei_math(sf, &mut out);
    r3_atomics(sf, &mut out);
    r4_panic(sf, &mut out);
    r5_deprecated(sf, &mut out);
    apply_allows(sf, out)
}

/// Convenience for tests: parse + lint a source string.
pub fn lint_source(path: &str, crate_name: &str, is_test_file: bool, src: &str) -> Vec<Finding> {
    lint_file(&SourceFile::parse(path, crate_name, is_test_file, src))
}

fn push(sf: &SourceFile, out: &mut Vec<Finding>, idx: usize, rule: &str, message: String) {
    let t = &sf.tokens()[idx];
    out.push(Finding {
        file: sf.path.clone(),
        line: t.line,
        col: t.col,
        rule: rule.to_string(),
        snippet: sf.line_text(t.line).to_string(),
        message,
    });
}

/// Drop findings covered by a reasoned `lint:allow`. Shared with the
/// graph rules, which route their cross-file findings through the
/// anchor file's directives; unlike [`apply_allows`] this never emits
/// `allow-syntax` findings (those are reported once per file).
pub fn filter_allows(sf: &SourceFile, findings: Vec<Finding>) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| !matches!(sf.allow_for(&f.rule, f.line), Some(a) if !a.reason.is_empty()))
        .collect()
}

/// Drop findings covered by a reasoned `lint:allow`; flag reasonless or
/// unknown-rule allows so suppressions stay auditable.
fn apply_allows(sf: &SourceFile, findings: Vec<Finding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = filter_allows(sf, findings);
    for a in &sf.allows {
        if !ALL_RULES.contains(&a.rule.as_str()) {
            out.push(Finding {
                file: sf.path.clone(),
                line: a.line,
                col: 1,
                rule: RULE_ALLOW_SYNTAX.to_string(),
                snippet: sf.line_text(a.line).to_string(),
                message: format!(
                    "lint:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    ALL_RULES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Finding {
                file: sf.path.clone(),
                line: a.line,
                col: 1,
                rule: RULE_ALLOW_SYNTAX.to_string(),
                snippet: sf.line_text(a.line).to_string(),
                message: format!(
                    "lint:allow({}) needs a reason: `lint:allow({}: why this is sound)`",
                    a.rule, a.rule
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// R1: determinism
// ---------------------------------------------------------------------

/// Names bound to one of `types` in this file: `x: HashMap<…>`
/// declarations (let/field/param) and `x = HashMap::new()` initialisers.
fn bound_names(sf: &SourceFile, types: &[&str]) -> Vec<String> {
    let toks = sf.tokens();
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !types.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over a `std::collections::` path prefix and `&`/`&mut`.
        let mut j = i;
        while j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text == ":" {
            j -= 3; // `ident` `:` `:`
        }
        while j >= 1 && (toks[j - 1].text == "&" || toks[j - 1].text == "mut") {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text != ":" {
            // Declaration `name : HashMap…`.
            if toks[j - 2].kind == TokenKind::Ident && !is_expr_boundary_kw(&toks[j - 2].text) {
                names.push(toks[j - 2].text.clone());
            }
        } else if j >= 2 && toks[j - 1].text == "=" {
            // Initialiser `name = HashMap::…` (skip `==`).
            if toks[j - 2].text != "=" && toks[j - 2].kind == TokenKind::Ident {
                names.push(toks[j - 2].text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// R1 message for a flagged receiver: hash collections and interner
/// tables get different steering.
fn r1_message(name: &str, is_interner: bool, bare_for: bool) -> String {
    if is_interner {
        format!(
            "iteration over interner table `{name}` exposes probe-table layout; walk dense ids (`0..len()`) with `resolve()`, or use `keys_in_order()`"
        )
    } else if bare_for {
        format!(
            "`for … in {name}` iterates a hash collection in nondeterministic order; use BTreeMap/BTreeSet, first-seen grouping, or sort before use"
        )
    } else {
        format!(
            "iteration over hash collection `{name}` has nondeterministic order; use BTreeMap/BTreeSet, first-seen grouping, or sort before use"
        )
    }
}

fn r1_determinism(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !R1_CRATES.contains(&sf.crate_name.as_str()) {
        return;
    }
    let hash_names = bound_names(sf, &HASH_TYPES);
    let intern_names = bound_names(sf, &INTERN_TYPES);
    let toks = sf.tokens();
    for i in 0..toks.len() {
        if sf.in_test(i) {
            continue;
        }
        let t = &toks[i];
        // `recv.iter()` family: ident in ITER_METHODS preceded by `.`,
        // receiver's terminal ident declared as a hash collection here.
        if t.kind == TokenKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "."
            && i + 1 < toks.len()
            && toks[i + 1].text == "("
        {
            let recv = &toks[i - 2];
            if recv.kind == TokenKind::Ident {
                let is_hash = hash_names.contains(&recv.text);
                let is_interner = intern_names.contains(&recv.text);
                if is_hash || is_interner {
                    push(
                        sf,
                        out,
                        i,
                        RULE_DETERMINISM,
                        r1_message(&recv.text, is_interner, false),
                    );
                    continue;
                }
            }
        }
        // `for pat in [&][mut] name {`: terminal ident declared as a hash
        // collection. Method-call receivers are handled above, so only
        // fire when the loop expression is a bare (borrowed) path.
        if t.kind == TokenKind::Ident && t.text == "in" && !sf.in_test(i) {
            // Confirm this `in` belongs to a `for` (not `impl … for`).
            let mut back = i;
            let mut is_for = false;
            while back > 0 {
                back -= 1;
                let bt = &toks[back];
                if bt.text == "for" {
                    is_for = true;
                    break;
                }
                if bt.text == "{" || bt.text == ";" || bt.text == "}" {
                    break;
                }
            }
            if !is_for {
                continue;
            }
            // Expression tokens from after `in` to the loop `{`.
            let mut j = i + 1;
            while j < toks.len() && (toks[j].text == "&" || toks[j].text == "mut") {
                j += 1;
            }
            // Path: ident (`.` ident | `::`-free)*, ending right before `{`.
            let mut terminal: Option<usize> = None;
            while j < toks.len() {
                if toks[j].kind == TokenKind::Ident {
                    terminal = Some(j);
                    j += 1;
                    if j < toks.len() && toks[j].text == "." {
                        j += 1;
                        continue;
                    }
                    break;
                }
                terminal = None;
                break;
            }
            let Some(term) = terminal else { continue };
            // A call or further chain means it is not a bare path.
            if j < toks.len() && toks[j].text != "{" {
                continue;
            }
            let is_hash = hash_names.contains(&toks[term].text);
            let is_interner = intern_names.contains(&toks[term].text);
            if is_hash || is_interner {
                push(
                    sf,
                    out,
                    term,
                    RULE_DETERMINISM,
                    r1_message(&toks[term].text, is_interner, true),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// R2: overflow-safe wei math
// ---------------------------------------------------------------------

/// Collect identifier names in the expression region before `idx`,
/// walking backward until a statement boundary or an unbalanced opener.
fn idents_before(sf: &SourceFile, idx: usize, limit: usize) -> Vec<String> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = idx;
    let mut steps = 0usize;
    while j > 0 && steps < limit {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" | "{" | "}" | "," | "=" if depth == 0 => break,
            _ => {}
        }
        if t.kind == TokenKind::Ident {
            if is_expr_boundary_kw(&t.text) && depth == 0 {
                break;
            }
            out.push(t.text.clone());
        }
    }
    out
}

/// Collect identifier names in the expression region after `idx`.
fn idents_after(sf: &SourceFile, idx: usize, limit: usize) -> Vec<String> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = idx;
    let mut steps = 0usize;
    while j + 1 < toks.len() && steps < limit {
        j += 1;
        steps += 1;
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" | "{" | "}" | "," if depth == 0 => break,
            _ => {}
        }
        if t.kind == TokenKind::Ident {
            if is_expr_boundary_kw(&t.text) && depth == 0 {
                break;
            }
            out.push(t.text.clone());
        }
    }
    out
}

fn r2_wei_math(sf: &SourceFile, out: &mut Vec<Finding>) {
    if R2_EXEMPT.contains(&sf.crate_name.as_str()) {
        return;
    }
    let toks = sf.tokens();
    for i in 0..toks.len() {
        if sf.in_test(i) {
            continue;
        }
        let t = &toks[i];
        // Narrowing `as` cast on a wei-ish expression.
        if t.kind == TokenKind::Ident
            && t.text == "as"
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
            && NARROWING_TARGETS.contains(&toks[i + 1].text.as_str())
        {
            let src_idents = idents_before(sf, i, 40);
            if let Some(name) = src_idents.iter().find(|n| is_weiish(n)) {
                push(
                    sf,
                    out,
                    i,
                    RULE_WEI_MATH,
                    format!(
                        "narrowing cast `as {}` on wei-typed `{}` can overflow silently; use i128::try_from/wei_i128 or a checked conversion",
                        toks[i + 1].text, name
                    ),
                );
            }
            continue;
        }
        // Bare `+` / `-` / `*` with a wei-ish operand.
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*") {
            // `->`, `=>` neighbours, and `*` deref / `-` unary positions.
            if i + 1 < toks.len() && toks[i + 1].text == ">" {
                continue;
            }
            if i == 0 {
                continue;
            }
            let prev = &toks[i - 1];
            let prev_is_operand_end = matches!(prev.kind, TokenKind::Number)
                || (prev.kind == TokenKind::Ident && !is_expr_boundary_kw(&prev.text))
                || matches!(prev.text.as_str(), ")" | "]");
            if !prev_is_operand_end {
                continue; // unary minus, deref, `&*`, `<*const>`, …
            }
            // Generic turbofish `Vec<T>`-style angles: `T * U` cannot be
            // distinguished perfectly; wei-ish names never name types, so
            // the name gate below keeps this precise enough.
            let left = idents_before(sf, i, 24);
            let right = idents_after(sf, i, 24);
            // An `as f64`/`as f32` cast in either operand means this is
            // float arithmetic (reporting-domain), not wei overflow.
            let is_float = |n: &String| n == "f64" || n == "f32";
            if left.iter().any(is_float) || right.iter().any(is_float) {
                continue;
            }
            let hit = left
                .iter()
                .find(|n| is_weiish(n))
                .or_else(|| right.iter().find(|n| is_weiish(n)));
            if let Some(name) = hit {
                push(
                    sf,
                    out,
                    i,
                    RULE_WEI_MATH,
                    format!(
                        "bare `{}` on wei-typed `{}` can overflow; use checked_/saturating_ arithmetic or U256 widening",
                        t.text, name
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// R3: atomics hygiene
// ---------------------------------------------------------------------

fn r3_atomics(sf: &SourceFile, out: &mut Vec<Finding>) {
    if R3_EXEMPT.contains(&sf.crate_name.as_str()) {
        return;
    }
    let toks = sf.tokens();
    for i in 3..toks.len() {
        if sf.in_test(i) {
            continue;
        }
        if toks[i].text == "Relaxed"
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "Ordering"
        {
            push(
                sf,
                out,
                i,
                RULE_ATOMICS,
                "Ordering::Relaxed outside mev-obs: state why no ordering is needed or use Acquire/Release/SeqCst".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// R4: panic paths
// ---------------------------------------------------------------------

fn r4_panic(sf: &SourceFile, out: &mut Vec<Finding>) {
    if !R4_CRATES.contains(&sf.crate_name.as_str()) {
        return;
    }
    let toks = sf.tokens();
    for i in 0..toks.len() {
        if sf.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i >= 1
                    && toks[i - 1].text == "."
                    && i + 1 < toks.len()
                    && toks[i + 1].text == "(" =>
            {
                push(
                    sf,
                    out,
                    i,
                    RULE_PANIC,
                    format!(
                        "`.{}()` in library code is a panic path; return an error, use a guarded fallback, or justify with lint:allow",
                        t.text
                    ),
                );
            }
            "panic" | "unreachable"
                if i + 1 < toks.len()
                    && toks[i + 1].text == "!"
                    // `core::panic::…` paths and `#[panic_handler]` attrs
                    // never have a following bang, so this is a macro call.
                    =>
            {
                push(
                    sf,
                    out,
                    i,
                    RULE_PANIC,
                    format!("`{}!` in library code is a panic path; return an error instead", t.text),
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// R5: deprecation hygiene
// ---------------------------------------------------------------------

fn r5_deprecated(sf: &SourceFile, out: &mut Vec<Finding>) {
    // Exempt the definition sites themselves: tokens inside a
    // `#[deprecated]` item's own span (attribute through closing brace)
    // are the shim, not a caller. Keyed on the item span, not the file,
    // so other code in a defining file still gets checked.
    let def_spans = crate::symbols::deprecated_spans(sf);
    let in_def = |i: usize| def_spans.iter().any(|&(a, b)| a <= i && i <= b);
    let toks = sf.tokens();
    for i in 0..toks.len() {
        if sf.in_test(i) || in_def(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let inspect_shim = t.text == "inspect_parallel"
            || (t.text == "inspect"
                && i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].text == "MevDataset");
        if inspect_shim {
            push(
                sf,
                out,
                i,
                RULE_DEPRECATED,
                format!(
                    "`{}` is a deprecated shim; use `Inspector::new(chain, api)…run()`",
                    t.text
                ),
            );
        }
        // The query-surface shims deprecated with the ArchiveQuery
        // trait: one-call page draining lives on `pages(filter)` now.
        if t.text == "get_logs_all" {
            push(
                sf,
                out,
                i,
                RULE_DEPRECATED,
                "`get_logs_all` is a deprecated shim; use \
                 `ArchiveQuery::pages(filter).collect_entries()`"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lint `src` as library code of `crate_name` and return the rule
    /// slugs that fired, sorted.
    fn rules_fired(crate_name: &str, src: &str) -> Vec<String> {
        let mut v: Vec<String> = lint_source("crates/x/src/lib.rs", crate_name, false, src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        v.sort();
        v
    }

    // -- R1 determinism ----------------------------------------------

    #[test]
    fn r1_flags_hashmap_method_iteration() {
        let src = r#"
            use std::collections::HashMap;
            fn f(by_pool: HashMap<u64, Vec<u32>>) {
                for group in by_pool.values() {
                    let _ = group;
                }
            }
        "#;
        assert_eq!(rules_fired("core", src), vec!["determinism"]);
    }

    #[test]
    fn r1_flags_bare_for_in_over_hashset() {
        let src = r#"
            fn f() {
                let claimed = std::collections::HashSet::new();
                for c in &claimed {
                    let _ = c;
                }
            }
        "#;
        assert_eq!(rules_fired("chain", src), vec!["determinism"]);
    }

    #[test]
    fn r1_ignores_btreemap_and_vec_iteration() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f(m: BTreeMap<u64, u64>, v: Vec<u64>) {
                for k in m.keys() {
                    let _ = k;
                }
                for x in v.iter() {
                    let _ = x;
                }
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    #[test]
    fn r1_ignores_out_of_scope_crates_and_test_code() {
        let src = r#"
            use std::collections::HashMap;
            fn f(m: HashMap<u64, u64>) -> u64 {
                m.values().sum()
            }
        "#;
        // `sim` is not an R1 crate.
        assert!(rules_fired("sim", src).is_empty());
        // Same code inside #[cfg(test)] in an R1 crate is fine.
        let test_src = r#"
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn f(m: HashMap<u64, u64>) -> u64 {
                    m.values().sum()
                }
            }
        "#;
        assert!(rules_fired("core", test_src).is_empty());
    }

    #[test]
    fn r1_flags_interner_method_iteration() {
        let src = r#"
            use mev_types::Interner;
            fn f(addrs: Interner<Address>) {
                for k in addrs.iter() {
                    let _ = k;
                }
            }
        "#;
        assert_eq!(rules_fired("core", src), vec!["determinism"]);
    }

    #[test]
    fn r1_flags_bare_for_in_over_interner() {
        let src = r#"
            fn f() {
                let hashes = mev_types::Interner::new();
                for h in &hashes {
                    let _ = h;
                }
            }
        "#;
        let fired = rules_fired("core", src);
        assert_eq!(fired, vec!["determinism"]);
        // The message steers to the sanctioned accessors.
        let findings = lint_source("crates/x/src/lib.rs", "core", false, src);
        assert!(findings[0].message.contains("keys_in_order"));
    }

    #[test]
    fn r1_allows_keys_in_order_and_resolve_on_interners() {
        let src = r#"
            use mev_types::Interner;
            fn f(addrs: Interner<Address>) {
                for k in addrs.keys_in_order() {
                    let _ = k;
                }
                let _ = addrs.len();
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    #[test]
    fn r1_ignores_hashmap_lookup_without_iteration() {
        let src = r#"
            use std::collections::HashMap;
            fn f(m: HashMap<u64, u64>) -> Option<u64> {
                m.get(&1).copied()
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    // -- R2 wei-math -------------------------------------------------

    #[test]
    fn r2_flags_narrowing_cast_on_wei_value() {
        let src = r#"
            fn f(amount_in: u128) -> i128 {
                amount_in as i128
            }
        "#;
        assert_eq!(rules_fired("core", src), vec!["wei-math"]);
    }

    #[test]
    fn r2_allows_widening_and_float_casts() {
        let src = r#"
            fn f(fee_wei: u64) -> (u128, f64) {
                (fee_wei as u128, fee_wei as f64)
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    #[test]
    fn r2_flags_bare_arithmetic_on_wei_names() {
        let src = r#"
            fn f(cost_wei: u128, tip: u128) -> u128 {
                cost_wei + tip
            }
        "#;
        assert_eq!(rules_fired("core", src), vec!["wei-math"]);
    }

    #[test]
    fn r2_ignores_checked_and_non_monetary_arithmetic() {
        let src = r#"
            fn f(cost_wei: u128, tip: u128, i: usize, n: usize) -> (Option<u128>, usize) {
                (cost_wei.checked_add(tip), i + n)
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    #[test]
    fn r2_ignores_float_reporting_math_and_weight_like_names() {
        let src = r#"
            fn f(amount_in: u128, weight: u64, rebalanced: u64) -> (f64, u64, u64) {
                let pct = amount_in as f64 * 0.5;
                (pct, weight + 1, rebalanced * 2)
            }
        "#;
        assert!(rules_fired("sim", src).is_empty());
    }

    #[test]
    fn r2_exempts_the_types_crate() {
        let src = r#"
            fn f(amount: u128) -> i128 {
                amount as i128
            }
        "#;
        assert!(rules_fired("types", src).is_empty());
    }

    #[test]
    fn r2_ignores_unary_minus_and_deref() {
        let src = r#"
            fn f(profit: &i128) -> i128 {
                let x = *profit;
                -x
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    // -- R3 atomics --------------------------------------------------

    #[test]
    fn r3_flags_relaxed_outside_obs() {
        let src = r#"
            use std::sync::atomic::{AtomicU64, Ordering};
            fn f(c: &AtomicU64) -> u64 {
                c.fetch_add(1, Ordering::Relaxed)
            }
        "#;
        assert_eq!(rules_fired("core", src), vec!["atomics"]);
    }

    #[test]
    fn r3_allows_relaxed_in_obs_and_other_orderings_anywhere() {
        let relaxed = r#"
            use std::sync::atomic::{AtomicU64, Ordering};
            fn f(c: &AtomicU64) -> u64 {
                c.fetch_add(1, Ordering::Relaxed)
            }
        "#;
        assert!(rules_fired("obs", relaxed).is_empty());
        let seqcst = r#"
            use std::sync::atomic::{AtomicU64, Ordering};
            fn f(c: &AtomicU64) -> u64 {
                c.fetch_add(1, Ordering::SeqCst)
            }
        "#;
        assert!(rules_fired("core", seqcst).is_empty());
    }

    // -- R4 panic ----------------------------------------------------

    #[test]
    fn r4_flags_unwrap_expect_panic_unreachable() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                if x.is_none() {
                    panic!("boom");
                }
                let a = x.unwrap();
                let b = x.expect("present");
                if a != b {
                    unreachable!();
                }
                a
            }
        "#;
        assert_eq!(rules_fired("core", src), vec!["panic"; 4]);
    }

    #[test]
    fn r4_covers_the_store_crate() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap()
            }
        "#;
        assert_eq!(rules_fired("store", src), vec!["panic"]);
    }

    #[test]
    fn r4_ignores_tests_dev_targets_and_out_of_scope_crates() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap()
            }
        "#;
        // `sim` is not an R4 crate.
        assert!(rules_fired("sim", src).is_empty());
        // Dev targets (tests/, benches/, bin/) are skipped wholesale.
        assert!(lint_source("crates/core/tests/golden.rs", "core", true, src).is_empty());
        // #[test] fns in library files are masked.
        let test_src = r#"
            #[test]
            fn golden() {
                let x: Option<u32> = Some(1);
                x.unwrap();
            }
        "#;
        assert!(rules_fired("core", test_src).is_empty());
    }

    #[test]
    fn r4_ignores_unwrap_or_variants() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap_or(0).max(x.unwrap_or_default())
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    // -- R5 deprecated -----------------------------------------------

    #[test]
    fn r5_flags_shim_callers_in_any_file() {
        let src = r#"
            fn f(ds: &MevDataset) {
                let _ = ds.inspect_parallel(4);
                let _ = MevDataset::inspect(ds);
            }
        "#;
        let fired = rules_fired("core", src);
        assert_eq!(fired, vec!["deprecated"; 2]);
        // Callers fire even inside a file that also defines a shim — the
        // exemption keys on the item span, not the path.
        let in_defining_file = lint_source("crates/core/src/dataset.rs", "core", false, src);
        assert_eq!(in_defining_file.len(), 2);
    }

    #[test]
    fn r5_exempts_the_deprecated_item_span_only() {
        let src = r#"
            #[deprecated(since = "0.4", note = "use pages()")]
            pub fn get_logs_all(c: &ChainStore, f: &LogFilter) -> Vec<LogEntry> {
                drain_pages(c, f)
            }

            fn caller(c: &ChainStore, f: &LogFilter) -> Vec<LogEntry> {
                get_logs_all(c, f)
            }
        "#;
        let found = lint_source("crates/chain/src/query.rs", "chain", false, src);
        // Only the caller outside the deprecated item's span fires; the
        // definition (attribute through closing brace) is exempt.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "deprecated");
        assert_eq!(found[0].line, 8);
    }

    #[test]
    fn r5_ignores_plain_inspect_methods() {
        let src = r#"
            fn f(it: impl Iterator<Item = u32>) -> u32 {
                it.inspect(|x| { let _ = x; }).sum()
            }
        "#;
        assert!(rules_fired("core", src).is_empty());
    }

    #[test]
    fn r5_flags_get_logs_all_callers_everywhere_but_test_code() {
        let src = r#"
            fn f(chain: &ChainStore, reader: &StoreReader, filter: &LogFilter) {
                let _ = get_logs_all(chain, filter);
                let _ = reader.get_logs_all(filter);
            }
        "#;
        let fired = rules_fired("core", src);
        assert_eq!(fired, vec!["deprecated"; 2]);
        // Span-keyed exemption: callers in the former definition files
        // fire too, now that no whole-file carve-out exists.
        assert_eq!(
            lint_source("crates/chain/src/query.rs", "chain", false, src).len(),
            2
        );
        // Test code may keep exercising the shims.
        assert!(lint_source("crates/x/tests/t.rs", "x", true, src).is_empty());
    }

    #[test]
    fn r4_covers_the_serve_crate() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap()
            }
        "#;
        assert_eq!(rules_fired("serve", src), vec!["panic"]);
    }

    // -- Suppressions ------------------------------------------------

    #[test]
    fn reasoned_allow_suppresses_same_line_and_line_above() {
        let same_line = r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap() // lint:allow(panic: guarded by caller invariant)
            }
        "#;
        assert!(rules_fired("core", same_line).is_empty());
        let line_above = r#"
            fn f(x: Option<u32>) -> u32 {
                // lint:allow(panic: guarded by caller invariant)
                x.unwrap()
            }
        "#;
        assert!(rules_fired("core", line_above).is_empty());
    }

    #[test]
    fn allow_for_one_rule_does_not_cover_another() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                // lint:allow(determinism: wrong rule for this line)
                x.unwrap()
            }
        "#;
        assert_eq!(rules_fired("core", src), vec!["panic"]);
    }

    #[test]
    fn reasonless_or_unknown_rule_allow_is_flagged() {
        let reasonless = r#"
            fn f(x: Option<u32>) -> u32 {
                // lint:allow(panic)
                x.unwrap()
            }
        "#;
        // The unwrap is NOT suppressed and the allow itself is flagged.
        assert_eq!(
            rules_fired("core", reasonless),
            vec!["allow-syntax", "panic"]
        );
        let unknown = r#"
            fn f() {
                // lint:allow(no-such-rule: because)
            }
        "#;
        assert_eq!(rules_fired("core", unknown), vec!["allow-syntax"]);
    }

    #[test]
    fn lint_crate_is_never_linted() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap()
            }
        "#;
        assert!(lint_source("crates/lint/src/rules.rs", "lint", false, src).is_empty());
    }
}
