//! Pass 2, graph rules: the four cross-file checks that run over the
//! merged [`SymbolGraph`] plus the retained token streams.
//!
//! R6 `lock-order`          — one global acquisition order over named
//!     `Mutex`/`RwLock` fields; nested acquisitions that invert an
//!     already-observed order are flagged, as is any blocking call
//!     (`recv()`, `accept()`, file IO) made while a lock is held.
//! R7 `crash-safety`        — in `crates/store`, a `fs::rename` that
//!     publishes a temp file must be reachable from a `sync_all` /
//!     `sync_data` call (same fn, a transitive callee, or a transitive
//!     caller); otherwise a crash can publish unsynced bytes.
//! R8 `error-swallow`       — `let _ = …;` or a bare `.ok();` that
//!     discards a `Result` produced by another *workspace* function in
//!     library code of `core` / `chain` / `store` / `serve`.
//! R9 `determinism-escape`  — a `HashMap`/`HashSet` escaping through a
//!     `pub` return type or `pub` field into a crate R1 holds to
//!     deterministic iteration, flagged at the escape site (closing
//!     R1's same-file blind spot).
//!
//! Like the lexical rules these are type-free token heuristics; each one
//! resolves names through the symbol graph conservatively (unknown
//! receivers never match) so that std calls and foreign types cannot
//! produce findings.

use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::rules::{
    filter_allows, R1_CRATES, RULE_CRASH_SAFETY, RULE_DETERMINISM_ESCAPE, RULE_ERROR_SWALLOW,
    RULE_LOCK_ORDER,
};
use crate::source::SourceFile;
use crate::symbols::{Call, FnSym, Recv, SymbolGraph, Vis};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose library code R8 holds to explicit error handling.
pub const R8_CRATES: [&str; 5] = ["core", "chain", "store", "serve", "live"];

/// Run all graph rules. `sources[i]` must be the parsed source of
/// `graph.files[i]` (the pass-1 driver guarantees the pairing).
/// Suppressions are applied here so fixtures exercise them end to end.
pub fn lint_graph(sources: &[SourceFile], graph: &SymbolGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    r6_lock_order(sources, graph, &mut out);
    r7_crash_safety(graph, &mut out);
    r8_error_swallow(sources, graph, &mut out);
    r9_determinism_escape(sources, graph, &mut out);
    // Route every finding through its anchor file's allow directives.
    let by_path: BTreeMap<&str, &SourceFile> =
        sources.iter().map(|s| (s.path.as_str(), s)).collect();
    let mut kept = Vec::new();
    for f in out {
        match by_path.get(f.file.as_str()) {
            Some(sf) => kept.extend(filter_allows(sf, vec![f])),
            None => kept.push(f),
        }
    }
    kept
}

fn finding(sf: &SourceFile, line: u32, col: u32, rule: &str, message: String) -> Finding {
    Finding {
        file: sf.path.clone(),
        line,
        col,
        rule: rule.to_string(),
        snippet: sf.line_text(line).to_string(),
        message,
    }
}

/// Resolve a call site to workspace fn indices, conservatively:
/// * free / lowercase-path calls match only free workspace fns;
/// * `Type::name` matches fns in `impl Type`;
/// * `self.name(…)` matches the caller's own impl type;
/// * method calls on any other receiver never match (their receiver type
///   is unknown, and std methods must not resolve).
fn resolve(graph: &SymbolGraph, caller: &FnSym, c: &Call) -> Vec<usize> {
    let free = |name: &str| -> Vec<usize> {
        graph
            .fns_by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| graph.fn_at(i).impl_type.is_none())
                    .collect()
            })
            .unwrap_or_default()
    };
    match &c.recv {
        Recv::None => free(&c.name),
        Recv::SelfDot => caller
            .impl_type
            .as_ref()
            .and_then(|t| graph.fns_by_qual.get(&format!("{t}::{}", c.name)))
            .cloned()
            .unwrap_or_default(),
        Recv::Path(q) => {
            if q.chars().next().map(char::is_uppercase).unwrap_or(false) {
                graph
                    .fns_by_qual
                    .get(&format!("{q}::{}", c.name))
                    .cloned()
                    .unwrap_or_default()
            } else {
                free(&c.name)
            }
        }
        Recv::Other(_) => Vec::new(),
    }
}

// ---------------------------------------------------------------------
// R6: lock-order
// ---------------------------------------------------------------------

/// Per-file structural context for guard-scope computation.
struct BraceCtx {
    /// Opening-delimiter token index → closing partner.
    close: BTreeMap<usize, usize>,
    /// Token index → innermost enclosing `{` token index.
    encl: Vec<Option<usize>>,
}

impl BraceCtx {
    fn build(sf: &SourceFile) -> BraceCtx {
        let toks = sf.tokens();
        let mut close = BTreeMap::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut bstack: Vec<usize> = Vec::new();
        let mut encl = vec![None; toks.len()];
        for (i, t) in toks.iter().enumerate() {
            encl[i] = bstack.last().copied();
            match t.text.as_str() {
                "{" => {
                    stack.push(i);
                    bstack.push(i);
                }
                "(" | "[" => stack.push(i),
                "}" => {
                    if let Some(open) = stack.pop() {
                        close.insert(open, i);
                    }
                    bstack.pop();
                }
                ")" | "]" => {
                    if let Some(open) = stack.pop() {
                        close.insert(open, i);
                    }
                }
                _ => {}
            }
        }
        BraceCtx { close, encl }
    }
}

/// One lock acquisition with the token span over which its guard lives.
#[derive(Debug, Clone)]
struct Acq {
    lock: String,
    tok: usize,
    line: u32,
    col: u32,
    scope_end: usize,
}

/// The guard scope of an acquisition whose method-name token is `i`:
/// * header position (`if let … = m.lock() {`) → the following block;
/// * `let g = …;` → to the enclosing block's `}`, or an explicit
///   `drop(g)`;
/// * a plain temporary (`m.lock().field = x;`) → the statement's `;`.
fn guard_scope(sf: &SourceFile, ctx: &BraceCtx, i: usize, fn_end: usize) -> usize {
    let toks = sf.tokens();
    // Statement start: nearest `;` / `{` / `}` behind the acquisition.
    let mut s = i;
    while s > 0 && !matches!(toks[s - 1].text.as_str(), ";" | "{" | "}") {
        s -= 1;
    }
    let mut binding: Option<&str> = None;
    if toks.get(s).map(|t| t.text == "let").unwrap_or(false) {
        let mut n = s + 1;
        if toks.get(n).map(|t| t.text == "mut").unwrap_or(false) {
            n += 1;
        }
        if let Some(t) = toks.get(n) {
            if t.kind == TokenKind::Ident && t.text != "_" {
                binding = Some(&t.text);
            }
        }
    }
    // Forward scan for the expression's end at nesting depth zero.
    let mut depth = 0i32;
    let mut k = i + 1;
    let stmt_end = loop {
        if k > fn_end {
            return fn_end;
        }
        match toks[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                if depth > 0 {
                    // Closure body inside the argument list.
                    k = ctx.close.get(&k).copied().unwrap_or(fn_end);
                } else {
                    // Header acquisition: scope is the following block.
                    return ctx.close.get(&k).copied().unwrap_or(fn_end).min(fn_end);
                }
            }
            ";" if depth <= 0 => break k,
            "}" if depth <= 0 => return k.min(fn_end),
            _ => {}
        }
        k += 1;
    };
    match binding {
        None => stmt_end,
        Some(name) => {
            let block_end = ctx
                .encl
                .get(i)
                .copied()
                .flatten()
                .and_then(|open| ctx.close.get(&open).copied())
                .unwrap_or(fn_end)
                .min(fn_end);
            // Truncate at an explicit `drop(name)`.
            let mut m = stmt_end;
            while m + 3 <= block_end {
                if toks[m].text == "drop"
                    && toks[m + 1].text == "("
                    && toks[m + 2].text == name
                    && toks.get(m + 3).map(|t| t.text == ")").unwrap_or(false)
                {
                    return m;
                }
                m += 1;
            }
            block_end
        }
    }
}

/// Blocking operations a held lock must not span. `Condvar::wait` is the
/// sanctioned exception (it releases the lock while parked) and is not
/// listed.
fn blocking_call(c: &Call) -> Option<String> {
    match &c.recv {
        Recv::Path(q) if matches!(q.as_str(), "fs" | "File" | "OpenOptions") => {
            Some(format!("{}::{}", q, c.name))
        }
        Recv::SelfDot | Recv::Other(_) => {
            if matches!(
                c.name.as_str(),
                "recv"
                    | "recv_timeout"
                    | "accept"
                    | "sync_all"
                    | "sync_data"
                    | "write_all"
                    | "read_exact"
                    | "read_to_string"
                    | "read_to_end"
            ) {
                Some(format!(".{}()", c.name))
            } else {
                None
            }
        }
        Recv::Path(_) | Recv::None => None,
    }
}

/// The acquisitions (direct plus one level of guard-returning-helper
/// inheritance) of one fn, in token order.
fn fn_acquisitions(
    sf: &SourceFile,
    ctx: &BraceCtx,
    graph: &SymbolGraph,
    f: &FnSym,
    direct_of: &BTreeMap<String, Vec<String>>,
) -> Vec<Acq> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    for c in &f.calls {
        // Direct: `.lock()` / `.read()` / `.write()` on a known lock.
        if matches!(c.name.as_str(), "lock" | "read" | "write")
            && c.tok >= 2
            && toks[c.tok - 1].text == "."
            && toks[c.tok - 2].kind == TokenKind::Ident
        {
            let term = toks[c.tok - 2].text.as_str();
            if let Some(lock) = resolve_lock(sf, graph, f, c, term) {
                out.push(Acq {
                    lock,
                    tok: c.tok,
                    line: c.line,
                    col: c.col,
                    scope_end: guard_scope(sf, ctx, c.tok, f.tok_end),
                });
                continue;
            }
        }
        // Inherited: a call to a helper that returns a guard over exactly
        // one known lock (e.g. `Queue::lock`).
        for idx in resolve(graph, f, c) {
            let callee = graph.fn_at(idx);
            if !callee.ret.contains("Guard") {
                continue;
            }
            if let Some(locks) = direct_of.get(&callee.qual) {
                if locks.len() == 1 {
                    out.push(Acq {
                        lock: locks[0].clone(),
                        tok: c.tok,
                        line: c.line,
                        col: c.col,
                        scope_end: guard_scope(sf, ctx, c.tok, f.tok_end),
                    });
                    break;
                }
            }
        }
    }
    out.sort_by_key(|a| a.tok);
    out
}

/// Identify the lock behind a `.lock()`/`.read()`/`.write()` receiver:
/// a same-file local lock binding, `self.field` against the caller's
/// impl type, or a field name unique across the workspace.
fn resolve_lock(
    sf: &SourceFile,
    graph: &SymbolGraph,
    f: &FnSym,
    c: &Call,
    term: &str,
) -> Option<String> {
    let file_syms = graph.files.iter().find(|fs| fs.path == sf.path)?;
    // Local `let m = Mutex::new(…)` binding in this file.
    for s in &file_syms.syncs {
        if s.id == term && s.kind != "condvar" && s.kind != "channel" {
            if lock_method_matches(&c.name, &s.kind) {
                return Some(s.id.clone());
            }
        }
    }
    // `self.field.lock()` against the caller's impl type.
    if matches!(c.recv, Recv::SelfDot) {
        if let Some(ty) = &f.impl_type {
            let id = format!("{ty}.{term}");
            if let Some(kind) = graph.lock_fields.get(&id) {
                if lock_method_matches(&c.name, kind) {
                    return Some(id);
                }
            }
        }
    }
    // Unambiguous field name anywhere in the workspace.
    let matches: Vec<(&String, &String)> = graph
        .lock_fields
        .iter()
        .filter(|(id, _)| id.rsplit('.').next() == Some(term))
        .collect();
    if let [(id, kind)] = matches.as_slice() {
        if lock_method_matches(&c.name, kind) {
            return Some((*id).clone());
        }
    }
    None
}

fn lock_method_matches(method: &str, kind: &str) -> bool {
    match method {
        "lock" => kind == "mutex",
        "read" | "write" => kind == "rwlock",
        _ => false,
    }
}

fn r6_lock_order(sources: &[SourceFile], graph: &SymbolGraph, out: &mut Vec<Finding>) {
    // Direct acquisitions per fn qual (for helper inheritance): a cheap
    // pre-pass that only needs receiver idents, no scopes.
    let mut direct_of: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (fi, fs) in graph.files.iter().enumerate() {
        let sf = &sources[fi];
        let toks = sf.tokens();
        for f in &fs.fns {
            if f.in_test {
                continue;
            }
            let mut locks = Vec::new();
            for c in &f.calls {
                if matches!(c.name.as_str(), "lock" | "read" | "write")
                    && c.tok >= 2
                    && toks[c.tok - 1].text == "."
                    && toks[c.tok - 2].kind == TokenKind::Ident
                {
                    let term = toks[c.tok - 2].text.clone();
                    if let Some(lock) = resolve_lock(sf, graph, f, c, &term) {
                        if !locks.contains(&lock) {
                            locks.push(lock);
                        }
                    }
                }
            }
            direct_of.insert(f.qual.clone(), locks);
        }
    }

    // Edge instances in deterministic order (files sorted, fns and
    // acquisitions in token order).
    struct EdgeInst {
        outer: String,
        inner: String,
        file_idx: usize,
        line: u32,
        col: u32,
    }
    let mut instances: Vec<EdgeInst> = Vec::new();
    for (fi, fs) in graph.files.iter().enumerate() {
        if fs.crate_name == "lint" {
            continue;
        }
        let sf = &sources[fi];
        let ctx = BraceCtx::build(sf);
        for f in &fs.fns {
            if f.in_test || sf.in_test(f.tok_start) {
                continue;
            }
            let acqs = fn_acquisitions(sf, &ctx, graph, f, &direct_of);
            for (ai, a) in acqs.iter().enumerate() {
                // Nested acquisitions inside a's scope.
                for b in &acqs[ai + 1..] {
                    if b.tok <= a.scope_end && b.lock != a.lock {
                        instances.push(EdgeInst {
                            outer: a.lock.clone(),
                            inner: b.lock.clone(),
                            file_idx: fi,
                            line: b.line,
                            col: b.col,
                        });
                    }
                }
                // Blocking operations under the guard.
                for c in &f.calls {
                    if c.tok > a.tok && c.tok <= a.scope_end {
                        if let Some(op) = blocking_call(c) {
                            out.push(finding(
                                sf,
                                c.line,
                                c.col,
                                RULE_LOCK_ORDER,
                                format!(
                                    "`{op}` while `{}` is held blocks every contender of the \
                                     lock; release the guard first",
                                    a.lock
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    // First observed direction per unordered pair wins; later inversions
    // are flagged at their site.
    let mut established: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for e in &instances {
        let fwd = (e.outer.clone(), e.inner.clone());
        let rev = (e.inner.clone(), e.outer.clone());
        if let Some(&(ffi, fline)) = established.get(&rev) {
            let sf = &sources[e.file_idx];
            out.push(finding(
                sf,
                e.line,
                e.col,
                RULE_LOCK_ORDER,
                format!(
                    "`{}` acquired while `{}` is held, inverting the order established at \
                     {}:{} (`{}` before `{}`); keep one global acquisition order",
                    e.inner, e.outer, sources[ffi].path, fline, e.inner, e.outer
                ),
            ));
        } else {
            established.entry(fwd).or_insert((e.file_idx, e.line));
        }
    }
}

// ---------------------------------------------------------------------
// R7: crash-safety
// ---------------------------------------------------------------------

fn r7_crash_safety(graph: &SymbolGraph, out: &mut Vec<Finding>) {
    // Workspace call graph, forward and reverse.
    let n = graph.fn_table.len();
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut syncs_directly: Vec<bool> = vec![false; n];
    for i in 0..n {
        let f = graph.fn_at(i);
        for c in &f.calls {
            if matches!(c.name.as_str(), "sync_all" | "sync_data") {
                syncs_directly[i] = true;
            }
            for j in resolve(graph, f, c) {
                if j != i {
                    fwd[i].push(j);
                    rev[j].push(i);
                }
            }
        }
    }
    let reaches_sync = |starts: &[usize], edges: &Vec<Vec<usize>>| -> bool {
        let mut seen: BTreeSet<usize> = starts.iter().copied().collect();
        let mut stack: Vec<usize> = starts.to_vec();
        while let Some(i) = stack.pop() {
            if syncs_directly[i] {
                return true;
            }
            for &j in &edges[i] {
                if seen.insert(j) {
                    stack.push(j);
                }
            }
        }
        false
    };
    for i in 0..n {
        let (fi, _) = graph.fn_table[i];
        let fs = &graph.files[fi];
        if !fs.path.starts_with("crates/store/") {
            continue;
        }
        let f = graph.fn_at(i);
        for c in &f.calls {
            let is_rename = c.name == "rename" && matches!(&c.recv, Recv::Path(q) if q == "fs");
            if !is_rename {
                continue;
            }
            if reaches_sync(&[i], &fwd) || reaches_sync(&[i], &rev) {
                continue;
            }
            out.push(Finding {
                file: fs.path.clone(),
                line: c.line,
                col: c.col,
                rule: RULE_CRASH_SAFETY.to_string(),
                snippet: String::new(),
                message: format!(
                    "`fs::rename` in `{}` publishes a file with no `sync_all`/`sync_data` \
                     on any interprocedural path; a crash can surface truncated data",
                    f.qual
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R8: error-swallow
// ---------------------------------------------------------------------

/// All resolved candidates exist and every one returns a `Result`.
fn returns_workspace_result(graph: &SymbolGraph, caller: &FnSym, c: &Call) -> bool {
    let cands = resolve(graph, caller, c);
    !cands.is_empty() && cands.iter().all(|&i| graph.fn_at(i).ret.contains("Result"))
}

fn r8_error_swallow(sources: &[SourceFile], graph: &SymbolGraph, out: &mut Vec<Finding>) {
    for (fi, fs) in graph.files.iter().enumerate() {
        if !R8_CRATES.contains(&fs.crate_name.as_str()) {
            continue;
        }
        let sf = &sources[fi];
        if sf.is_test_file {
            continue;
        }
        let toks = sf.tokens();
        for f in &fs.fns {
            if f.in_test || sf.in_test(f.tok_start) {
                continue;
            }
            // `let _ = call(…);` — the root call of the discarded
            // expression is the first call site in the statement.
            for i in f.tok_start..f.tok_end.saturating_sub(2) {
                if toks[i].text != "let" || toks[i + 1].text != "_" || toks[i + 2].text != "=" {
                    continue;
                }
                let mut depth = 0i32;
                let mut end = i + 3;
                while end <= f.tok_end {
                    match toks[end].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                let root = f.calls.iter().find(|c| c.tok > i + 2 && c.tok < end);
                if let Some(c) = root {
                    if returns_workspace_result(graph, f, c) {
                        out.push(finding(
                            sf,
                            toks[i].line,
                            toks[i].col,
                            RULE_ERROR_SWALLOW,
                            format!(
                                "`let _ =` discards the `Result` of workspace fn `{}`; \
                                 handle or propagate the error",
                                c.name
                            ),
                        ));
                    }
                }
            }
            // Bare `….ok();` statements.
            for c in &f.calls {
                if c.name != "ok"
                    || toks.get(c.tok + 1).map(|t| t.text != "(").unwrap_or(true)
                    || toks.get(c.tok + 2).map(|t| t.text != ")").unwrap_or(true)
                    || toks.get(c.tok + 3).map(|t| t.text != ";").unwrap_or(true)
                {
                    continue;
                }
                // Statement start; `let`-bound `.ok()` is a value use (or
                // already covered by the `let _ =` arm above).
                let mut s = c.tok;
                while s > f.tok_start && !matches!(toks[s - 1].text.as_str(), ";" | "{" | "}") {
                    s -= 1;
                }
                if toks.get(s).map(|t| t.text == "let").unwrap_or(false) {
                    continue;
                }
                let root = f.calls.iter().find(|r| r.tok >= s && r.tok < c.tok);
                if let Some(r) = root {
                    if returns_workspace_result(graph, f, r) {
                        out.push(finding(
                            sf,
                            c.line,
                            c.col,
                            RULE_ERROR_SWALLOW,
                            format!(
                                "bare `.ok()` discards the `Result` of workspace fn `{}`; \
                                 handle or propagate the error",
                                r.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R9: determinism-escape
// ---------------------------------------------------------------------

fn ty_has_hash(ty: &str) -> bool {
    ty.split(' ')
        .any(|seg| seg == "HashMap" || seg == "HashSet")
}

fn r9_determinism_escape(sources: &[SourceFile], graph: &SymbolGraph, out: &mut Vec<Finding>) {
    // Idents visible in R1-crate library code, for cross-crate escapes.
    let mut r1_idents: BTreeSet<&str> = BTreeSet::new();
    for sf in sources {
        if !R1_CRATES.contains(&sf.crate_name.as_str()) || sf.is_test_file {
            continue;
        }
        for (i, t) in sf.tokens().iter().enumerate() {
            if t.kind == TokenKind::Ident && !sf.in_test(i) {
                r1_idents.insert(&t.text);
            }
        }
    }
    for (fi, fs) in graph.files.iter().enumerate() {
        if fs.crate_name == "lint" {
            continue;
        }
        let sf = &sources[fi];
        if sf.is_test_file {
            continue;
        }
        let in_r1 = R1_CRATES.contains(&fs.crate_name.as_str());
        // Escape through `pub` fields.
        for s in &fs.structs {
            if s.in_test {
                continue;
            }
            for fld in &s.fields {
                if fld.vis == Vis::Private || !ty_has_hash(&fld.ty) {
                    continue;
                }
                let escapes = if in_r1 {
                    true
                } else {
                    s.vis == Vis::Pub && fld.vis == Vis::Pub && r1_idents.contains(s.name.as_str())
                };
                if escapes {
                    out.push(finding(
                        sf,
                        fld.line,
                        1,
                        RULE_DETERMINISM_ESCAPE,
                        format!(
                            "pub field `{}.{}: {}` leaks hash iteration order into \
                             determinism-sensitive crates; use BTreeMap/BTreeSet or a sorted view",
                            s.name, fld.name, fld.ty
                        ),
                    ));
                }
            }
        }
        // Escape through `pub` return types.
        for f in &fs.fns {
            if f.in_test || f.vis == Vis::Private || !ty_has_hash(&f.ret) {
                continue;
            }
            let escapes = if in_r1 {
                true
            } else {
                f.vis == Vis::Pub && r1_idents.contains(f.name.as_str())
            };
            if escapes {
                out.push(finding(
                    sf,
                    f.line,
                    1,
                    RULE_DETERMINISM_ESCAPE,
                    format!(
                        "pub fn `{}` returns `{}`, leaking hash iteration order into \
                         determinism-sensitive crates; return a BTree collection or sorted Vec",
                        f.qual, f.ret
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{extract, FileSymbols};

    /// Build a mini-workspace from (path, crate, src) triples (sorted by
    /// path by the caller) and run the graph rules.
    fn graph_findings(files: &[(&str, &str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(p, c, s)| SourceFile::parse(p, c, false, s))
            .collect();
        let syms: Vec<FileSymbols> = sources.iter().map(extract).collect();
        let graph = SymbolGraph::build(syms);
        lint_graph(&sources, &graph)
    }

    fn slugs(findings: &[Finding]) -> Vec<String> {
        let mut v: Vec<String> = findings.iter().map(|f| f.rule.clone()).collect();
        v.sort();
        v
    }

    // -- R6 lock-order -------------------------------------------------

    const TWO_LOCKS: &str = r#"
        pub struct S { a: Mutex<u32>, b: Mutex<u32> }
    "#;

    #[test]
    fn r6_flags_inverted_acquisition_order() {
        let src = r#"
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                pub fn first(&self) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                    drop(gb);
                    drop(ga);
                }
                pub fn second(&self) {
                    let gb = self.b.lock().unwrap();
                    let ga = self.a.lock().unwrap();
                    drop(ga);
                    drop(gb);
                }
            }
        "#;
        let found = graph_findings(&[("crates/x/src/lib.rs", "x", src)]);
        assert_eq!(slugs(&found), vec!["lock-order"]);
        assert!(found[0].message.contains("inverting the order"));
        // The finding anchors at the second fn's inner acquisition.
        assert!(found[0].line > 10);
    }

    #[test]
    fn r6_flags_blocking_call_under_guard() {
        let src = r#"
            pub struct S { a: Mutex<u32> }
            impl S {
                pub fn drain(&self, rx: &Receiver<u32>) {
                    let g = self.a.lock().unwrap();
                    let v = rx.recv();
                    drop(g);
                    consume(v);
                }
            }
        "#;
        let found = graph_findings(&[("crates/x/src/lib.rs", "x", src)]);
        assert_eq!(slugs(&found), vec!["lock-order"]);
        assert!(found[0].message.contains(".recv()"));
        assert!(found[0].message.contains("S.a"));
    }

    #[test]
    fn r6_clean_when_guard_dropped_before_blocking_and_order_consistent() {
        let src = r#"
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                pub fn first(&self) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                    drop(gb);
                    drop(ga);
                }
                pub fn also_ordered(&self, rx: &Receiver<u32>) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                    drop(gb);
                    drop(ga);
                    let v = rx.recv();
                    consume(v);
                }
            }
        "#;
        assert!(graph_findings(&[("crates/x/src/lib.rs", "x", src)]).is_empty());
    }

    #[test]
    fn r6_temporary_guard_releases_at_statement_end() {
        let src = r#"
            pub struct S { a: Mutex<State>, b: Mutex<u32> }
            impl S {
                pub fn flip(&self) {
                    self.a.lock().unwrap().open = false;
                    let gb = self.b.lock().unwrap();
                    drop(gb);
                    self.b.lock().unwrap().probe();
                    let ga = self.a.lock().unwrap();
                    drop(ga);
                }
            }
        "#;
        // Neither nesting exists: every guard dies at its `;` or drop.
        assert!(graph_findings(&[("crates/x/src/lib.rs", "x", src)]).is_empty());
    }

    #[test]
    fn r6_inherits_through_guard_returning_helper() {
        let src = r#"
            pub struct Q { inner: Mutex<u32>, other: Mutex<u32> }
            impl Q {
                fn lock(&self) -> MutexGuard<'_, u32> {
                    self.inner.lock().unwrap()
                }
                pub fn cross(&self) {
                    let g = self.lock();
                    let h = self.other.lock().unwrap();
                    drop(h);
                    drop(g);
                }
                pub fn inverted(&self) {
                    let h = self.other.lock().unwrap();
                    let g = self.lock();
                    drop(g);
                    drop(h);
                }
            }
        "#;
        let found = graph_findings(&[("crates/x/src/lib.rs", "x", src)]);
        assert_eq!(slugs(&found), vec!["lock-order"]);
        assert!(found[0].message.contains("Q.inner"));
    }

    #[test]
    fn r6_condvar_wait_is_not_blocking() {
        let src = r#"
            pub struct Q { inner: Mutex<u32>, ready: Condvar }
            impl Q {
                pub fn pop(&self) -> u32 {
                    let mut g = self.inner.lock().unwrap();
                    loop {
                        g = self.ready.wait(g).unwrap();
                        if *g > 0 { return *g; }
                    }
                }
            }
        "#;
        assert!(graph_findings(&[("crates/x/src/lib.rs", "x", src)]).is_empty());
    }

    #[test]
    fn r6_allow_suppresses_with_reason() {
        let src = r#"
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                pub fn first(&self) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                    drop(gb);
                    drop(ga);
                }
                pub fn second(&self) {
                    let gb = self.b.lock().unwrap();
                    // lint:allow(lock-order: shutdown-only path, first() cannot run concurrently)
                    let ga = self.a.lock().unwrap();
                    drop(ga);
                    drop(gb);
                }
            }
        "#;
        assert!(graph_findings(&[("crates/x/src/lib.rs", "x", src)]).is_empty());
    }

    #[test]
    fn r6_test_code_is_exempt() {
        let src = r#"
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            #[cfg(test)]
            mod tests {
                fn nested(s: &S, rx: &Receiver<u32>) {
                    let ga = s.a.lock().unwrap();
                    let v = rx.recv();
                    drop(ga);
                }
            }
        "#;
        assert!(graph_findings(&[("crates/x/src/lib.rs", "x", src)]).is_empty());
        let _ = TWO_LOCKS;
    }

    // -- R7 crash-safety -----------------------------------------------

    #[test]
    fn r7_flags_rename_with_no_sync_on_any_path() {
        let src = r#"
            pub fn publish(tmp: &Path, dst: &Path) -> io::Result<()> {
                fs::rename(tmp, dst)
            }
        "#;
        let found = graph_findings(&[("crates/store/src/fx.rs", "store", src)]);
        assert_eq!(slugs(&found), vec!["crash-safety"]);
    }

    #[test]
    fn r7_clean_when_caller_syncs_before_calling_the_renamer() {
        let src = r#"
            fn publish(tmp: &Path, dst: &Path) -> io::Result<()> {
                fs::rename(tmp, dst)
            }
            pub fn write_atomic(f: &File, tmp: &Path, dst: &Path) -> io::Result<()> {
                f.sync_all()?;
                publish(tmp, dst)
            }
        "#;
        assert!(graph_findings(&[("crates/store/src/fx.rs", "store", src)]).is_empty());
    }

    #[test]
    fn r7_clean_when_callee_syncs() {
        let src = r#"
            fn settle(f: &File) -> io::Result<()> {
                f.sync_data()
            }
            pub fn publish(f: &File, tmp: &Path, dst: &Path) -> io::Result<()> {
                settle(f)?;
                fs::rename(tmp, dst)
            }
        "#;
        assert!(graph_findings(&[("crates/store/src/fx.rs", "store", src)]).is_empty());
    }

    #[test]
    fn r7_only_watches_the_store_crate() {
        let src = r#"
            pub fn rotate(tmp: &Path, dst: &Path) -> io::Result<()> {
                fs::rename(tmp, dst)
            }
        "#;
        assert!(graph_findings(&[("crates/obs/src/fx.rs", "obs", src)]).is_empty());
    }

    #[test]
    fn r7_allow_suppresses_with_reason() {
        let src = r#"
            pub fn publish(tmp: &Path, dst: &Path) -> io::Result<()> {
                // lint:allow(crash-safety: scratch index, rebuilt from segments on startup)
                fs::rename(tmp, dst)
            }
        "#;
        assert!(graph_findings(&[("crates/store/src/fx.rs", "store", src)]).is_empty());
    }

    // -- R8 error-swallow ------------------------------------------------

    #[test]
    fn r8_flags_let_underscore_discard_of_workspace_result() {
        let src = r#"
            pub fn emit(x: u32) -> Result<(), Error> { ship(x) }
            pub fn run() {
                let _ = emit(1);
            }
        "#;
        let found = graph_findings(&[("crates/serve/src/fx.rs", "serve", src)]);
        assert_eq!(slugs(&found), vec!["error-swallow"]);
        assert!(found[0].message.contains("emit"));
    }

    #[test]
    fn r8_flags_bare_ok_discard() {
        let src = r#"
            pub fn emit(x: u32) -> Result<(), Error> { ship(x) }
            pub fn run() {
                emit(1).ok();
            }
        "#;
        let found = graph_findings(&[("crates/store/src/fx.rs", "store", src)]);
        assert_eq!(slugs(&found), vec!["error-swallow"]);
    }

    #[test]
    fn r8_ignores_non_workspace_and_non_result_calls() {
        let src = r#"
            pub fn depth() -> usize { 3 }
            pub fn run(worker: JoinHandle<()>, d: &File) {
                let _ = worker.join();
                let _ = d.sync_all();
                let _ = TcpStream::connect(addr);
                let _ = depth();
                let kept = compute().ok();
                consume(kept);
            }
        "#;
        assert!(graph_findings(&[("crates/serve/src/fx.rs", "serve", src)]).is_empty());
    }

    #[test]
    fn r8_only_watches_designated_crates() {
        let src = r#"
            pub fn emit(x: u32) -> Result<(), Error> { ship(x) }
            pub fn run() {
                let _ = emit(1);
            }
        "#;
        assert!(graph_findings(&[("crates/agents/src/fx.rs", "agents", src)]).is_empty());
    }

    #[test]
    fn r8_allow_suppresses_with_reason() {
        let src = r#"
            pub fn emit(x: u32) -> Result<(), Error> { ship(x) }
            pub fn run() {
                // lint:allow(error-swallow: best-effort 503 on an already-doomed connection)
                let _ = emit(1);
            }
        "#;
        assert!(graph_findings(&[("crates/serve/src/fx.rs", "serve", src)]).is_empty());
    }

    // -- R9 determinism-escape -------------------------------------------

    #[test]
    fn r9_flags_pub_hash_field_and_return_in_r1_crate() {
        let src = r#"
            pub struct Index {
                pub seen: HashSet<u64>,
                private_ok: HashSet<u64>,
            }
            pub fn table() -> HashMap<u32, u32> { HashMap::new() }
            fn private_table() -> HashMap<u32, u32> { HashMap::new() }
        "#;
        let found = graph_findings(&[("crates/core/src/fx.rs", "core", src)]);
        assert_eq!(slugs(&found), vec!["determinism-escape"; 2]);
    }

    #[test]
    fn r9_flags_cross_crate_escape_referenced_from_r1() {
        let producer = r#"
            pub fn positions_by_owner() -> HashMap<u64, u64> { HashMap::new() }
        "#;
        let consumer = r#"
            pub fn summarize() -> usize {
                positions_by_owner().len()
            }
        "#;
        let found = graph_findings(&[
            ("crates/core/src/user.rs", "core", consumer),
            ("crates/lending/src/fx.rs", "lending", producer),
        ]);
        assert_eq!(slugs(&found), vec!["determinism-escape"]);
        assert_eq!(found[0].file, "crates/lending/src/fx.rs");
    }

    #[test]
    fn r9_clean_when_unreferenced_or_btree() {
        let producer = r#"
            pub fn unreferenced() -> HashMap<u64, u64> { HashMap::new() }
            pub fn sorted_view() -> BTreeMap<u64, u64> { BTreeMap::new() }
        "#;
        assert!(graph_findings(&[("crates/lending/src/fx.rs", "lending", producer)]).is_empty());
    }

    #[test]
    fn r9_allow_suppresses_with_reason() {
        let src = r#"
            pub struct Index {
                // lint:allow(determinism-escape: only membership-tested, never iterated)
                pub seen: HashSet<u64>,
            }
        "#;
        assert!(graph_findings(&[("crates/core/src/fx.rs", "core", src)]).is_empty());
    }
}
