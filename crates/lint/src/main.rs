//! `mev-lint` CLI.
//!
//! ```text
//! mev-lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean (all findings baselined/suppressed), 1 new
//! findings, 2 usage or I/O error.

use mev_lint::baseline::Baseline;
use mev_lint::report::{to_json, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint_baseline.json";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baseline: bool,
}

fn usage() -> String {
    "usage: mev-lint [--root DIR] [--baseline FILE] [--json FILE] [--update-baseline]".to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        json: None,
        update_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(it.next().ok_or_else(usage)?.into()),
            "--baseline" => args.baseline = Some(it.next().ok_or_else(usage)?.into()),
            "--json" => args.json = Some(it.next().ok_or_else(usage)?.into()),
            "--update-baseline" => args.update_baseline = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Walk up from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_findings(header: &str, findings: &[Finding]) {
    if findings.is_empty() {
        return;
    }
    eprintln!("{header}");
    for f in findings {
        eprintln!(
            "  {}:{}:{} [{}] {}",
            f.file, f.line, f.col, f.rule, f.message
        );
        eprintln!("      {}", f.snippet);
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => find_root()
            .ok_or("could not find a workspace root (run inside the repo or pass --root)")?,
    };
    let baseline_path = args.baseline.unwrap_or_else(|| root.join(BASELINE_FILE));

    let findings =
        mev_lint::lint_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    if let Some(json_path) = &args.json {
        write_text(json_path, &to_json(&findings))?;
    }

    if args.update_baseline {
        write_text(&baseline_path, &to_json(&findings))?;
        println!(
            "mev-lint: baseline updated — {} finding(s) frozen in {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)
            .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };

    let (fresh, known) = baseline.diff(&findings);
    let stale = baseline.stale_count(&findings);
    println!(
        "mev-lint: {} finding(s) — {} baselined, {} new{}",
        findings.len(),
        known.len(),
        fresh.len(),
        if stale > 0 {
            format!(", {stale} baseline entr(ies) paid down (run --update-baseline to ratchet)")
        } else {
            String::new()
        }
    );
    if fresh.is_empty() {
        return Ok(ExitCode::SUCCESS);
    }
    print_findings(
        "new findings (fix, or suppress with `// lint:allow(rule: reason)`):",
        &fresh,
    );
    Ok(ExitCode::FAILURE)
}

fn write_text(path: &Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mev-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
