//! `mev-lint` CLI.
//!
//! ```text
//! mev-lint [--root DIR] [--baseline FILE] [--json FILE] [--sarif FILE]
//!          [--symbols FILE] [--format text|sarif] [--changed GIT_REF]
//!          [--threads N] [--update-baseline]
//! ```
//!
//! * `--json FILE`    — write all findings as the findings-array JSON.
//! * `--sarif FILE`   — write *fresh* (non-baselined) findings as SARIF
//!   2.1.0 for CI code-scanning annotations.
//! * `--symbols FILE` — write the pass-1 symbol graph
//!   (`lint_symbols.json`).
//! * `--format sarif` — print the fresh findings as SARIF on stdout
//!   instead of the human report.
//! * `--changed REF`  — report findings only for files changed since
//!   the git ref (pass 1 still scans the whole workspace so cross-file
//!   resolution stays complete).
//! * `--threads N`    — pass-1 worker threads (default: machine
//!   parallelism).
//!
//! Exit codes: 0 clean (all findings baselined/suppressed), 1 new
//! findings, 2 usage or I/O error.

use mev_lint::baseline::{to_v2_json, Baseline};
use mev_lint::report::{to_json, Finding};
use mev_lint::sarif::to_sarif;
use mev_lint::Options;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint_baseline.json";

#[derive(Default)]
struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    symbols: Option<PathBuf>,
    format_sarif: bool,
    changed: Option<String>,
    threads: usize,
    update_baseline: bool,
}

fn usage() -> String {
    "usage: mev-lint [--root DIR] [--baseline FILE] [--json FILE] [--sarif FILE] \
     [--symbols FILE] [--format text|sarif] [--changed GIT_REF] [--threads N] \
     [--update-baseline]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(it.next().ok_or_else(usage)?.into()),
            "--baseline" => args.baseline = Some(it.next().ok_or_else(usage)?.into()),
            "--json" => args.json = Some(it.next().ok_or_else(usage)?.into()),
            "--sarif" => args.sarif = Some(it.next().ok_or_else(usage)?.into()),
            "--symbols" => args.symbols = Some(it.next().ok_or_else(usage)?.into()),
            "--format" => match it.next().ok_or_else(usage)?.as_str() {
                "sarif" => args.format_sarif = true,
                "text" => args.format_sarif = false,
                other => return Err(format!("unknown format `{other}` (text|sarif)")),
            },
            "--changed" => args.changed = Some(it.next().ok_or_else(usage)?),
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or_else(usage)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--update-baseline" => args.update_baseline = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Walk up from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Repo-relative paths changed since `git_ref`, via `git diff`.
fn changed_files(root: &Path, git_ref: &str) -> Result<BTreeSet<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", git_ref])
        .output()
        .map_err(|e| format!("running git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {git_ref} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| l.ends_with(".rs"))
        .collect())
}

fn print_findings(header: &str, findings: &[Finding]) {
    if findings.is_empty() {
        return;
    }
    eprintln!("{header}");
    for f in findings {
        eprintln!(
            "  {}:{}:{} [{}] {}",
            f.file, f.line, f.col, f.rule, f.message
        );
        eprintln!("      {}", f.snippet);
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => find_root()
            .ok_or("could not find a workspace root (run inside the repo or pass --root)")?,
    };
    let baseline_path = args.baseline.unwrap_or_else(|| root.join(BASELINE_FILE));

    let changed = match &args.changed {
        Some(git_ref) => Some(changed_files(&root, git_ref)?),
        None => None,
    };
    let opts = Options {
        threads: args.threads,
        changed,
    };

    let started = std::time::Instant::now();
    let analysis =
        mev_lint::analyze(&root, &opts).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let elapsed = started.elapsed();
    let findings = analysis.findings;

    if let Some(symbols_path) = &args.symbols {
        write_text(symbols_path, &analysis.graph.to_json())?;
    }
    if let Some(json_path) = &args.json {
        write_text(json_path, &to_json(&findings))?;
    }

    if args.update_baseline {
        if args.changed.is_some() {
            return Err("--update-baseline needs a full run; drop --changed".to_string());
        }
        write_text(&baseline_path, &to_v2_json(&findings))?;
        println!(
            "mev-lint: baseline updated — {} finding(s) frozen in {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)
            .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };

    let (fresh, known) = baseline.diff(&findings);
    let stale = baseline.stale_count(&findings);
    if let Some(sarif_path) = &args.sarif {
        write_text(sarif_path, &to_sarif(&fresh))?;
    }
    if args.format_sarif {
        print!("{}", to_sarif(&fresh));
        return Ok(if fresh.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    println!(
        "mev-lint: {} finding(s) in {:.2?}{} — {} baselined, {} new{}",
        findings.len(),
        elapsed,
        match &args.changed {
            Some(r) => format!(" (changed vs {r})"),
            None => String::new(),
        },
        known.len(),
        fresh.len(),
        if stale > 0 {
            format!(", {stale} baseline entr(ies) paid down (run --update-baseline to ratchet)")
        } else {
            String::new()
        }
    );
    if fresh.is_empty() {
        return Ok(ExitCode::SUCCESS);
    }
    print_findings(
        "new findings (fix, or suppress with `// lint:allow(rule: reason)`):",
        &fresh,
    );
    Ok(ExitCode::FAILURE)
}

fn write_text(path: &Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mev-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
