//! SARIF 2.1.0 output for CI code-scanning annotations.
//!
//! Deliberately minimal: one run, one driver, one result per finding,
//! rule metadata derived from the slugs actually present. Hand-rolled
//! like the rest of the JSON in this crate so the tool stays
//! dependency-free, and deterministic byte-for-byte for a given finding
//! list.

use crate::report::Finding;
use std::collections::BTreeSet;
use std::fmt::Write as _;

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Serialize findings (typically the *fresh* set — the ones that gate
/// CI) as a SARIF 2.1.0 log.
pub fn to_sarif(findings: &[Finding]) -> String {
    let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"$schema\":{},\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"mev-lint\",\"informationUri\":\
         \"https://example.invalid/mev-lint\",\"rules\":[",
        js(SCHEMA)
    );
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            js(r),
            js(r)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            js(&f.rule),
            js(&f.message),
            js(&f.file),
            f.line.max(1),
            f.col.max(1),
        );
    }
    out.push_str("]}]}\n");
    out
}

fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col: 5,
            rule: rule.to_string(),
            snippet: "x.unwrap();".to_string(),
            message: format!("{rule} fired"),
        }
    }

    #[test]
    fn sarif_shape_and_determinism() {
        let fs = vec![
            finding("panic", "crates/core/src/a.rs", 10),
            finding("lock-order", "crates/serve/src/lib.rs", 99),
        ];
        let s = to_sarif(&fs);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"panic\""));
        assert!(s.contains("\"ruleId\":\"lock-order\""));
        assert!(s.contains("\"startLine\":99"));
        // Rule metadata deduplicated + sorted; output deterministic.
        assert_eq!(s.matches("\"id\":\"panic\"").count(), 1);
        assert_eq!(s, to_sarif(&fs));
    }

    #[test]
    fn empty_findings_still_valid() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\":[]"));
    }
}
