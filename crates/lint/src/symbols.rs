//! Pass 1: per-file symbol extraction and the merged workspace
//! [`SymbolGraph`].
//!
//! One structural walk over each file's token stream records what the
//! cross-file rules (R6–R9) need: `fn` definitions with declared
//! parameter/return types and call sites, `struct` definitions with
//! field types, `use` edges, `#[deprecated]` item spans, lock / Condvar
//! / channel construction sites, and file-IO call sites. The walk is
//! still lexical — brace matching plus a handful of token patterns, no
//! type inference — which is exactly the fidelity the pass-2 rules are
//! written against.
//!
//! The per-file results merge (in sorted path order, independent of
//! pass-1 scheduling) into a [`SymbolGraph`], which also serializes as
//! the deterministic `lint_symbols.json` artifact.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Item visibility, as declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — escapes the crate.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — crate-internal.
    PubScoped,
    Private,
}

impl Vis {
    fn as_str(self) -> &'static str {
        match self {
            Vis::Pub => "pub",
            Vis::PubScoped => "pub(scoped)",
            Vis::Private => "",
        }
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// Free call: `name(…)`.
    None,
    /// Method call rooted in `self`: `self.name(…)` / `self.f.name(…)`.
    SelfDot,
    /// Path call `Qual::name(…)`; holds the qualifier segment.
    Path(String),
    /// Method call on some other receiver; holds the terminal ident.
    Other(String),
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    pub name: String,
    pub recv: Recv,
    pub line: u32,
    pub col: u32,
    /// Token index of the callee name, for pass-2 scope checks.
    pub tok: usize,
}

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnSym {
    pub name: String,
    /// `Type::name` inside an `impl Type`, else `name`.
    pub qual: String,
    pub impl_type: Option<String>,
    pub vis: Vis,
    /// Declared parameter types, space-joined tokens.
    pub params: Vec<String>,
    /// Declared return type, space-joined tokens; empty for `()`.
    pub ret: String,
    pub line: u32,
    /// Token span `[start, end]` covering signature and body.
    pub tok_start: usize,
    pub tok_end: usize,
    pub calls: Vec<Call>,
    /// Defined inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// One struct field.
#[derive(Debug, Clone)]
pub struct FieldSym {
    pub name: String,
    /// Space-joined declared type tokens.
    pub ty: String,
    pub vis: Vis,
    pub line: u32,
}

/// One `struct` definition.
#[derive(Debug, Clone)]
pub struct StructSym {
    pub name: String,
    pub vis: Vis,
    pub line: u32,
    pub fields: Vec<FieldSym>,
    pub in_test: bool,
}

/// A lock / Condvar / channel construction or declaration site.
#[derive(Debug, Clone)]
pub struct SyncSite {
    /// Identity: `Struct.field` for fields, the binding name for locals.
    pub id: String,
    /// `mutex`, `rwlock`, `condvar` or `channel`.
    pub kind: String,
    pub line: u32,
}

/// A `#[deprecated]` item: name plus the token/line span of the whole
/// item (attribute through closing brace or `;`).
#[derive(Debug, Clone)]
pub struct DeprecatedItem {
    pub name: String,
    pub start_line: u32,
    pub end_line: u32,
    pub tok_start: usize,
    pub tok_end: usize,
}

/// Everything pass 1 extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    pub path: String,
    pub crate_name: String,
    pub fns: Vec<FnSym>,
    pub structs: Vec<StructSym>,
    /// `use` paths, space-stripped (`std::sync::Mutex`).
    pub uses: Vec<String>,
    pub deprecated: Vec<DeprecatedItem>,
    pub syncs: Vec<SyncSite>,
}

/// Names that, as a call's path qualifier or method name, mark file IO.
pub const IO_PATH_QUALS: [&str; 3] = ["fs", "File", "OpenOptions"];
pub const IO_METHODS: [&str; 7] = [
    "sync_all",
    "sync_data",
    "write_all",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "flush",
];

/// Is this call site file IO? Path calls through `fs::` / `File::` /
/// `OpenOptions::` always are; method calls only for the byte-moving
/// methods above (a bare `.read()`/`.write()` is ambiguous with RwLock
/// acquisition and is deliberately not IO here).
pub fn call_is_io(c: &Call) -> bool {
    match &c.recv {
        Recv::Path(q) => IO_PATH_QUALS.contains(&q.as_str()),
        Recv::SelfDot | Recv::Other(_) => IO_METHODS.contains(&c.name.as_str()),
        Recv::None => false,
    }
}

/// Keywords that look like calls when followed by `(`.
fn is_call_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "while" | "match" | "for" | "return" | "loop" | "fn" | "as" | "in" | "where"
    )
}

/// Extract the symbols of one parsed file.
pub fn extract(sf: &SourceFile) -> FileSymbols {
    let toks = sf.tokens();
    let mut out = FileSymbols {
        path: sf.path.clone(),
        crate_name: sf.crate_name.clone(),
        ..FileSymbols::default()
    };
    let close = match_braces(sf);

    // impl-context stack: (type name, closing-brace token index).
    let mut impls: Vec<(String, usize)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(_, end)) = impls.last() {
            if i > end {
                impls.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident && t.text != "#" {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "#" => {
                // `#[deprecated…]` attribute → record the following item.
                if let Some((dep, next)) = parse_deprecated(sf, i, &close) {
                    out.deprecated.push(dep);
                    i = next;
                    continue;
                }
                i += 1;
            }
            "use" => {
                // Join path tokens to the terminating `;`.
                let mut j = i + 1;
                let mut path = String::new();
                while j < toks.len() && toks[j].text != ";" {
                    path.push_str(&toks[j].text);
                    j += 1;
                }
                out.uses.push(path);
                i = j + 1;
            }
            "impl" => {
                // `impl [Trait for] Type {` → the type is the last path
                // segment before the `{` (after `for` when present).
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut last_ident: Option<String> = None;
                let mut after_for: Option<String> = None;
                while j < toks.len() && toks[j].text != "{" {
                    match toks[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "for" if angle == 0 => {
                            after_for = None; // restart capture after `for`
                            last_ident = None;
                        }
                        _ => {}
                    }
                    if toks[j].kind == TokenKind::Ident && angle == 0 && toks[j].text != "for" {
                        last_ident = Some(toks[j].text.clone());
                        if after_for.is_none() {
                            after_for = last_ident.clone();
                        }
                    }
                    j += 1;
                }
                if j < toks.len() {
                    if let Some(ty) = last_ident {
                        impls.push((ty, close.get(&j).copied().unwrap_or(toks.len() - 1)));
                    }
                }
                i = j + 1;
            }
            "struct" => {
                if let Some((s, next)) = parse_struct(sf, i, &close, &mut out.syncs) {
                    out.structs.push(s);
                    i = next;
                    continue;
                }
                i += 1;
            }
            "fn" => {
                let impl_type = impls.last().map(|(ty, _)| ty.clone());
                if let Some((f, next)) = parse_fn(sf, i, &close, impl_type, &mut out.syncs) {
                    out.fns.push(f);
                    i = next;
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Map every opening `{`/`(`/`[` token index to its closing partner.
fn match_braces(sf: &SourceFile) -> BTreeMap<usize, usize> {
    let mut close = BTreeMap::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in sf.tokens().iter().enumerate() {
        match t.text.as_str() {
            "{" | "(" | "[" => stack.push(i),
            "}" | ")" | "]" => {
                if let Some(open) = stack.pop() {
                    close.insert(open, i);
                }
            }
            _ => {}
        }
    }
    close
}

/// Visibility of the item whose keyword sits at `kw`: look back over
/// `pub` / `pub(crate)` / `pub(super)` / `pub(in …)`.
fn vis_before(sf: &SourceFile, kw: usize) -> Vis {
    let toks = sf.tokens();
    if kw == 0 {
        return Vis::Private;
    }
    let mut j = kw - 1;
    // Skip qualifiers that may sit between `pub` and the keyword.
    while j > 0
        && matches!(
            toks[j].text.as_str(),
            "const" | "unsafe" | "async" | "extern" | "\""
        )
    {
        j -= 1;
    }
    if toks[j].text == "pub" {
        return Vis::Pub;
    }
    // `pub ( crate )` ends in `)` just before the keyword.
    if toks[j].text == ")" {
        let mut k = j;
        while k > 0 && toks[k].text != "(" {
            k -= 1;
        }
        if k >= 1 && toks[k - 1].text == "pub" {
            return Vis::PubScoped;
        }
    }
    Vis::Private
}

/// Space-join token texts in `[a, b)`.
fn join(sf: &SourceFile, a: usize, b: usize) -> String {
    let toks = sf.tokens();
    let mut s = String::new();
    for t in &toks[a..b.min(toks.len())] {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

/// Parse `#[deprecated…]` at `hash` and the item that follows it.
/// Returns the record and the token index to resume at (just past the
/// attribute — the item itself still gets walked for fns/structs).
fn parse_deprecated(
    sf: &SourceFile,
    hash: usize,
    close: &BTreeMap<usize, usize>,
) -> Option<(DeprecatedItem, usize)> {
    let toks = sf.tokens();
    if toks.get(hash + 1)?.text != "[" || toks.get(hash + 2)?.text != "deprecated" {
        return None;
    }
    let attr_end = close.get(&(hash + 1)).copied()?;
    // Skip any further attributes between this one and the item.
    let mut j = attr_end + 1;
    while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
        j = close.get(&(j + 1)).copied()? + 1;
    }
    // Find the item's name: first ident after an item keyword.
    let mut name = None;
    let mut k = j;
    let mut item_end = None;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "fn" | "struct" | "enum" | "trait" | "type" | "mod" | "const" | "static" => {
                if name.is_none() {
                    if let Some(n) = toks.get(k + 1) {
                        if n.kind == TokenKind::Ident {
                            name = Some(n.text.clone());
                        }
                    }
                }
            }
            "{" => {
                item_end = close.get(&k).copied();
                break;
            }
            ";" => {
                item_end = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    let end = item_end.unwrap_or(k.min(toks.len().saturating_sub(1)));
    Some((
        DeprecatedItem {
            name: name?,
            start_line: toks[hash].line,
            end_line: toks.get(end).map(|t| t.line).unwrap_or(toks[hash].line),
            tok_start: hash,
            tok_end: end,
        },
        attr_end + 1,
    ))
}

/// Parse `struct Name { fields }` with `struct` at `kw`. Tuple and unit
/// structs are recorded without fields.
fn parse_struct(
    sf: &SourceFile,
    kw: usize,
    close: &BTreeMap<usize, usize>,
    syncs: &mut Vec<SyncSite>,
) -> Option<(StructSym, usize)> {
    let toks = sf.tokens();
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let mut s = StructSym {
        name: name_tok.text.clone(),
        vis: vis_before(sf, kw),
        line: name_tok.line,
        fields: Vec::new(),
        in_test: sf.in_test(kw),
    };
    // Scan past generics to the body `{`, or stop at `;` / `(`.
    let mut j = kw + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle == 0 => break,
            ";" | "(" if angle == 0 => return Some((s, j + 1)),
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return Some((s, j));
    }
    let body_end = close.get(&j).copied().unwrap_or(toks.len() - 1);
    // Fields: `vis? name : TYPE ,` at the body's own depth.
    let mut k = j + 1;
    while k < body_end {
        // Skip field attributes.
        while k + 1 < body_end && toks[k].text == "#" && toks[k + 1].text == "[" {
            k = close.get(&(k + 1)).copied().unwrap_or(k + 1) + 1;
        }
        if toks[k].kind == TokenKind::Ident
            && k + 1 < body_end
            && toks[k + 1].text == ":"
            && toks.get(k + 2).map(|t| t.text != ":").unwrap_or(false)
        {
            let fname = toks[k].text.clone();
            let fvis = if k > 0 && (toks[k - 1].text == "pub" || toks[k - 1].text == ")") {
                vis_before(sf, k)
            } else {
                Vis::Private
            };
            // Type runs to the `,` (or body end) at nesting depth 0.
            let ty_start = k + 2;
            let mut depth = 0i32;
            let mut m = ty_start;
            while m < body_end {
                match toks[m].text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                m += 1;
            }
            let ty = join(sf, ty_start, m);
            for (marker, kind) in [
                ("Mutex", "mutex"),
                ("RwLock", "rwlock"),
                ("Condvar", "condvar"),
            ] {
                if ty.split(' ').any(|seg| seg == marker) {
                    syncs.push(SyncSite {
                        id: format!("{}.{}", s.name, fname),
                        kind: kind.to_string(),
                        line: toks[k].line,
                    });
                }
            }
            s.fields.push(FieldSym {
                name: fname,
                ty,
                vis: fvis,
                line: toks[k].line,
            });
            k = m + 1;
        } else {
            k += 1;
        }
    }
    Some((s, body_end + 1))
}

/// Parse `fn name(params) -> Ret { body }` with `fn` at `kw`.
fn parse_fn(
    sf: &SourceFile,
    kw: usize,
    close: &BTreeMap<usize, usize>,
    impl_type: Option<String>,
    syncs: &mut Vec<SyncSite>,
) -> Option<(FnSym, usize)> {
    let toks = sf.tokens();
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Parameter list: the first `(` after the name (past generics).
    let mut j = kw + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" if angle <= 0 => break,
            "{" | ";" if angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let params_end = close.get(&j).copied()?;
    let params = split_params(sf, j + 1, params_end);
    // Return type: `-> …` up to `{`, `;` or `where`.
    let mut ret = String::new();
    let mut k = params_end + 1;
    if k + 1 < toks.len() && toks[k].text == "-" && toks[k + 1].text == ">" {
        let ret_start = k + 2;
        let mut m = ret_start;
        let mut depth = 0i32;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "{" | ";" if depth == 0 => break,
                "where" if depth == 0 => break,
                _ => {}
            }
            m += 1;
        }
        ret = join(sf, ret_start, m);
        k = m;
    }
    // Body: first `{` at item level; a `;` first means a trait method
    // signature or extern decl — no body.
    let mut body_open = None;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "{" => {
                body_open = Some(k);
                break;
            }
            ";" => break,
            _ => {}
        }
        k += 1;
    }
    let qual = match &impl_type {
        Some(ty) => format!("{ty}::{name}"),
        None => name.clone(),
    };
    let (tok_end, calls) = match body_open {
        Some(open) => {
            let end = close.get(&open).copied().unwrap_or(toks.len() - 1);
            let calls = collect_calls(sf, open + 1, end, syncs, &qual);
            (end, calls)
        }
        None => (k.min(toks.len().saturating_sub(1)), Vec::new()),
    };
    Some((
        FnSym {
            name,
            qual,
            impl_type,
            vis: vis_before(sf, kw),
            params,
            ret,
            line: name_tok.line,
            tok_start: kw,
            tok_end,
            calls,
            in_test: sf.in_test(kw),
        },
        tok_end + 1,
    ))
}

/// Declared types of the parameters in `(a, b)` token span.
fn split_params(sf: &SourceFile, start: usize, end: usize) -> Vec<String> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut seg_start = start;
    let mut k = start;
    while k <= end {
        let at_end = k == end;
        let is_comma = !at_end && matches!(toks[k].text.as_str(), ",") && depth == 0;
        if !at_end {
            match toks[k].text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                _ => {}
            }
        }
        if is_comma || at_end {
            // `pat : TYPE` — keep the type side; bare `self` kept as-is.
            let seg_toks = &toks[seg_start..k];
            let colon = seg_toks.iter().enumerate().position(|(n, t)| {
                t.text == ":"
                    && seg_toks.get(n + 1).map(|t| t.text != ":").unwrap_or(true)
                    && seg_toks
                        .get(n.wrapping_sub(1))
                        .map(|t| t.text != ":")
                        .unwrap_or(true)
            });
            let ty = match colon {
                Some(c) => join(sf, seg_start + c + 1, k),
                None => join(sf, seg_start, k),
            };
            if !ty.is_empty() {
                out.push(ty);
            }
            seg_start = k + 1;
        }
        k += 1;
    }
    out
}

/// Call sites (and local lock/channel constructions) inside `[start, end)`.
fn collect_calls(
    sf: &SourceFile,
    start: usize,
    end: usize,
    syncs: &mut Vec<SyncSite>,
    fn_qual: &str,
) -> Vec<Call> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || is_call_keyword(&t.text) {
            continue;
        }
        if toks.get(i + 1).map(|n| n.text != "(").unwrap_or(true) {
            continue;
        }
        // A nested `fn name(…)` definition is not a call site.
        if i > start && toks[i - 1].text == "fn" {
            continue;
        }
        let recv = if i >= 2 && toks[i - 1].text == "." {
            // Walk the receiver chain back to its root.
            let terminal = if toks[i - 2].kind == TokenKind::Ident {
                toks[i - 2].text.clone()
            } else {
                String::new()
            };
            let mut r = i - 2;
            while r >= 2 && toks[r - 1].text == "." && toks[r - 2].kind == TokenKind::Ident {
                r -= 2;
            }
            if toks.get(r).map(|t| t.text == "self").unwrap_or(false) && terminal != "self" {
                Recv::SelfDot
            } else if toks[r].text == "self" {
                Recv::SelfDot
            } else {
                Recv::Other(terminal)
            }
        } else if i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" {
            if toks[i - 3].kind == TokenKind::Ident {
                Recv::Path(toks[i - 3].text.clone())
            } else {
                Recv::None
            }
        } else {
            Recv::None
        };
        // Local lock / channel construction: `Mutex::new(…)` etc. bound
        // by a `let`.
        if let Recv::Path(q) = &recv {
            let kind = match (q.as_str(), t.text.as_str()) {
                ("Mutex", "new") => Some("mutex"),
                ("RwLock", "new") => Some("rwlock"),
                ("Condvar", "new") => Some("condvar"),
                ("mpsc", "channel") | ("mpsc", "sync_channel") => Some("channel"),
                _ => None,
            };
            if let Some(kind) = kind {
                // Look back for `let [mut] NAME =` on this statement.
                let mut b = i;
                let mut bound = None;
                let mut steps = 0;
                while b > start && steps < 16 {
                    b -= 1;
                    steps += 1;
                    let bt = &toks[b];
                    if bt.text == ";" || bt.text == "{" || bt.text == "}" {
                        break;
                    }
                    if bt.text == "let" {
                        let mut n = b + 1;
                        if toks.get(n).map(|t| t.text == "mut").unwrap_or(false) {
                            n += 1;
                        }
                        if let Some(nt) = toks.get(n) {
                            if nt.kind == TokenKind::Ident {
                                bound = Some(nt.text.clone());
                            }
                        }
                        break;
                    }
                }
                syncs.push(SyncSite {
                    id: bound.unwrap_or_else(|| format!("{fn_qual}#anon")),
                    kind: kind.to_string(),
                    line: t.line,
                });
            }
        }
        out.push(Call {
            name: t.text.clone(),
            recv,
            line: t.line,
            col: t.col,
            tok: i,
        });
    }
    out
}

/// Token spans of `#[deprecated]` items in this file (attribute through
/// closing brace or `;`) — the definition sites R5 must not flag.
pub fn deprecated_spans(sf: &SourceFile) -> Vec<(usize, usize)> {
    let close = match_braces(sf);
    let toks = sf.tokens();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" {
            if let Some((d, next)) = parse_deprecated(sf, i, &close) {
                out.push((d.tok_start, d.tok_end));
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// The merged graph
// ---------------------------------------------------------------------

/// The whole-workspace symbol graph, merged deterministically from
/// per-file results in sorted path order.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    pub files: Vec<FileSymbols>,
    /// Lock-field identities `Struct.field` → kind, across the workspace.
    pub lock_fields: BTreeMap<String, String>,
    /// fn name → indices into the flat fn table.
    pub fns_by_name: BTreeMap<String, Vec<usize>>,
    /// fn qual (`Type::name`) → indices.
    pub fns_by_qual: BTreeMap<String, Vec<usize>>,
    /// Flat fn table: (file index, fn index).
    pub fn_table: Vec<(usize, usize)>,
    /// Deprecated item names, workspace-wide.
    pub deprecated_names: BTreeSet<String>,
}

impl SymbolGraph {
    /// Merge per-file symbol sets. `files` must already be sorted by
    /// path (the pass-1 driver guarantees this regardless of worker
    /// scheduling).
    pub fn build(files: Vec<FileSymbols>) -> SymbolGraph {
        let mut g = SymbolGraph {
            files,
            ..SymbolGraph::default()
        };
        for (fi, fs) in g.files.iter().enumerate() {
            for s in &fs.syncs {
                if s.id.contains('.') && s.kind != "channel" {
                    g.lock_fields.insert(s.id.clone(), s.kind.clone());
                }
            }
            for d in &fs.deprecated {
                g.deprecated_names.insert(d.name.clone());
            }
            for (si, f) in fs.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let idx = g.fn_table.len();
                g.fn_table.push((fi, si));
                g.fns_by_name.entry(f.name.clone()).or_default().push(idx);
                g.fns_by_qual.entry(f.qual.clone()).or_default().push(idx);
            }
        }
        g
    }

    pub fn fn_at(&self, idx: usize) -> &FnSym {
        let (fi, si) = self.fn_table[idx];
        &self.files[fi].fns[si]
    }

    pub fn file_of_fn(&self, idx: usize) -> &FileSymbols {
        &self.files[self.fn_table[idx].0]
    }

    /// Serialize the graph as deterministic JSON (`lint_symbols.json`).
    /// Call lists are emitted as sorted unique callee names to keep the
    /// artifact compact; IO call sites keep their lines.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"files\":[\n");
        for (i, f) in self.files.iter().enumerate() {
            let _ = write!(
                out,
                " {{\"path\":{},\"crate\":{},",
                js(&f.path),
                js(&f.crate_name)
            );
            out.push_str("\"fns\":[");
            for (j, func) in f.fns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let callees: BTreeSet<&str> = func.calls.iter().map(|c| c.name.as_str()).collect();
                let io: Vec<String> = {
                    let mut v: Vec<String> = func
                        .calls
                        .iter()
                        .filter(|c| call_is_io(c))
                        .map(|c| format!("{}@{}", c.name, c.line))
                        .collect();
                    v.sort();
                    v.dedup();
                    v
                };
                let _ = write!(
                    out,
                    "{{\"qual\":{},\"line\":{},\"vis\":{},\"params\":[{}],\"ret\":{},\"calls\":[{}],\"io\":[{}],\"test\":{}}}",
                    js(&func.qual),
                    func.line,
                    js(func.vis.as_str()),
                    func.params.iter().map(|p| js(p)).collect::<Vec<_>>().join(","),
                    js(&func.ret),
                    callees.iter().map(|c| js(c)).collect::<Vec<_>>().join(","),
                    io.iter().map(|c| js(c)).collect::<Vec<_>>().join(","),
                    func.in_test,
                );
            }
            out.push_str("],\"structs\":[");
            for (j, s) in f.structs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":{},\"line\":{},\"vis\":{},\"fields\":[{}]}}",
                    js(&s.name),
                    s.line,
                    js(s.vis.as_str()),
                    s.fields
                        .iter()
                        .map(|fl| format!(
                            "{{\"name\":{},\"ty\":{},\"vis\":{}}}",
                            js(&fl.name),
                            js(&fl.ty),
                            js(fl.vis.as_str())
                        ))
                        .collect::<Vec<_>>()
                        .join(","),
                );
            }
            out.push_str("],\"uses\":[");
            out.push_str(&f.uses.iter().map(|u| js(u)).collect::<Vec<_>>().join(","));
            out.push_str("],\"deprecated\":[");
            out.push_str(
                &f.deprecated
                    .iter()
                    .map(|d| {
                        format!(
                            "{{\"name\":{},\"lines\":[{},{}]}}",
                            js(&d.name),
                            d.start_line,
                            d.end_line
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push_str("],\"syncs\":[");
            out.push_str(
                &f.syncs
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"id\":{},\"kind\":{},\"line\":{}}}",
                            js(&s.id),
                            js(&s.kind),
                            s.line
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push_str("]}");
            out.push_str(if i + 1 < self.files.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }
}

fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols(src: &str) -> FileSymbols {
        extract(&SourceFile::parse("crates/x/src/lib.rs", "x", false, src))
    }

    #[test]
    fn extracts_fns_with_types_and_quals() {
        let s = symbols(
            r#"
            pub struct Q { inner: u32 }
            impl Q {
                pub fn push(&self, conn: TcpStream, depth: usize) -> Result<(), TcpStream> {
                    self.lock();
                }
                fn lock(&self) -> MutexGuard<'_, u32> { self.inner.lock() }
            }
            pub(crate) fn free(x: u64) {}
            "#,
        );
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].qual, "Q::push");
        assert_eq!(s.fns[0].vis, Vis::Pub);
        assert_eq!(s.fns[0].params, vec!["& self", "TcpStream", "usize"]);
        assert_eq!(s.fns[0].ret, "Result < ( ) , TcpStream >");
        assert_eq!(s.fns[1].qual, "Q::lock");
        assert!(s.fns[1].ret.contains("MutexGuard"));
        assert_eq!(s.fns[2].qual, "free");
        assert_eq!(s.fns[2].vis, Vis::PubScoped);
    }

    #[test]
    fn extracts_struct_fields_and_lock_sites() {
        let s = symbols(
            r#"
            pub struct Queue {
                inner: Mutex<QueueInner>,
                ready: Condvar,
                pub depth: usize,
            }
            "#,
        );
        assert_eq!(s.structs.len(), 1);
        assert_eq!(s.structs[0].fields.len(), 3);
        assert_eq!(s.structs[0].fields[2].vis, Vis::Pub);
        let ids: Vec<&str> = s.syncs.iter().map(|l| l.id.as_str()).collect();
        assert_eq!(ids, vec!["Queue.inner", "Queue.ready"]);
        assert_eq!(s.syncs[0].kind, "mutex");
        assert_eq!(s.syncs[1].kind, "condvar");
    }

    #[test]
    fn records_call_sites_with_receivers() {
        let s = symbols(
            r#"
            fn f(q: &Q) {
                helper();
                q.pop();
                self_less::path_call();
                std::fs::rename("a", "b");
            }
            "#,
        );
        let calls = &s.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.name == "helper" && c.recv == Recv::None));
        assert!(calls
            .iter()
            .any(|c| c.name == "pop" && c.recv == Recv::Other("q".into())));
        assert!(calls
            .iter()
            .any(|c| c.name == "path_call" && c.recv == Recv::Path("self_less".into())));
        let rename = calls.iter().find(|c| c.name == "rename").unwrap();
        assert_eq!(rename.recv, Recv::Path("fs".into()));
        assert!(call_is_io(rename));
    }

    #[test]
    fn deprecated_items_carry_their_span() {
        let s = symbols(
            "fn before() {}\n#[deprecated(since = \"0.2\", note = \"use X\")]\npub fn old_shim(x: u32) -> u32 {\n    x\n}\nfn after() { old_shim(1); }\n",
        );
        assert_eq!(s.deprecated.len(), 1);
        let d = &s.deprecated[0];
        assert_eq!(d.name, "old_shim");
        assert_eq!(d.start_line, 2);
        assert_eq!(d.end_line, 5);
    }

    #[test]
    fn local_lock_constructions_are_recorded() {
        let s = symbols(
            r#"
            fn f() {
                let m = Mutex::new(0u32);
                let (tx, rx) = mpsc::channel();
            }
            "#,
        );
        let kinds: Vec<(&str, &str)> = s
            .syncs
            .iter()
            .map(|l| (l.id.as_str(), l.kind.as_str()))
            .collect();
        assert!(kinds.contains(&("m", "mutex")));
        assert!(kinds.iter().any(|(_, k)| *k == "channel"));
    }

    #[test]
    fn graph_merges_and_indexes_fns() {
        let a = extract(&SourceFile::parse(
            "crates/a/src/lib.rs",
            "a",
            false,
            "pub fn shared() -> Result<u32, ()> { Ok(1) }",
        ));
        let b = extract(&SourceFile::parse(
            "crates/b/src/lib.rs",
            "b",
            false,
            "struct T; impl T { pub fn shared(&self) -> u32 { 2 } }",
        ));
        let g = SymbolGraph::build(vec![a, b]);
        assert_eq!(g.fns_by_name["shared"].len(), 2);
        assert_eq!(g.fns_by_qual["T::shared"].len(), 1);
        let json = g.to_json();
        assert!(json.contains("\"qual\":\"T::shared\""));
        // Deterministic: same inputs, same bytes.
        assert_eq!(json, g.to_json());
    }

    #[test]
    fn test_region_fns_are_excluded_from_indexes() {
        let s = extract(&SourceFile::parse(
            "crates/a/src/lib.rs",
            "a",
            false,
            "#[cfg(test)]\nmod tests { fn helper() -> Result<u32, ()> { Ok(1) } }\n",
        ));
        let g = SymbolGraph::build(vec![s]);
        assert!(!g.fns_by_name.contains_key("helper"));
    }
}
