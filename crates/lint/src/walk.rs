//! Workspace file discovery and classification.
//!
//! Walks the repository for `.rs` files, skipping build output and VCS
//! directories, and classifies each path into (crate name, test/dev
//! flag). Paths come back sorted so every downstream stage — linting,
//! JSON emission, baseline diffing — is deterministic.

use std::fs;
use std::path::{Path, PathBuf};

/// One discovered source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkspaceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// `crates/<name>` directory name, or `flashpan` for the root crate.
    pub crate_name: String,
    /// Test/dev code: under `tests/`, `benches/`, `examples/` or `bin/`.
    pub is_test_file: bool,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "node_modules"];

/// Collect every workspace `.rs` file under `root`, sorted by relative
/// path.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<WorkspaceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<WorkspaceFile>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(classify(&path, rel));
        }
    }
    Ok(())
}

fn classify(abs: &Path, rel: String) -> WorkspaceFile {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        "flashpan".to_string()
    };
    let is_test_file = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples" | "bin"));
    WorkspaceFile {
        abs: abs.to_path_buf(),
        rel,
        crate_name,
        is_test_file,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(rel: &str) -> WorkspaceFile {
        classify(Path::new(rel), rel.to_string())
    }

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(c("crates/core/src/detect/sandwich.rs").crate_name, "core");
        assert_eq!(c("crates/lint/src/main.rs").crate_name, "lint");
        assert_eq!(c("src/lib.rs").crate_name, "flashpan");
        assert_eq!(c("tests/golden.rs").crate_name, "flashpan");
    }

    #[test]
    fn test_and_dev_paths_are_flagged() {
        assert!(c("tests/golden.rs").is_test_file);
        assert!(c("crates/core/tests/detector_robustness.rs").is_test_file);
        assert!(c("crates/bench/benches/throughput.rs").is_test_file);
        assert!(c("crates/bench/src/bin/detect_throughput.rs").is_test_file);
        assert!(c("examples/quickstart.rs").is_test_file);
        assert!(!c("crates/core/src/index.rs").is_test_file);
        assert!(!c("src/lib.rs").is_test_file);
    }
}
