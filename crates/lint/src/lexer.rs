//! A minimal Rust lexer — just enough token structure for `mev-lint`'s
//! rules: identifiers, punctuation, literals, and line numbers, with
//! comments and string contents stripped so rule matching never fires on
//! prose or fixture text.
//!
//! This is deliberately not a full parser. The rules in
//! [`crate::rules`] are token-pattern checks (the same shape a `syn`
//! visitor would walk, minus type information — which `syn` does not
//! have either); a hand-rolled lexer keeps the tool free of external
//! dependencies so it builds in minimal environments and stays out of
//! the library dependency graph.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text. For string/char literals this is the *delimiter only*
    /// (`"`), never the contents; rule matching must not see literal text.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token's first byte.
    pub col: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `in`, `as`, `mod`, …).
    Ident,
    /// Numeric literal (`10_000`, `0xff`, `1e18`).
    Number,
    /// String, raw-string, char or byte literal (contents stripped).
    Literal,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Single punctuation byte: `. , ; : ( ) [ ] { } + - * / % = < > & | ! # ? @ ^ ~ $`.
    Punct,
}

/// A line-comment found during lexing, for suppression-directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Unterminated constructs are tolerated (the file
/// will not compile anyway); the lexer never panics on arbitrary input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! advance {
        ($n:expr) => {{
            let n: usize = $n;
            let mut k = 0;
            while k < n && i < b.len() {
                if b[i] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
                k += 1;
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            let at_line = line;
            while i < b.len() && b[i] != b'\n' {
                advance!(1);
            }
            comments.push(Comment {
                line: at_line,
                text: src[start..i].to_string(),
            });
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let at_line = line;
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    advance!(2);
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    advance!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    advance!(1);
                }
            }
            comments.push(Comment {
                line: at_line,
                text: src[start..i.min(src.len())].to_string(),
            });
            continue;
        }
        // Raw string / raw byte string: r"…", r#"…"#, br##"…"##.
        if c == b'r' || c == b'b' {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    let (l0, c0) = (line, col);
                    // Consume through the closing quote + hashes.
                    advance!(k - i + 1);
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < b.len() && b[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                advance!(1 + hashes);
                                break 'raw;
                            }
                        }
                        advance!(1);
                    }
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "\"".to_string(),
                        line: l0,
                        col: c0,
                    });
                    continue;
                }
            }
        }
        // String literal (or byte string).
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let (l0, c0) = (line, col);
            if c == b'b' {
                advance!(1);
            }
            advance!(1); // opening quote
            while i < b.len() {
                if b[i] == b'\\' {
                    advance!(2);
                } else if b[i] == b'"' {
                    advance!(1);
                    break;
                } else {
                    advance!(1);
                }
            }
            tokens.push(Token {
                kind: TokenKind::Literal,
                text: "\"".to_string(),
                line: l0,
                col: c0,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == b'\'' {
            let (l0, c0) = (line, col);
            // Lifetime: 'ident not followed by a closing quote.
            let is_lifetime = i + 1 < b.len()
                && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                && !(i + 2 < b.len() && b[i + 2] == b'\'');
            if is_lifetime {
                advance!(1);
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    advance!(1);
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: src[start..i].to_string(),
                    line: l0,
                    col: c0,
                });
            } else {
                // Char literal: consume to closing quote, honouring escapes.
                advance!(1);
                while i < b.len() {
                    if b[i] == b'\\' {
                        advance!(2);
                    } else if b[i] == b'\'' {
                        advance!(1);
                        break;
                    } else {
                        advance!(1);
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "'".to_string(),
                    line: l0,
                    col: c0,
                });
            }
            continue;
        }
        // Identifier / keyword (incl. raw identifiers `r#type`).
        if c.is_ascii_alphabetic() || c == b'_' {
            let (l0, c0) = (line, col);
            let start = i;
            if c == b'r' && i + 1 < b.len() && b[i + 1] == b'#' {
                advance!(2);
            }
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                advance!(1);
            }
            let text = src[start..i].trim_start_matches("r#").to_string();
            tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line: l0,
                col: c0,
            });
            continue;
        }
        // Number literal (digits, underscores, hex/bin/oct, float, suffix).
        if c.is_ascii_digit() {
            let (l0, c0) = (line, col);
            let start = i;
            while i < b.len()
                && (b[i].is_ascii_alphanumeric()
                    || b[i] == b'_'
                    || b[i] == b'.' && {
                        // `1..x` is a range, not a float: only consume the dot
                        // when followed by a digit.
                        i + 1 < b.len() && b[i + 1].is_ascii_digit()
                    })
            {
                advance!(1);
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: src[start..i].to_string(),
                line: l0,
                col: c0,
            });
            continue;
        }
        // Single punctuation byte.
        let (l0, c0) = (line, col);
        let text = (c as char).to_string();
        advance!(1);
        tokens.push(Token {
            kind: TokenKind::Punct,
            text,
            line: l0,
            col: c0,
        });
    }

    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = a.unwrap();");
        let texts: Vec<&str> = ts.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]
        );
    }

    #[test]
    fn comments_are_stripped_but_collected() {
        let l = lex("a // panic!()\nb /* unwrap() */ c");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("panic!"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.tokens[1].line, 2);
    }

    #[test]
    fn string_contents_are_stripped() {
        let l = lex(r#"f("x.unwrap() for k in m.values()")"#);
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "values"));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_escapes() {
        let l = lex(r##"let s = r#"has "quotes" and unwrap()"#; let t = "esc \" quote";"##);
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "quotes" && t.text != "esc"));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let ts = kinds("0..4 1_000u128 0xff 1e18 1.5");
        let nums: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "4", "1_000u128", "0xff", "1e18", "1.5"]);
    }
}
