//! Baseline: freeze existing debt, fail only on *new* findings.
//!
//! The checked-in `lint_baseline.json` is, since v2, an object with a
//! per-rule count header plus the frozen findings:
//!
//! ```json
//! {"version":2,"counts":{"panic":3,"wei-math":25},"findings":[ … ]}
//! ```
//!
//! The legacy bare-array format (just the findings, as `--json` emits)
//! still parses; the header counts are informational — identity always
//! derives from the findings themselves. A current finding is "new"
//! when its identity key (file + rule + snippet — line numbers
//! excluded, so unrelated edits that shift code do not un-baseline old
//! debt) occurs more times in the current run than in the baseline.

use crate::report::{from_json, to_json, Finding};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed baseline: identity key → occurrence count.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, u32>,
    /// Number of findings the baseline froze.
    pub len: usize,
}

impl Baseline {
    /// Build from findings (current or parsed-from-disk).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.key()).or_default() += 1;
        }
        Baseline {
            counts,
            len: findings.len(),
        }
    }

    /// Parse the baseline file contents — v2 object or legacy array.
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let trimmed = json.trim_start();
        if trimmed.starts_with('[') {
            return Ok(Baseline::from_findings(&from_json(json)?));
        }
        if !trimmed.starts_with('{') {
            return Err("baseline must be a JSON object (v2) or array (legacy)".to_string());
        }
        let arr = extract_findings_array(json)
            .ok_or_else(|| "v2 baseline has no \"findings\" array".to_string())?;
        Ok(Baseline::from_findings(&from_json(arr)?))
    }

    /// Split `current` into (new, baselined). Within one identity key the
    /// *first* occurrences are treated as baselined and the excess as
    /// new; findings arrive sorted, so this is deterministic.
    pub fn diff(&self, current: &[Finding]) -> (Vec<Finding>, Vec<Finding>) {
        let mut seen: BTreeMap<String, u32> = BTreeMap::new();
        let mut fresh = Vec::new();
        let mut known = Vec::new();
        for f in current {
            let key = f.key();
            let used = seen.entry(key.clone()).or_default();
            *used += 1;
            if *used <= self.counts.get(&key).copied().unwrap_or(0) {
                known.push(f.clone());
            } else {
                fresh.push(f.clone());
            }
        }
        (fresh, known)
    }

    /// Baselined findings that no longer occur — debt that was paid down.
    /// Purely informational (stale entries never fail the build), but
    /// surfaced so `--update-baseline` gets run and the ratchet tightens.
    pub fn stale_count(&self, current: &[Finding]) -> usize {
        let mut cur: BTreeMap<String, u32> = BTreeMap::new();
        for f in current {
            *cur.entry(f.key()).or_default() += 1;
        }
        self.counts
            .iter()
            .map(|(k, &n)| n.saturating_sub(cur.get(k).copied().unwrap_or(0)) as usize)
            .sum()
    }
}

/// Serialize findings in the v2 baseline format: a per-rule count
/// header (the ratchet's human-auditable summary) plus the findings in
/// the same element format `--json` emits.
pub fn to_v2_json(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule.as_str()).or_default() += 1;
    }
    let mut out = String::from("{\"version\":2,\"counts\":{");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{rule}\":{n}");
    }
    out.push_str("},\"findings\":");
    // Reuse the findings serializer; its trailing newline becomes the
    // object's closing line.
    let arr = to_json(findings);
    out.push_str(arr.trim_end());
    out.push_str("}\n");
    out
}

/// Locate the `"findings": [ … ]` substring inside a v2 baseline
/// object, tolerating brackets inside JSON strings.
fn extract_findings_array(json: &str) -> Option<&str> {
    let key = "\"findings\"";
    let at = json.find(key)?;
    let rest = &json[at + key.len()..];
    let open_rel = rest.find('[')?;
    // Everything between the key and the bracket must be `:` and space.
    if !rest[..open_rel]
        .trim()
        .trim_start_matches(':')
        .trim()
        .is_empty()
    {
        return None;
    }
    let bytes = rest.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for (i, &b) in bytes.iter().enumerate().skip(open_rel) {
        if in_str {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open_rel..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{sort_findings, to_json};

    fn finding(file: &str, line: u32, rule: &str, snippet: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col: 1,
            rule: rule.to_string(),
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn baselined_findings_pass_new_ones_fail() {
        let old = vec![finding("a.rs", 10, "panic", "x.unwrap();")];
        let baseline = Baseline::from_findings(&old);
        // Same finding moved to another line: still baselined.
        let moved = vec![finding("a.rs", 42, "panic", "x.unwrap();")];
        let (fresh, known) = baseline.diff(&moved);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
        // A second identical unwrap on a *different* snippet is new.
        let mut cur = moved.clone();
        cur.push(finding("a.rs", 50, "panic", "y.unwrap();"));
        sort_findings(&mut cur);
        let (fresh, known) = baseline.diff(&cur);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].snippet, "y.unwrap();");
        assert_eq!(known.len(), 1);
    }

    #[test]
    fn duplicate_snippets_are_counted_not_collapsed() {
        let old = vec![
            finding("a.rs", 1, "panic", "x.unwrap();"),
            finding("a.rs", 9, "panic", "x.unwrap();"),
        ];
        let baseline = Baseline::from_findings(&old);
        let mut three = old.clone();
        three.push(finding("a.rs", 20, "panic", "x.unwrap();"));
        let (fresh, known) = baseline.diff(&three);
        assert_eq!(known.len(), 2, "two occurrences were frozen");
        assert_eq!(fresh.len(), 1, "the third is new");
    }

    #[test]
    fn roundtrip_through_json_file_format() {
        let mut old = vec![
            finding("b.rs", 3, "wei-math", "a + b_wei"),
            finding("a.rs", 1, "determinism", "for k in m.keys() {"),
        ];
        sort_findings(&mut old);
        let baseline = Baseline::parse(&to_json(&old)).expect("parses");
        assert_eq!(baseline.len, 2);
        let (fresh, known) = baseline.diff(&old);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 2);
        // Seed a brand-new violation: it must come out as fresh.
        let mut cur = old.clone();
        cur.push(finding("c.rs", 7, "atomics", "Ordering::Relaxed"));
        sort_findings(&mut cur);
        let (fresh, _) = baseline.diff(&cur);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "atomics");
    }

    #[test]
    fn stale_entries_are_reported() {
        let old = vec![
            finding("a.rs", 1, "panic", "x.unwrap();"),
            finding("a.rs", 2, "panic", "y.unwrap();"),
        ];
        let baseline = Baseline::from_findings(&old);
        let (fresh, known) = baseline.diff(&old[..1]);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
        assert_eq!(baseline.stale_count(&old[..1]), 1);
        assert_eq!(baseline.stale_count(&old), 0);
    }

    #[test]
    fn v2_object_format_roundtrips() {
        let mut old = vec![
            finding("b.rs", 3, "wei-math", "a + b_wei"),
            finding("b.rs", 9, "wei-math", "c * fee"),
            finding("a.rs", 1, "determinism", "for k in m.keys() {"),
        ];
        sort_findings(&mut old);
        let v2 = to_v2_json(&old);
        assert!(v2.starts_with("{\"version\":2,"));
        assert!(v2.contains("\"counts\":{\"determinism\":1,\"wei-math\":2}"));
        let baseline = Baseline::parse(&v2).expect("v2 parses");
        assert_eq!(baseline.len, 3);
        let (fresh, known) = baseline.diff(&old);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 3);
        // Deterministic bytes.
        assert_eq!(v2, to_v2_json(&old));
    }

    #[test]
    fn v2_parse_tolerates_brackets_in_snippets() {
        let old = vec![finding("a.rs", 1, "panic", "m[\"k]\"].unwrap();")];
        let baseline = Baseline::parse(&to_v2_json(&old)).expect("parses");
        assert_eq!(baseline.len, 1);
    }

    #[test]
    fn non_json_baseline_is_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"version\":2}").is_err());
    }

    #[test]
    fn empty_baseline_fails_everything() {
        let baseline = Baseline::default();
        let cur = vec![finding("a.rs", 1, "panic", "x.unwrap();")];
        let (fresh, known) = baseline.diff(&cur);
        assert_eq!(fresh.len(), 1);
        assert!(known.is_empty());
    }
}
