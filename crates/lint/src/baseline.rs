//! Baseline: freeze existing debt, fail only on *new* findings.
//!
//! The checked-in `lint_baseline.json` is a findings file (same format
//! `--json` emits). A current finding is "new" when its identity key
//! (file + rule + snippet — line numbers excluded, so unrelated edits
//! that shift code do not un-baseline old debt) occurs more times in the
//! current run than in the baseline.

use crate::report::{from_json, Finding};
use std::collections::BTreeMap;

/// Parsed baseline: identity key → occurrence count.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, u32>,
    /// Number of findings the baseline froze.
    pub len: usize,
}

impl Baseline {
    /// Build from findings (current or parsed-from-disk).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.key()).or_default() += 1;
        }
        Baseline {
            counts,
            len: findings.len(),
        }
    }

    /// Parse the baseline file contents.
    pub fn parse(json: &str) -> Result<Baseline, String> {
        Ok(Baseline::from_findings(&from_json(json)?))
    }

    /// Split `current` into (new, baselined). Within one identity key the
    /// *first* occurrences are treated as baselined and the excess as
    /// new; findings arrive sorted, so this is deterministic.
    pub fn diff(&self, current: &[Finding]) -> (Vec<Finding>, Vec<Finding>) {
        let mut seen: BTreeMap<String, u32> = BTreeMap::new();
        let mut fresh = Vec::new();
        let mut known = Vec::new();
        for f in current {
            let key = f.key();
            let used = seen.entry(key.clone()).or_default();
            *used += 1;
            if *used <= self.counts.get(&key).copied().unwrap_or(0) {
                known.push(f.clone());
            } else {
                fresh.push(f.clone());
            }
        }
        (fresh, known)
    }

    /// Baselined findings that no longer occur — debt that was paid down.
    /// Purely informational (stale entries never fail the build), but
    /// surfaced so `--update-baseline` gets run and the ratchet tightens.
    pub fn stale_count(&self, current: &[Finding]) -> usize {
        let mut cur: BTreeMap<String, u32> = BTreeMap::new();
        for f in current {
            *cur.entry(f.key()).or_default() += 1;
        }
        self.counts
            .iter()
            .map(|(k, &n)| n.saturating_sub(cur.get(k).copied().unwrap_or(0)) as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{sort_findings, to_json};

    fn finding(file: &str, line: u32, rule: &str, snippet: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col: 1,
            rule: rule.to_string(),
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn baselined_findings_pass_new_ones_fail() {
        let old = vec![finding("a.rs", 10, "panic", "x.unwrap();")];
        let baseline = Baseline::from_findings(&old);
        // Same finding moved to another line: still baselined.
        let moved = vec![finding("a.rs", 42, "panic", "x.unwrap();")];
        let (fresh, known) = baseline.diff(&moved);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
        // A second identical unwrap on a *different* snippet is new.
        let mut cur = moved.clone();
        cur.push(finding("a.rs", 50, "panic", "y.unwrap();"));
        sort_findings(&mut cur);
        let (fresh, known) = baseline.diff(&cur);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].snippet, "y.unwrap();");
        assert_eq!(known.len(), 1);
    }

    #[test]
    fn duplicate_snippets_are_counted_not_collapsed() {
        let old = vec![
            finding("a.rs", 1, "panic", "x.unwrap();"),
            finding("a.rs", 9, "panic", "x.unwrap();"),
        ];
        let baseline = Baseline::from_findings(&old);
        let mut three = old.clone();
        three.push(finding("a.rs", 20, "panic", "x.unwrap();"));
        let (fresh, known) = baseline.diff(&three);
        assert_eq!(known.len(), 2, "two occurrences were frozen");
        assert_eq!(fresh.len(), 1, "the third is new");
    }

    #[test]
    fn roundtrip_through_json_file_format() {
        let mut old = vec![
            finding("b.rs", 3, "wei-math", "a + b_wei"),
            finding("a.rs", 1, "determinism", "for k in m.keys() {"),
        ];
        sort_findings(&mut old);
        let baseline = Baseline::parse(&to_json(&old)).expect("parses");
        assert_eq!(baseline.len, 2);
        let (fresh, known) = baseline.diff(&old);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 2);
        // Seed a brand-new violation: it must come out as fresh.
        let mut cur = old.clone();
        cur.push(finding("c.rs", 7, "atomics", "Ordering::Relaxed"));
        sort_findings(&mut cur);
        let (fresh, _) = baseline.diff(&cur);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "atomics");
    }

    #[test]
    fn stale_entries_are_reported() {
        let old = vec![
            finding("a.rs", 1, "panic", "x.unwrap();"),
            finding("a.rs", 2, "panic", "y.unwrap();"),
        ];
        let baseline = Baseline::from_findings(&old);
        let (fresh, known) = baseline.diff(&old[..1]);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
        assert_eq!(baseline.stale_count(&old[..1]), 1);
        assert_eq!(baseline.stale_count(&old), 0);
    }

    #[test]
    fn empty_baseline_fails_everything() {
        let baseline = Baseline::default();
        let cur = vec![finding("a.rs", 1, "panic", "x.unwrap();")];
        let (fresh, known) = baseline.diff(&cur);
        assert_eq!(fresh.len(), 1);
        assert!(known.is_empty());
    }
}
