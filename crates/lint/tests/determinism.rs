//! End-to-end determinism: two analyses of the real workspace must be
//! byte-identical — findings JSON and the pass-1 symbol graph — even
//! though pass 1 runs on a thread pool. The merge is keyed by sorted
//! path, so scheduling must not leak into any serialized artifact.

use mev_lint::report::to_json;
use mev_lint::Options;
use std::path::PathBuf;

/// Walk up from the test binary's manifest dir to the workspace root.
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "no workspace root above CARGO_MANIFEST_DIR");
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let root = workspace_root();
    let opts_a = Options {
        threads: 4,
        ..Options::default()
    };
    let opts_b = Options {
        threads: 1,
        ..Options::default()
    };
    let a = mev_lint::analyze(&root, &opts_a).expect("first analysis");
    let b = mev_lint::analyze(&root, &opts_b).expect("second analysis");
    assert_eq!(
        to_json(&a.findings),
        to_json(&b.findings),
        "findings differ between runs"
    );
    assert_eq!(
        a.graph.to_json(),
        b.graph.to_json(),
        "symbol graph differs between runs"
    );
}
