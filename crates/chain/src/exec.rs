//! The execution engine: applies transactions to the [`World`], charging
//! gas, splitting fees between burn and miner (post-London), paying
//! coinbase tips, and emitting the event logs the paper's detectors crawl.
//!
//! Protocol actions execute natively (no EVM), but with the same observable
//! surface: gas consumption, revert-on-failure with fee retention (§2.1),
//! and the `Transfer`/`Swap`/`Liquidation`/`FlashLoan` events of the real
//! contracts.

use crate::state::StateDb;
use crate::world::World;
use mev_dex::pool::build::pool_address;
use mev_lending::platform::platform_address;
use mev_types::{
    Action, Address, ExecOutcome, Gas, Log, LogEvent, Receipt, SwapCall, Transaction, Wei,
};

/// Per-block execution environment.
#[derive(Debug, Clone, Copy)]
pub struct BlockEnv {
    pub number: u64,
    pub timestamp: u64,
    pub miner: Address,
    pub base_fee: Wei,
}

/// Why a transaction was rejected without touching state (the analogue of
/// failing txpool validation — such a tx never enters a block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidTx {
    /// Nonce does not match the account's next nonce.
    BadNonce { expected: u64, got: u64 },
    /// Max fee below the block base fee.
    FeeTooLow,
    /// Sender cannot cover `gas_limit · price + value + tip`.
    InsufficientFunds,
}

impl std::fmt::Display for InvalidTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidTx::BadNonce { expected, got } => {
                write!(f, "bad nonce {got}, expected {expected}")
            }
            InvalidTx::FeeTooLow => write!(f, "max fee below base fee"),
            InvalidTx::InsufficientFunds => write!(f, "insufficient funds for gas + value"),
        }
    }
}

impl std::error::Error for InvalidTx {}

/// Gas charged by each action, mirroring typical mainnet costs.
pub fn action_gas(action: &Action) -> Gas {
    match action {
        Action::Transfer { .. } => Gas(21_000),
        Action::Swap(_) => Gas(110_000),
        Action::Route(legs) => Gas(60_000 + 70_000 * legs.len() as u64),
        Action::Deposit { .. } => Gas(140_000),
        Action::Borrow { .. } => Gas(170_000),
        Action::Repay { .. } => Gas(120_000),
        Action::Liquidate { .. } => Gas(280_000),
        Action::OracleUpdate { .. } => Gas(45_000),
        Action::FlashLoan { inner, .. } => Gas(90_000) + inner.iter().map(action_gas).sum::<Gas>(),
        Action::Payout { recipients } => Gas(21_000 * recipients.len().max(1) as u64),
        Action::Other { gas } => *gas,
    }
}

/// Native value the action transfers out of the sender (for the upfront
/// balance check).
fn native_value(action: &Action) -> Wei {
    match action {
        Action::Transfer { value, .. } => *value,
        Action::Payout { recipients } => recipients.iter().map(|(_, v)| *v).sum(),
        _ => Wei::ZERO,
    }
}

/// Execute one transaction against the world.
///
/// Returns `Err(InvalidTx)` if the transaction could never enter a block
/// (state untouched); otherwise a [`Receipt`] whose outcome is `Reverted`
/// when the action failed (gas charged, effects rolled back, §2.1).
pub fn execute(world: &mut World, env: &BlockEnv, tx: &Transaction) -> Result<Receipt, InvalidTx> {
    // txpool-level validity.
    let expected = world.state.nonce(tx.from);
    if tx.nonce != expected {
        return Err(InvalidTx::BadNonce {
            expected,
            got: tx.nonce,
        });
    }
    if !tx.fee.is_includable(env.base_fee) {
        return Err(InvalidTx::FeeTooLow);
    }
    let price = tx.fee.effective_gas_price(env.base_fee);
    // lint:allow(wei-math: Wei::add is checked in mev-types — aborts on overflow, never wraps)
    let worst_case = tx.gas_limit.cost(price) + native_value(&tx.action) + tx.coinbase_tip;
    if world.state.balance(tx.from) < worst_case {
        return Err(InvalidTx::InsufficientFunds);
    }

    world.state.bump_nonce(tx.from);

    // Determine gas: actions are charged their schedule cost; an
    // under-provisioned gas limit is an out-of-gas revert that consumes
    // the entire limit.
    let needed = action_gas(&tx.action);
    let (gas_used, out_of_gas) = if needed > tx.gas_limit {
        (tx.gas_limit, true)
    } else {
        (needed, false)
    };

    // Charge fees: burn the base-fee share (London), credit the miner the rest.
    let fee_total = gas_used.cost(price);
    let tip_per_gas = tx.fee.miner_tip_per_gas(env.base_fee);
    let miner_fee = gas_used.cost(tip_per_gas);
    // lint:allow(wei-math: tip_per_gas ≤ price by construction, and Wei::sub is checked in mev-types)
    let burn = fee_total - miner_fee;
    assert!(
        world.state.debit(tx.from, fee_total),
        "upfront check guarantees fee"
    );
    world.state.burned += burn;
    world.state.credit(env.miner, miner_fee);

    let mut receipt = Receipt {
        tx_hash: tx.hash(),
        index: 0, // assigned by the block builder
        from: tx.from,
        outcome: ExecOutcome::Reverted,
        gas_used,
        effective_gas_price: price,
        miner_fee,
        coinbase_transfer: Wei::ZERO,
        logs: Vec::new(),
    };

    if out_of_gas {
        return Ok(receipt);
    }

    let mut logs = Vec::new();
    match run_action(world, env, tx.from, &tx.action, &mut logs) {
        Ok(()) => {
            // Pay the coinbase tip only on success, as a Flashbots bundle
            // contract would.
            if !tx.coinbase_tip.is_zero() {
                assert!(
                    world.state.transfer(tx.from, env.miner, tx.coinbase_tip),
                    "upfront check guarantees tip"
                );
                receipt.coinbase_transfer = tx.coinbase_tip;
            }
            receipt.outcome = ExecOutcome::Success;
            receipt.logs = logs;
        }
        Err(_) => {
            // Effects already rolled back by run_action; logs discarded.
        }
    }
    Ok(receipt)
}

/// Action-level failure (causes a revert).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionError {
    InsufficientBalance,
    Swap(String),
    Lending(String),
    FlashLoanNotRepaid,
    UnsupportedInner,
}

fn run_action(
    world: &mut World,
    env: &BlockEnv,
    sender: Address,
    action: &Action,
    logs: &mut Vec<Log>,
) -> Result<(), ActionError> {
    match action {
        Action::Transfer { to, value } => {
            if !world.state.transfer(sender, *to, *value) {
                return Err(ActionError::InsufficientBalance);
            }
            Ok(())
        }
        Action::Swap(call) => run_swap(world, sender, call, logs),
        Action::Route(legs) => run_route(world, sender, legs, logs),
        Action::Deposit {
            platform,
            token,
            amount,
        } => {
            if !world.state.burn_token(sender, *token, *amount) {
                return Err(ActionError::InsufficientBalance);
            }
            world
                .lending
                .platform_mut(*platform)
                .deposit(sender, *token, *amount);
            let addr = platform_address(*platform);
            logs.push(Log::new(
                world.registry.address_of(*token),
                LogEvent::Transfer {
                    token: *token,
                    from: sender,
                    to: addr,
                    amount: *amount,
                },
            ));
            logs.push(Log::new(
                addr,
                LogEvent::Deposit {
                    platform: *platform,
                    user: sender,
                    token: *token,
                    amount: *amount,
                },
            ));
            Ok(())
        }
        Action::Borrow {
            platform,
            token,
            amount,
        } => {
            let oracle = &world.oracle;
            world
                .lending
                .platform_mut(*platform)
                .borrow(sender, *token, *amount, oracle)
                .map_err(|e| ActionError::Lending(e.to_string()))?;
            world.state.mint_token(sender, *token, *amount);
            let addr = platform_address(*platform);
            logs.push(Log::new(
                world.registry.address_of(*token),
                LogEvent::Transfer {
                    token: *token,
                    from: addr,
                    to: sender,
                    amount: *amount,
                },
            ));
            logs.push(Log::new(
                addr,
                LogEvent::Borrow {
                    platform: *platform,
                    user: sender,
                    token: *token,
                    amount: *amount,
                },
            ));
            Ok(())
        }
        Action::Repay {
            platform,
            token,
            amount,
        } => {
            if world.state.token_balance(sender, *token) < *amount {
                return Err(ActionError::InsufficientBalance);
            }
            let applied = world
                .lending
                .platform_mut(*platform)
                .repay(sender, *token, *amount)
                .map_err(|e| ActionError::Lending(e.to_string()))?;
            assert!(
                world.state.burn_token(sender, *token, applied),
                "balance checked"
            );
            let addr = platform_address(*platform);
            logs.push(Log::new(
                world.registry.address_of(*token),
                LogEvent::Transfer {
                    token: *token,
                    from: sender,
                    to: addr,
                    amount: applied,
                },
            ));
            logs.push(Log::new(
                addr,
                LogEvent::Repay {
                    platform: *platform,
                    user: sender,
                    token: *token,
                    amount: applied,
                },
            ));
            Ok(())
        }
        Action::Liquidate {
            platform,
            borrower,
            debt_token,
            repay_amount,
        } => {
            if world.state.token_balance(sender, *debt_token) < *repay_amount {
                return Err(ActionError::InsufficientBalance);
            }
            let oracle = world.oracle.clone();
            let outcome = world
                .lending
                .platform_mut(*platform)
                .liquidate(*borrower, *debt_token, *repay_amount, &oracle)
                .map_err(|e| ActionError::Lending(e.to_string()))?;
            assert!(
                world.state.burn_token(sender, *debt_token, *repay_amount),
                "balance checked"
            );
            world
                .state
                .mint_token(sender, outcome.collateral_token, outcome.collateral_seized);
            let addr = platform_address(*platform);
            logs.push(Log::new(
                world.registry.address_of(*debt_token),
                LogEvent::Transfer {
                    token: *debt_token,
                    from: sender,
                    to: addr,
                    amount: *repay_amount,
                },
            ));
            logs.push(Log::new(
                world.registry.address_of(outcome.collateral_token),
                LogEvent::Transfer {
                    token: outcome.collateral_token,
                    from: addr,
                    to: sender,
                    amount: outcome.collateral_seized,
                },
            ));
            logs.push(Log::new(
                addr,
                LogEvent::Liquidation {
                    platform: *platform,
                    liquidator: sender,
                    borrower: *borrower,
                    debt_token: *debt_token,
                    debt_repaid: outcome.debt_repaid,
                    collateral_token: outcome.collateral_token,
                    collateral_seized: outcome.collateral_seized,
                },
            ));
            Ok(())
        }
        Action::OracleUpdate { token, price_wei } => {
            world.oracle.update(*token, env.number, *price_wei);
            world.dex.sync_orderbooks(*token, *price_wei);
            logs.push(Log::new(
                world.registry.address_of(*token),
                LogEvent::OracleUpdate {
                    token: *token,
                    price_wei: *price_wei,
                },
            ));
            Ok(())
        }
        Action::FlashLoan {
            platform,
            token,
            amount,
            inner,
        } => run_flash_loan(world, env, sender, *platform, *token, *amount, inner, logs),
        Action::Payout { recipients } => {
            let mut total = Wei::ZERO;
            for (to, value) in recipients {
                if !world.state.transfer(sender, *to, *value) {
                    return Err(ActionError::InsufficientBalance);
                }
                total += *value;
            }
            logs.push(Log::new(
                sender,
                LogEvent::Payout {
                    payer: sender,
                    recipients: recipients.len() as u32,
                    total,
                },
            ));
            Ok(())
        }
        Action::Other { .. } => Ok(()),
    }
}

fn run_swap(
    world: &mut World,
    sender: Address,
    call: &SwapCall,
    logs: &mut Vec<Log>,
) -> Result<(), ActionError> {
    if world.state.token_balance(sender, call.token_in) < call.amount_in {
        return Err(ActionError::InsufficientBalance);
    }
    let pool = world
        .dex
        .pool_mut(call.pool)
        .ok_or_else(|| ActionError::Swap("no such pool".into()))?;
    if pool.other(call.token_in) != Some(call.token_out) {
        return Err(ActionError::Swap("pair mismatch".into()));
    }
    let out = pool
        .swap(call.token_in, call.amount_in, call.min_amount_out)
        .map_err(|e| ActionError::Swap(e.to_string()))?;
    let pool_addr = pool_address(call.pool);
    assert!(
        world
            .state
            .burn_token(sender, call.token_in, call.amount_in),
        "balance checked"
    );
    world.state.mint_token(sender, call.token_out, out);
    logs.push(Log::new(
        world.registry.address_of(call.token_in),
        LogEvent::Transfer {
            token: call.token_in,
            from: sender,
            to: pool_addr,
            amount: call.amount_in,
        },
    ));
    logs.push(Log::new(
        world.registry.address_of(call.token_out),
        LogEvent::Transfer {
            token: call.token_out,
            from: pool_addr,
            to: sender,
            amount: out,
        },
    ));
    logs.push(Log::new(
        pool_addr,
        LogEvent::Swap {
            pool: call.pool,
            sender,
            token_in: call.token_in,
            amount_in: call.amount_in,
            token_out: call.token_out,
            amount_out: out,
        },
    ));
    Ok(())
}

/// Execute route legs atomically: any failing leg rolls back the others.
fn run_route(
    world: &mut World,
    sender: Address,
    legs: &[SwapCall],
    logs: &mut Vec<Log>,
) -> Result<(), ActionError> {
    if legs.is_empty() {
        return Err(ActionError::Swap("empty route".into()));
    }
    // Scope of a route: the touched pools and the sender's token balances.
    let dex_snapshot = world.dex.clone();
    let token_snapshot = world.state.token_snapshot(sender);
    let log_mark = logs.len();
    for leg in legs {
        if let Err(e) = run_swap(world, sender, leg, logs) {
            world.dex = dex_snapshot;
            world.state.restore_tokens(sender, token_snapshot);
            logs.truncate(log_mark);
            return Err(e);
        }
    }
    Ok(())
}

/// Flash loan: mint the borrowed tokens, run the inner actions, then demand
/// repayment plus fee — rolling back everything if the sender cannot repay.
#[allow(clippy::too_many_arguments)]
fn run_flash_loan(
    world: &mut World,
    env: &BlockEnv,
    sender: Address,
    platform: mev_types::LendingPlatformId,
    token: mev_types::TokenId,
    amount: u128,
    inner: &[Action],
    logs: &mut Vec<Log>,
) -> Result<(), ActionError> {
    let fee = world
        .lending
        .platform(platform)
        .flash_loan_fee(token, amount)
        .map_err(|e| ActionError::Lending(e.to_string()))?;

    // Snapshot the flash-loan scope: DEX pools, lending state, and the
    // sender's token balances. Inner actions are restricted to the
    // DeFi action set, which touches exactly this scope.
    for a in inner {
        if matches!(
            a,
            Action::Transfer { .. } | Action::Payout { .. } | Action::FlashLoan { .. }
        ) {
            return Err(ActionError::UnsupportedInner);
        }
    }
    let dex_snapshot = world.dex.clone();
    let lending_snapshot = world.lending.clone();
    let token_snapshot = world.state.token_snapshot(sender);
    let log_mark = logs.len();

    let rollback = |world: &mut World, logs: &mut Vec<Log>| {
        world.dex = dex_snapshot.clone();
        world.lending = lending_snapshot.clone();
        world.state.restore_tokens(sender, token_snapshot.clone());
        logs.truncate(log_mark);
    };

    // Disburse the loan.
    world
        .lending
        .platform_mut(platform)
        .seed_liquidity(token, 0); // ensure entry
    world.state.mint_token(sender, token, amount);

    for a in inner {
        if let Err(e) = run_action(world, env, sender, a, logs) {
            rollback(world, logs);
            return Err(e);
        }
    }

    // Demand repayment + fee. Saturating: an overflowing demand simply
    // cannot be repaid and the loan reverts below.
    let owed = amount.saturating_add(fee);
    if !world.state.burn_token(sender, token, owed) {
        rollback(world, logs);
        return Err(ActionError::FlashLoanNotRepaid);
    }
    // Fee accrues to the platform's pooled liquidity.
    world
        .lending
        .platform_mut(platform)
        .seed_liquidity(token, fee);
    logs.push(Log::new(
        platform_address(platform),
        LogEvent::FlashLoan {
            platform,
            initiator: sender,
            token,
            amount,
            fee,
        },
    ));
    Ok(())
}

/// Seed helper: fund an account with ether and tokens (tests, scenarios).
pub fn seed_account(
    state: &mut StateDb,
    addr: Address,
    ether: Wei,
    tokens: &[(mev_types::TokenId, u128)],
) {
    state.credit(addr, ether);
    for &(t, amt) in tokens {
        state.mint_token(addr, t, amt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_dex::pool::build;
    use mev_types::{eth, gwei, PoolId, TokenId, TxFee};

    const E18: u128 = 10u128.pow(18);

    fn world() -> World {
        let mut w = World::new(3);
        w.dex.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            10_000 * E18,
            20_000 * E18,
        ));
        w.dex.add_pool(build::sushiswap(
            0,
            TokenId::WETH,
            TokenId(1),
            5_000 * E18,
            10_500 * E18,
        ));
        w.oracle.update(TokenId(1), 0, E18 / 2);
        w.lending
            .platform_mut(mev_types::LendingPlatformId::AaveV2)
            .seed_liquidity(TokenId::WETH, 100_000 * E18);
        w
    }

    fn env() -> BlockEnv {
        BlockEnv {
            number: 1,
            timestamp: 1_600_000_000,
            miner: Address::from_index(999),
            base_fee: Wei::ZERO,
        }
    }

    fn legacy_tx(from: Address, nonce: u64, action: Action) -> Transaction {
        Transaction::new(
            from,
            nonce,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(1_000_000),
            action,
            Wei::ZERO,
            None,
        )
    }

    fn swap_call(amount_in: u128) -> SwapCall {
        SwapCall {
            pool: PoolId {
                exchange: mev_types::ExchangeId::UniswapV2,
                index: 0,
            },
            token_in: TokenId::WETH,
            token_out: TokenId(1),
            amount_in,
            min_amount_out: 0,
        }
    }

    #[test]
    fn transfer_moves_value_and_charges_fees() {
        let mut w = world();
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        seed_account(&mut w.state, a, eth(10), &[]);
        let tx = legacy_tx(
            a,
            0,
            Action::Transfer {
                to: b,
                value: eth(1),
            },
        );
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert!(r.outcome.is_success());
        assert_eq!(r.gas_used, Gas(21_000));
        assert_eq!(w.state.balance(b), eth(1));
        let fee = Gas(21_000).cost(gwei(50));
        assert_eq!(w.state.balance(a), eth(9) - fee);
        assert_eq!(
            w.state.balance(env().miner),
            fee,
            "legacy fee fully to miner"
        );
        assert_eq!(w.state.nonce(a), 1);
    }

    #[test]
    fn bad_nonce_rejected_without_state_change() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[]);
        let tx = legacy_tx(
            a,
            5,
            Action::Transfer {
                to: Address::ZERO,
                value: eth(1),
            },
        );
        assert_eq!(
            execute(&mut w, &env(), &tx),
            Err(InvalidTx::BadNonce {
                expected: 0,
                got: 5
            })
        );
        assert_eq!(w.state.balance(a), eth(10));
    }

    #[test]
    fn insufficient_funds_rejected() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, gwei(1), &[]);
        let tx = legacy_tx(
            a,
            0,
            Action::Transfer {
                to: Address::ZERO,
                value: eth(1),
            },
        );
        assert_eq!(
            execute(&mut w, &env(), &tx),
            Err(InvalidTx::InsufficientFunds)
        );
    }

    #[test]
    fn eip1559_burns_base_fee() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[]);
        let e = BlockEnv {
            base_fee: gwei(30),
            ..env()
        };
        let tx = Transaction::new(
            a,
            0,
            TxFee::Eip1559 {
                max_fee: gwei(100),
                max_priority: gwei(2),
            },
            Gas(1_000_000),
            Action::Transfer {
                to: Address::ZERO,
                value: eth(1),
            },
            Wei::ZERO,
            None,
        );
        let r = execute(&mut w, &e, &tx).unwrap();
        assert_eq!(r.effective_gas_price, gwei(32));
        assert_eq!(r.miner_fee, Gas(21_000).cost(gwei(2)));
        assert_eq!(w.state.burned, Gas(21_000).cost(gwei(30)));
        assert_eq!(w.state.balance(e.miner), Gas(21_000).cost(gwei(2)));
    }

    #[test]
    fn fee_below_base_fee_rejected() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[]);
        let e = BlockEnv {
            base_fee: gwei(100),
            ..env()
        };
        let tx = legacy_tx(
            a,
            0,
            Action::Transfer {
                to: Address::ZERO,
                value: eth(1),
            },
        );
        assert_eq!(execute(&mut w, &e, &tx), Err(InvalidTx::FeeTooLow));
    }

    #[test]
    fn swap_emits_transfer_and_swap_events() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[(TokenId::WETH, 100 * E18)]);
        let tx = legacy_tx(a, 0, Action::Swap(swap_call(10 * E18)));
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert!(r.outcome.is_success());
        assert_eq!(r.logs.len(), 3);
        assert!(matches!(
            r.logs[0].event,
            LogEvent::Transfer {
                token: TokenId::WETH,
                ..
            }
        ));
        assert!(matches!(r.logs[2].event, LogEvent::Swap { .. }));
        assert!(w.state.token_balance(a, TokenId(1)) > 0);
        assert_eq!(w.state.token_balance(a, TokenId::WETH), 90 * E18);
    }

    #[test]
    fn swap_slippage_reverts_but_charges_gas() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[(TokenId::WETH, 100 * E18)]);
        let mut call = swap_call(10 * E18);
        call.min_amount_out = u128::MAX;
        let tx = legacy_tx(a, 0, Action::Swap(call));
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert_eq!(r.outcome, ExecOutcome::Reverted);
        assert!(r.logs.is_empty());
        assert_eq!(
            w.state.token_balance(a, TokenId::WETH),
            100 * E18,
            "no token movement"
        );
        assert!(w.state.balance(a) < eth(10), "gas still charged");
        assert_eq!(w.state.nonce(a), 1, "nonce consumed by revert");
    }

    #[test]
    fn out_of_gas_consumes_limit() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[(TokenId::WETH, 100 * E18)]);
        let tx = Transaction::new(
            a,
            0,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(50_000), // below the 110k a swap needs
            Action::Swap(swap_call(10 * E18)),
            Wei::ZERO,
            None,
        );
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert_eq!(r.outcome, ExecOutcome::Reverted);
        assert_eq!(r.gas_used, Gas(50_000));
    }

    #[test]
    fn route_rolls_back_on_failing_leg() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[(TokenId::WETH, 100 * E18)]);
        let good = swap_call(10 * E18);
        let mut bad = swap_call(10 * E18);
        bad.pool = PoolId {
            exchange: mev_types::ExchangeId::SushiSwap,
            index: 0,
        };
        bad.min_amount_out = u128::MAX;
        let pool_id = good.pool;
        let reserve_before = w
            .dex
            .pool(pool_id)
            .unwrap()
            .reserve_of(TokenId::WETH)
            .unwrap();
        let tx = legacy_tx(a, 0, Action::Route(vec![good, bad]));
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert_eq!(r.outcome, ExecOutcome::Reverted);
        assert_eq!(
            w.dex
                .pool(pool_id)
                .unwrap()
                .reserve_of(TokenId::WETH)
                .unwrap(),
            reserve_before,
            "first leg rolled back"
        );
        assert_eq!(w.state.token_balance(a, TokenId::WETH), 100 * E18);
    }

    #[test]
    fn coinbase_tip_paid_only_on_success() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[(TokenId::WETH, 100 * E18)]);
        let tip = eth(1) / 10;
        let ok_tx = Transaction::new(
            a,
            0,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(1_000_000),
            Action::Swap(swap_call(E18)),
            tip,
            None,
        );
        let r = execute(&mut w, &env(), &ok_tx).unwrap();
        assert_eq!(r.coinbase_transfer, tip);

        let mut bad = swap_call(E18);
        bad.min_amount_out = u128::MAX;
        let fail_tx = Transaction::new(
            a,
            1,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(1_000_000),
            Action::Swap(bad),
            tip,
            None,
        );
        let miner_before = w.state.balance(env().miner);
        let r2 = execute(&mut w, &env(), &fail_tx).unwrap();
        assert_eq!(r2.coinbase_transfer, Wei::ZERO);
        // Miner still gets gas fees, but no tip.
        assert_eq!(w.state.balance(env().miner) - miner_before, r2.miner_fee);
    }

    #[test]
    fn flash_loan_profitable_arb_succeeds() {
        let mut w = world();
        let a = Address::from_index(1);
        // No WETH of their own — pure flash-loan capital (§2.3).
        seed_account(&mut w.state, a, eth(10), &[]);
        // The pools disagree: 2.1 TKN1/WETH on Sushi vs 2.0 on Uniswap,
        // so TKN1 is cheap on Sushi. Buy there, sell on Uniswap.
        let uni = PoolId {
            exchange: mev_types::ExchangeId::UniswapV2,
            index: 0,
        };
        let sushi = PoolId {
            exchange: mev_types::ExchangeId::SushiSwap,
            index: 0,
        };
        let borrowed = 100 * E18;
        let tx = legacy_tx(
            a,
            0,
            Action::FlashLoan {
                platform: mev_types::LendingPlatformId::AaveV2,
                token: TokenId::WETH,
                amount: borrowed,
                inner: vec![
                    Action::Swap(SwapCall {
                        pool: sushi,
                        token_in: TokenId::WETH,
                        token_out: TokenId(1),
                        amount_in: borrowed,
                        min_amount_out: 0,
                    }),
                    Action::Swap(SwapCall {
                        pool: uni,
                        token_in: TokenId(1),
                        token_out: TokenId::WETH,
                        amount_in: 205 * E18, // ≈ what the first swap yields
                        min_amount_out: 0,
                    }),
                ],
            },
        );
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert!(
            r.outcome.is_success(),
            "arb across mispriced pools repays the loan"
        );
        assert!(
            r.logs
                .iter()
                .any(|l| matches!(l.event, LogEvent::FlashLoan { .. })),
            "flash loan event emitted"
        );
        assert!(w.state.token_balance(a, TokenId::WETH) > 0, "profit kept");
    }

    #[test]
    fn flash_loan_unrepayable_reverts_everything() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[]);
        let uni = PoolId {
            exchange: mev_types::ExchangeId::UniswapV2,
            index: 0,
        };
        let reserve_before = w.dex.pool(uni).unwrap().reserve_of(TokenId::WETH).unwrap();
        // Borrow, swap away the funds, never swap back ⇒ cannot repay.
        let tx = legacy_tx(
            a,
            0,
            Action::FlashLoan {
                platform: mev_types::LendingPlatformId::AaveV2,
                token: TokenId::WETH,
                amount: 100 * E18,
                inner: vec![Action::Swap(SwapCall {
                    pool: uni,
                    token_in: TokenId::WETH,
                    token_out: TokenId(1),
                    amount_in: 100 * E18,
                    min_amount_out: 0,
                })],
            },
        );
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert_eq!(r.outcome, ExecOutcome::Reverted);
        assert_eq!(
            w.dex.pool(uni).unwrap().reserve_of(TokenId::WETH).unwrap(),
            reserve_before,
            "pool rolled back"
        );
        assert_eq!(
            w.state.token_balance(a, TokenId(1)),
            0,
            "tokens rolled back"
        );
    }

    #[test]
    fn flash_loan_rejects_native_transfers_inside() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(10), &[]);
        let tx = legacy_tx(
            a,
            0,
            Action::FlashLoan {
                platform: mev_types::LendingPlatformId::AaveV2,
                token: TokenId::WETH,
                amount: E18,
                inner: vec![Action::Transfer {
                    to: Address::ZERO,
                    value: eth(1),
                }],
            },
        );
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert_eq!(r.outcome, ExecOutcome::Reverted);
    }

    #[test]
    fn payout_batch_transfers_and_logs() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(100), &[]);
        let recipients: Vec<_> = (10..15).map(|i| (Address::from_index(i), eth(1))).collect();
        let tx = legacy_tx(
            a,
            0,
            Action::Payout {
                recipients: recipients.clone(),
            },
        );
        let r = execute(&mut w, &env(), &tx).unwrap();
        assert!(r.outcome.is_success());
        assert_eq!(r.gas_used, Gas(21_000 * 5));
        for (to, _) in &recipients {
            assert_eq!(w.state.balance(*to), eth(1));
        }
        assert!(matches!(
            r.logs[0].event,
            LogEvent::Payout { recipients: 5, .. }
        ));
    }

    #[test]
    fn liquidation_flow_end_to_end() {
        let mut w = world();
        let borrower = Address::from_index(1);
        let liquidator = Address::from_index(2);
        seed_account(&mut w.state, borrower, eth(10), &[(TokenId(1), 100 * E18)]);
        seed_account(
            &mut w.state,
            liquidator,
            eth(10),
            &[(TokenId::WETH, 100 * E18)],
        );
        let platform = mev_types::LendingPlatformId::AaveV2;
        // Borrower deposits 100 TKN1 (worth 50 WETH at 0.5) and borrows 30 WETH.
        for (n, action) in [
            Action::Deposit {
                platform,
                token: TokenId(1),
                amount: 100 * E18,
            },
            Action::Borrow {
                platform,
                token: TokenId::WETH,
                amount: 30 * E18,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let r = execute(&mut w, &env(), &legacy_tx(borrower, n as u64, action)).unwrap();
            assert!(r.outcome.is_success(), "setup step {n}");
        }
        // Healthy: liquidation reverts.
        let premature = legacy_tx(
            liquidator,
            0,
            Action::Liquidate {
                platform,
                borrower,
                debt_token: TokenId::WETH,
                repay_amount: 15 * E18,
            },
        );
        let r = execute(&mut w, &env(), &premature).unwrap();
        assert_eq!(r.outcome, ExecOutcome::Reverted);
        // Price crash: 0.5 → 0.3 WETH per TKN1 ⇒ collateral 30·0.825 < 30 debt.
        let crash = legacy_tx(
            Address::from_index(77),
            0,
            Action::OracleUpdate {
                token: TokenId(1),
                price_wei: 3 * E18 / 10,
            },
        );
        seed_account(&mut w.state, Address::from_index(77), eth(1), &[]);
        assert!(execute(&mut w, &env(), &crash)
            .unwrap()
            .outcome
            .is_success());
        // Now liquidation succeeds and emits the event.
        let liq = legacy_tx(
            liquidator,
            1,
            Action::Liquidate {
                platform,
                borrower,
                debt_token: TokenId::WETH,
                repay_amount: 15 * E18,
            },
        );
        let r = execute(&mut w, &env(), &liq).unwrap();
        assert!(r.outcome.is_success());
        assert!(r
            .logs
            .iter()
            .any(|l| matches!(l.event, LogEvent::Liquidation { .. })));
        assert!(
            w.state.token_balance(liquidator, TokenId(1)) > 0,
            "seized collateral"
        );
    }

    #[test]
    fn wei_conservation_across_mixed_block() {
        let mut w = world();
        let a = Address::from_index(1);
        seed_account(&mut w.state, a, eth(100), &[(TokenId::WETH, 100 * E18)]);
        seed_account(&mut w.state, env().miner, Wei::ZERO, &[]);
        let total_before = w.state.total_wei();
        let e = BlockEnv {
            base_fee: gwei(20),
            ..env()
        };
        let txs = [
            Transaction::new(
                a,
                0,
                TxFee::Eip1559 {
                    max_fee: gwei(100),
                    max_priority: gwei(3),
                },
                Gas(1_000_000),
                Action::Swap(swap_call(E18)),
                eth(1) / 100,
                None,
            ),
            Transaction::new(
                a,
                1,
                TxFee::Eip1559 {
                    max_fee: gwei(100),
                    max_priority: gwei(3),
                },
                Gas(1_000_000),
                Action::Transfer {
                    to: Address::from_index(5),
                    value: eth(2),
                },
                Wei::ZERO,
                None,
            ),
        ];
        for tx in &txs {
            execute(&mut w, &e, tx).unwrap();
        }
        assert_eq!(
            w.state.total_wei(),
            total_before,
            "wei conserved (burn included)"
        );
    }
}
