//! Block building: execute an ordered list of candidate transactions under
//! a gas limit and produce the block plus its receipts.
//!
//! Ordering is the caller's policy — this is where MEV lives. The default
//! public-mempool policy (descending effective bid, §2.1) is provided as
//! [`order_by_fee`]; Flashbots miners prepend bundles via `mev-flashbots`.

use crate::exec::{execute, BlockEnv};
use crate::feemarket::{next_base_fee, ForkSchedule};
use crate::world::World;
use mev_types::{Address, Block, BlockHeader, Gas, Receipt, Transaction, Wei, H256};

/// Static per-block issuance credited to the miner (post-EIP-1559 mainnet).
pub const BLOCK_REWARD: Wei = mev_types::eth(2);

/// Default protocol gas limit.
pub const DEFAULT_GAS_LIMIT: Gas = Gas(30_000_000);

/// Inputs for building one block.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    pub number: u64,
    pub parent_hash: H256,
    pub timestamp: u64,
    pub miner: Address,
    pub base_fee: Wei,
    pub gas_limit: Gas,
}

/// A built block with its receipts and summary accounting.
#[derive(Debug, Clone)]
pub struct BuiltBlock {
    pub block: Block,
    pub receipts: Vec<Receipt>,
    /// Candidate transactions skipped as invalid (bad nonce / unfunded /
    /// under-priced) — they never enter the block.
    pub skipped: usize,
    /// Total miner revenue from this block: issuance + fees + tips.
    pub miner_revenue: Wei,
}

/// Execute `candidates` in the given order, skipping invalid transactions
/// and stopping inclusion at the gas limit (per-tx: a transaction whose
/// gas limit exceeds remaining space is skipped, later ones may still fit).
pub fn build_block(world: &mut World, spec: &BlockSpec, candidates: &[Transaction]) -> BuiltBlock {
    let env = BlockEnv {
        number: spec.number,
        timestamp: spec.timestamp,
        miner: spec.miner,
        base_fee: spec.base_fee,
    };
    let mut included = Vec::new();
    let mut receipts: Vec<Receipt> = Vec::new();
    let mut gas_used = Gas::ZERO;
    let mut skipped = 0usize;
    let mut fees = Wei::ZERO;

    for tx in candidates {
        if gas_used + tx.gas_limit > spec.gas_limit {
            skipped += 1;
            continue;
        }
        match execute(world, &env, tx) {
            Ok(mut receipt) => {
                receipt.index = receipts.len() as u32;
                gas_used += receipt.gas_used;
                // lint:allow(wei-math: Wei::add_assign is checked in mev-types — aborts on overflow, never wraps)
                fees += receipt.miner_revenue();
                receipts.push(receipt);
                included.push(tx.clone());
            }
            Err(_) => skipped += 1,
        }
    }

    world.state.credit(spec.miner, BLOCK_REWARD);

    // Per-block accounting (mev-obs): one handle lookup + add per metric
    // per block, never per transaction.
    mev_obs::counter("chain.blocks_built").inc();
    mev_obs::counter("chain.gas_used").add(gas_used.0);
    mev_obs::counter("chain.receipts").add(receipts.len() as u64);
    mev_obs::counter("chain.txs_skipped").add(skipped as u64);

    let header = BlockHeader {
        number: spec.number,
        parent_hash: spec.parent_hash,
        miner: spec.miner,
        timestamp: spec.timestamp,
        gas_used,
        gas_limit: spec.gas_limit,
        base_fee: spec.base_fee,
    };
    BuiltBlock {
        block: Block {
            header,
            transactions: included,
        },
        receipts,
        skipped,
        // lint:allow(wei-math: Wei::add is checked in mev-types — aborts on overflow, never wraps)
        miner_revenue: BLOCK_REWARD + fees,
    }
}

/// The rational public-mempool ordering: descending bid per gas, ties
/// broken by hash for determinism. Nonce ordering per sender is preserved
/// by a stable sort on (sender, nonce) runs — callers submit per-sender
/// sequences already nonce-ordered.
pub fn order_by_fee(mut txs: Vec<Transaction>) -> Vec<Transaction> {
    txs.sort_by(|a, b| {
        b.bid_per_gas()
            .cmp(&a.bid_per_gas())
            .then_with(|| a.hash().cmp(&b.hash()))
    });
    // Repair any nonce inversions introduced among same-sender txs.
    repair_nonce_order(&mut txs);
    txs
}

/// Stable-reorder so each sender's transactions appear in ascending nonce
/// order (a miner cannot include nonce 2 before nonce 1).
fn repair_nonce_order(txs: &mut [Transaction]) {
    use std::collections::HashMap;
    let mut by_sender: HashMap<Address, Vec<Transaction>> = HashMap::new();
    for tx in txs.iter() {
        by_sender.entry(tx.from).or_default().push(tx.clone());
    }
    // lint:allow(determinism: iteration order cannot reach the output — each list is sorted independently, writes go through slot lookups)
    for list in by_sender.values_mut() {
        list.sort_by_key(|t| t.nonce);
        list.reverse(); // pop from the back = lowest nonce first
    }
    for slot in txs.iter_mut() {
        // Both lookups are infallible by construction (the map was
        // populated from these very slots); skip defensively either way.
        let Some(list) = by_sender.get_mut(&slot.from) else {
            continue;
        };
        let Some(tx) = list.pop() else { continue };
        *slot = tx;
    }
}

/// Random intra-block ordering — the countermeasure of the paper's §8.3.
/// Deterministic given `seed` (derived from the parent hash in practice).
/// Per-sender nonce order is repaired afterwards, as no valid block can
/// invert nonces.
pub fn order_random(mut txs: Vec<Transaction>, seed: u64) -> Vec<Transaction> {
    // Fisher–Yates with SplitMix64-derived indices: deterministic and
    // dependency-free.
    let mut state = seed ^ 0x5DEECE66D;
    let mut next = |bound: usize| {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as usize % bound.max(1)
    };
    for i in (1..txs.len()).rev() {
        txs.swap(i, next(i + 1));
    }
    repair_nonce_order(&mut txs);
    txs
}

/// First-come-first-served ordering (the fair-ordering family of the
/// paper's §7): sort by observed arrival time, ties broken by hash.
pub fn order_fcfs(mut txs_with_arrival: Vec<(Transaction, u64)>) -> Vec<Transaction> {
    txs_with_arrival.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.hash().cmp(&b.0.hash())));
    let mut txs: Vec<Transaction> = txs_with_arrival.into_iter().map(|(t, _)| t).collect();
    repair_nonce_order(&mut txs);
    txs
}

/// Compute the next block's base fee from a built block.
pub fn base_fee_after(schedule: &ForkSchedule, built: &BuiltBlock) -> Wei {
    let h = &built.block.header;
    next_base_fee(schedule, h.number, h.base_fee, h.gas_used, h.gas_limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::seed_account;
    use mev_types::{eth, gwei, Action, TxFee};

    fn spec(number: u64, base_fee: Wei) -> BlockSpec {
        BlockSpec {
            number,
            parent_hash: H256::zero(),
            timestamp: 1_600_000_000,
            miner: Address::from_index(900),
            base_fee,
            gas_limit: DEFAULT_GAS_LIMIT,
        }
    }

    fn transfer(from: u64, nonce: u64, price: Wei) -> Transaction {
        Transaction::new(
            Address::from_index(from),
            nonce,
            TxFee::Legacy { gas_price: price },
            Gas(21_000),
            Action::Transfer {
                to: Address::ZERO,
                value: Wei(1),
            },
            Wei::ZERO,
            None,
        )
    }

    #[test]
    fn builds_block_and_credits_reward() {
        let mut w = World::new(1);
        seed_account(&mut w.state, Address::from_index(1), eth(10), &[]);
        let b = build_block(&mut w, &spec(1, Wei::ZERO), &[transfer(1, 0, gwei(50))]);
        assert_eq!(b.block.transactions.len(), 1);
        assert_eq!(b.receipts.len(), 1);
        assert_eq!(b.skipped, 0);
        assert_eq!(b.block.header.gas_used, Gas(21_000));
        let fee = Gas(21_000).cost(gwei(50));
        assert_eq!(b.miner_revenue, BLOCK_REWARD + fee);
        assert_eq!(
            w.state.balance(Address::from_index(900)),
            BLOCK_REWARD + fee
        );
    }

    #[test]
    fn skips_invalid_and_continues() {
        let mut w = World::new(1);
        seed_account(&mut w.state, Address::from_index(1), eth(10), &[]);
        // Unfunded sender 2 between two valid txs.
        let txs = vec![
            transfer(1, 0, gwei(50)),
            transfer(2, 0, gwei(60)),
            transfer(1, 1, gwei(40)),
        ];
        let b = build_block(&mut w, &spec(1, Wei::ZERO), &txs);
        assert_eq!(b.block.transactions.len(), 2);
        assert_eq!(b.skipped, 1);
    }

    #[test]
    fn respects_gas_limit() {
        let mut w = World::new(1);
        for i in 1..=5 {
            seed_account(&mut w.state, Address::from_index(i), eth(10), &[]);
        }
        let mut s = spec(1, Wei::ZERO);
        s.gas_limit = Gas(50_000); // fits two transfers
        let txs: Vec<_> = (1..=5).map(|i| transfer(i, 0, gwei(50))).collect();
        let b = build_block(&mut w, &s, &txs);
        assert_eq!(b.block.transactions.len(), 2);
        assert_eq!(b.skipped, 3);
        assert!(b.block.header.gas_used <= s.gas_limit);
    }

    #[test]
    fn receipts_are_indexed_in_order() {
        let mut w = World::new(1);
        seed_account(&mut w.state, Address::from_index(1), eth(10), &[]);
        let txs = vec![transfer(1, 0, gwei(50)), transfer(1, 1, gwei(50))];
        let b = build_block(&mut w, &spec(1, Wei::ZERO), &txs);
        assert_eq!(b.receipts[0].index, 0);
        assert_eq!(b.receipts[1].index, 1);
        assert_eq!(b.receipts[0].tx_hash, b.block.transactions[0].hash());
    }

    #[test]
    fn order_by_fee_sorts_descending() {
        let txs = vec![
            transfer(1, 0, gwei(10)),
            transfer(2, 0, gwei(90)),
            transfer(3, 0, gwei(50)),
        ];
        let ordered = order_by_fee(txs);
        let bids: Vec<_> = ordered.iter().map(|t| t.bid_per_gas()).collect();
        assert_eq!(bids, vec![gwei(90), gwei(50), gwei(10)]);
    }

    #[test]
    fn order_by_fee_preserves_sender_nonce_order() {
        // Sender 1's nonce-1 tx pays more than their nonce-0 tx; ordering
        // must still put nonce 0 first.
        let txs = vec![
            transfer(1, 0, gwei(10)),
            transfer(1, 1, gwei(90)),
            transfer(2, 0, gwei(50)),
        ];
        let ordered = order_by_fee(txs);
        let pos0 = ordered
            .iter()
            .position(|t| t.from == Address::from_index(1) && t.nonce == 0)
            .unwrap();
        let pos1 = ordered
            .iter()
            .position(|t| t.from == Address::from_index(1) && t.nonce == 1)
            .unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn order_random_is_deterministic_and_nonce_safe() {
        let txs: Vec<_> = (0..20)
            .map(|i| transfer(i % 5, i / 5, gwei(10 + i as u128)))
            .collect();
        let a = order_random(txs.clone(), 42);
        let b = order_random(txs.clone(), 42);
        assert_eq!(
            a.iter().map(|t| t.hash()).collect::<Vec<_>>(),
            b.iter().map(|t| t.hash()).collect::<Vec<_>>()
        );
        let c = order_random(txs.clone(), 43);
        assert_ne!(
            a.iter().map(|t| t.hash()).collect::<Vec<_>>(),
            c.iter().map(|t| t.hash()).collect::<Vec<_>>(),
            "different seed, different shuffle"
        );
        // Nonce order per sender survives the shuffle.
        let mut seen: std::collections::HashMap<Address, u64> = std::collections::HashMap::new();
        for t in &a {
            if let Some(&prev) = seen.get(&t.from) {
                assert!(t.nonce > prev);
            }
            seen.insert(t.from, t.nonce);
        }
        // And it's a permutation.
        let mut ah: Vec<_> = a.iter().map(|t| t.hash()).collect();
        let mut th: Vec<_> = txs.iter().map(|t| t.hash()).collect();
        ah.sort();
        th.sort();
        assert_eq!(ah, th);
    }

    #[test]
    fn order_fcfs_sorts_by_arrival() {
        let t1 = transfer(1, 0, gwei(10)); // cheap but early
        let t2 = transfer(2, 0, gwei(90)); // expensive but late
        let ordered = order_fcfs(vec![(t2.clone(), 2_000), (t1.clone(), 1_000)]);
        assert_eq!(ordered[0].hash(), t1.hash(), "arrival beats fee");
        assert_eq!(ordered[1].hash(), t2.hash());
    }

    #[test]
    fn base_fee_chains_between_blocks() {
        let mut w = World::new(1);
        seed_account(&mut w.state, Address::from_index(1), eth(100), &[]);
        let schedule = ForkSchedule {
            berlin_block: 0,
            london_block: 1,
        };
        let b = build_block(&mut w, &spec(1, crate::feemarket::INITIAL_BASE_FEE), &[]);
        // Empty block ⇒ base fee drops 12.5 %.
        let next = base_fee_after(&schedule, &b);
        assert_eq!(next, gwei(30) - gwei(30) / 8);
    }
}
