//! # mev-chain
//!
//! The Ethereum-like ledger substrate: account state, a native execution
//! engine for the typed DeFi action set, the EIP-1559 fee market with the
//! Berlin/London fork schedule, a block builder, and the archive-node
//! query surface the paper's measurement pipeline crawls (§3).

pub mod archive;
pub mod builder;
pub mod exec;
pub mod feemarket;
pub mod query;
pub mod state;
pub mod world;

pub use archive::ChainStore;
pub use builder::{
    base_fee_after, build_block, order_by_fee, BlockSpec, BuiltBlock, BLOCK_REWARD,
    DEFAULT_GAS_LIMIT,
};
pub use exec::{action_gas, execute, seed_account, ActionError, BlockEnv, InvalidTx};
pub use feemarket::{next_base_fee, ForkSchedule, INITIAL_BASE_FEE};
pub use query::{
    get_logs, get_logs_with_stats, ArchiveQuery, Cursor, EventKind, FilterParamError, LogEntry,
    LogFilter, LogPage, Pages, QueryPlan, QueryStats, DEFAULT_LIMIT,
};
pub use state::{Account, StateDb};
pub use world::World;
