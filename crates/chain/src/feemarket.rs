//! The fee market and hard-fork schedule.
//!
//! Figure 6 of the paper marks the Berlin and London hard forks on its
//! gas-price timeline, and the London fork's EIP-1559 reshaped miner
//! revenue (§8.3 argues it pushed miners toward Flashbots). We model both:
//! Berlin is a calendar marker (its repricings don't affect our gas model);
//! London switches the chain from legacy pricing to base-fee-plus-tip.

use mev_types::{gwei, Gas, Wei};

/// EIP-1559 maximum base-fee change per block: 1/8 = 12.5 %.
pub const BASE_FEE_MAX_CHANGE_DENOMINATOR: u128 = 8;
/// EIP-1559 target gas: half the block limit.
pub const ELASTICITY_MULTIPLIER: u64 = 2;
/// Base fee at the London activation block.
pub const INITIAL_BASE_FEE: Wei = gwei(30);

/// Hard-fork activation heights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ForkSchedule {
    /// Berlin: April 15th 2021 (mainnet block 12,244,000).
    pub berlin_block: u64,
    /// London: August 5th 2021 (mainnet block 12,965,000) — EIP-1559.
    pub london_block: u64,
}

impl ForkSchedule {
    /// Mainnet activation heights (meaningful when the simulation runs
    /// with uncompressed block numbering).
    pub fn mainnet() -> ForkSchedule {
        ForkSchedule {
            berlin_block: 12_244_000,
            london_block: 12_965_000,
        }
    }

    /// Is EIP-1559 active at `block`?
    pub fn is_london(&self, block: u64) -> bool {
        block >= self.london_block
    }

    pub fn is_berlin(&self, block: u64) -> bool {
        block >= self.berlin_block
    }
}

/// Compute the base fee for the *next* block from the parent's fullness,
/// per EIP-1559.
pub fn next_base_fee(
    schedule: &ForkSchedule,
    parent_number: u64,
    parent_base_fee: Wei,
    parent_gas_used: Gas,
    parent_gas_limit: Gas,
) -> Wei {
    let next_number = parent_number + 1;
    if !schedule.is_london(next_number) {
        return Wei::ZERO;
    }
    if !schedule.is_london(parent_number) {
        // First London block.
        return INITIAL_BASE_FEE;
    }
    let target = Gas(parent_gas_limit.0 / ELASTICITY_MULTIPLIER);
    if parent_gas_used == target {
        return parent_base_fee;
    }
    if parent_gas_used > target {
        let delta_gas = (parent_gas_used.0 - target.0) as u128;
        let delta = parent_base_fee.mul_ratio(delta_gas, target.0 as u128).0
            / BASE_FEE_MAX_CHANGE_DENOMINATOR;
        // lint:allow(wei-math: Wei::add is checked in mev-types; delta ≤ base_fee / 8 by the EIP-1559 bound)
        parent_base_fee + Wei(delta.max(1))
    } else {
        let delta_gas = (target.0 - parent_gas_used.0) as u128;
        let delta = parent_base_fee.mul_ratio(delta_gas, target.0 as u128).0
            / BASE_FEE_MAX_CHANGE_DENOMINATOR;
        parent_base_fee.saturating_sub(Wei(delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sched() -> ForkSchedule {
        ForkSchedule {
            berlin_block: 100,
            london_block: 200,
        }
    }

    #[test]
    fn fork_activation() {
        let s = sched();
        assert!(!s.is_berlin(99));
        assert!(s.is_berlin(100));
        assert!(!s.is_london(199));
        assert!(s.is_london(200));
    }

    #[test]
    fn pre_london_base_fee_is_zero() {
        let s = sched();
        assert_eq!(
            next_base_fee(&s, 150, Wei::ZERO, Gas(30_000_000), Gas(30_000_000)),
            Wei::ZERO
        );
    }

    #[test]
    fn first_london_block_gets_initial_fee() {
        let s = sched();
        assert_eq!(
            next_base_fee(&s, 199, Wei::ZERO, Gas(15_000_000), Gas(30_000_000)),
            INITIAL_BASE_FEE
        );
    }

    #[test]
    fn base_fee_rises_when_full() {
        let s = sched();
        let next = next_base_fee(&s, 300, gwei(100), Gas(30_000_000), Gas(30_000_000));
        // Full block (2× target) ⇒ +12.5 %.
        assert_eq!(next, gwei(100) + gwei(100) / 8);
    }

    #[test]
    fn base_fee_falls_when_empty() {
        let s = sched();
        let next = next_base_fee(&s, 300, gwei(100), Gas::ZERO, Gas(30_000_000));
        assert_eq!(next, gwei(100) - gwei(100) / 8);
    }

    #[test]
    fn base_fee_stable_at_target() {
        let s = sched();
        let next = next_base_fee(&s, 300, gwei(100), Gas(15_000_000), Gas(30_000_000));
        assert_eq!(next, gwei(100));
    }

    proptest! {
        /// The EIP-1559 invariant: per-block change never exceeds 12.5 %.
        #[test]
        fn prop_base_fee_change_bounded(
            base in 1_000_000_000u128..=1_000_000_000_000,
            used in 0u64..=30_000_000,
        ) {
            let s = sched();
            let parent = Wei(base);
            let next = next_base_fee(&s, 300, parent, Gas(used), Gas(30_000_000));
            let max_delta = base / 8 + 1;
            let diff = next.0.abs_diff(parent.0);
            prop_assert!(diff <= max_delta, "diff {diff} > bound {max_delta}");
        }

        /// Monotone: more gas used ⇒ next base fee not lower.
        #[test]
        fn prop_base_fee_monotone_in_usage(
            base in 1_000_000_000u128..=1_000_000_000_000,
            u1 in 0u64..=30_000_000,
            u2 in 0u64..=30_000_000,
        ) {
            let s = sched();
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            let f_lo = next_base_fee(&s, 300, Wei(base), Gas(lo), Gas(30_000_000));
            let f_hi = next_base_fee(&s, 300, Wei(base), Gas(hi), Gas(30_000_000));
            prop_assert!(f_lo <= f_hi);
        }
    }
}
