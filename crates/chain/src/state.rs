//! Account state: native ether balances, nonces, and ERC-20 token balances.
//!
//! Snapshot/rollback is clone-based: the executor snapshots the whole world
//! before a transaction (and before a flash loan's inner actions) and
//! restores it on revert, which gives flash loans their all-or-nothing
//! semantics (§2.3) without a write journal.

use mev_types::{Address, TokenId, Wei};
use std::collections::{BTreeMap, HashMap};

/// One account's native state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Account {
    pub balance: Wei,
    pub nonce: u64,
}

/// The full account-state database.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct StateDb {
    accounts: HashMap<Address, Account>,
    /// ERC-20 balances per holder. Two-level so a single holder's token
    /// state can be snapshotted cheaply (flash-loan rollback).
    tokens: HashMap<Address, BTreeMap<TokenId, u128>>,
    /// Total wei burned (EIP-1559 base fees).
    pub burned: Wei,
}

impl StateDb {
    pub fn new() -> StateDb {
        StateDb::default()
    }

    /// Read an account (zero if untouched).
    pub fn account(&self, addr: Address) -> Account {
        self.accounts.get(&addr).copied().unwrap_or_default()
    }

    pub fn balance(&self, addr: Address) -> Wei {
        self.account(addr).balance
    }

    pub fn nonce(&self, addr: Address) -> u64 {
        self.account(addr).nonce
    }

    /// Credit ether (issuance or transfer-in).
    pub fn credit(&mut self, addr: Address, amount: Wei) {
        // lint:allow(wei-math: Wei::add_assign is checked in mev-types — aborts on overflow, never wraps)
        self.accounts.entry(addr).or_default().balance += amount;
    }

    /// Debit ether; `false` (and no change) if insufficient.
    #[must_use]
    pub fn debit(&mut self, addr: Address, amount: Wei) -> bool {
        let acct = self.accounts.entry(addr).or_default();
        match acct.balance.checked_sub(amount) {
            Some(rest) => {
                acct.balance = rest;
                true
            }
            None => false,
        }
    }

    /// Transfer ether; `false` (and no change) if insufficient.
    #[must_use]
    pub fn transfer(&mut self, from: Address, to: Address, amount: Wei) -> bool {
        if !self.debit(from, amount) {
            return false;
        }
        self.credit(to, amount);
        true
    }

    /// Burn ether (base fee).
    #[must_use]
    pub fn burn(&mut self, from: Address, amount: Wei) -> bool {
        if !self.debit(from, amount) {
            return false;
        }
        // lint:allow(wei-math: Wei::add_assign is checked in mev-types — aborts on overflow, never wraps)
        self.burned += amount;
        true
    }

    /// Bump an account's nonce.
    pub fn bump_nonce(&mut self, addr: Address) {
        self.accounts.entry(addr).or_default().nonce += 1;
    }

    /// ERC-20 balance.
    pub fn token_balance(&self, addr: Address, token: TokenId) -> u128 {
        self.tokens
            .get(&addr)
            .and_then(|m| m.get(&token))
            .copied()
            .unwrap_or(0)
    }

    /// Mint tokens (scenario seeding, pool payouts). Saturating: token
    /// supplies are synthetic, so a clamped balance beats a wrapped one.
    pub fn mint_token(&mut self, addr: Address, token: TokenId, amount: u128) {
        let bal = self
            .tokens
            .entry(addr)
            .or_default()
            .entry(token)
            .or_default();
        *bal = bal.saturating_add(amount);
    }

    /// Burn tokens; `false` if insufficient.
    #[must_use]
    pub fn burn_token(&mut self, addr: Address, token: TokenId, amount: u128) -> bool {
        let bal = self
            .tokens
            .entry(addr)
            .or_default()
            .entry(token)
            .or_default();
        if *bal < amount {
            return false;
        }
        // lint:allow(wei-math: cannot underflow — guarded by the balance check above)
        *bal -= amount;
        true
    }

    /// Snapshot one holder's full token map (cheap flash-loan rollback).
    pub fn token_snapshot(&self, addr: Address) -> BTreeMap<TokenId, u128> {
        self.tokens.get(&addr).cloned().unwrap_or_default()
    }

    /// Restore a holder's token map from a snapshot.
    pub fn restore_tokens(&mut self, addr: Address, snapshot: BTreeMap<TokenId, u128>) {
        self.tokens.insert(addr, snapshot);
    }

    /// Transfer tokens; `false` (and no change) if insufficient.
    #[must_use]
    pub fn transfer_token(
        &mut self,
        from: Address,
        to: Address,
        token: TokenId,
        amount: u128,
    ) -> bool {
        if !self.burn_token(from, token, amount) {
            return false;
        }
        self.mint_token(to, token, amount);
        true
    }

    /// Sum of all native balances plus burned wei — conserved by execution
    /// modulo explicit issuance. Used by conservation property tests.
    pub fn total_wei(&self) -> Wei {
        // lint:allow(determinism: iteration order cannot reach the output — commutative sum) lint:allow(wei-math: Wei::sum/add are checked in mev-types — abort on overflow, never wrap)
        self.accounts.values().map(|a| a.balance).sum::<Wei>() + self.burned
    }

    /// Number of touched accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::eth;

    #[test]
    fn credit_debit_transfer() {
        let mut s = StateDb::new();
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        s.credit(a, eth(10));
        assert!(s.transfer(a, b, eth(4)));
        assert_eq!(s.balance(a), eth(6));
        assert_eq!(s.balance(b), eth(4));
        assert!(!s.transfer(a, b, eth(7)), "insufficient");
        assert_eq!(s.balance(a), eth(6), "failed transfer must not mutate");
    }

    #[test]
    fn burn_tracks_total() {
        let mut s = StateDb::new();
        let a = Address::from_index(1);
        s.credit(a, eth(5));
        assert!(s.burn(a, eth(2)));
        assert_eq!(s.burned, eth(2));
        assert_eq!(s.total_wei(), eth(5), "burn conserves total accounting");
    }

    #[test]
    fn nonce_bumps() {
        let mut s = StateDb::new();
        let a = Address::from_index(1);
        assert_eq!(s.nonce(a), 0);
        s.bump_nonce(a);
        s.bump_nonce(a);
        assert_eq!(s.nonce(a), 2);
    }

    #[test]
    fn token_transfers() {
        let mut s = StateDb::new();
        let (a, b) = (Address::from_index(1), Address::from_index(2));
        s.mint_token(a, TokenId(1), 100);
        assert!(s.transfer_token(a, b, TokenId(1), 60));
        assert_eq!(s.token_balance(a, TokenId(1)), 40);
        assert_eq!(s.token_balance(b, TokenId(1)), 60);
        assert!(!s.transfer_token(a, b, TokenId(1), 41));
        assert_eq!(s.token_balance(a, TokenId(1)), 40);
    }

    #[test]
    fn snapshot_by_clone_restores_everything() {
        let mut s = StateDb::new();
        let a = Address::from_index(1);
        s.credit(a, eth(1));
        s.mint_token(a, TokenId(2), 7);
        let snap = s.clone();
        s.credit(a, eth(9));
        assert!(s.burn_token(a, TokenId(2), 7));
        s = snap;
        assert_eq!(s.balance(a), eth(1));
        assert_eq!(s.token_balance(a, TokenId(2)), 7);
    }
}
