//! The archive node: complete block/receipt history with the query surface
//! the paper's measurement scripts use (§3 — "an archive node provides a
//! complete history of all state changes ... allowed us to query data on
//! any published block").

use mev_types::{Address, Block, Log, Month, Receipt, Timeline, TxHash};
use std::collections::HashMap;

/// Append-only store of built blocks and their receipts.
#[derive(Debug, Clone)]
pub struct ChainStore {
    timeline: Timeline,
    first_number: u64,
    blocks: Vec<Block>,
    receipts: Vec<Vec<Receipt>>,
    /// tx hash → (block number, tx index) — the on-chain set used by the
    /// private-transaction intersection (§6.1).
    tx_index: HashMap<TxHash, (u64, u32)>,
}

impl ChainStore {
    pub fn new(timeline: Timeline) -> ChainStore {
        let first_number = timeline.genesis_number;
        ChainStore {
            timeline,
            first_number,
            blocks: Vec::new(),
            receipts: Vec::new(),
            tx_index: HashMap::new(),
        }
    }

    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Append a block; must be the next height.
    pub fn push(&mut self, block: Block, receipts: Vec<Receipt>) {
        let expected = self.first_number + self.blocks.len() as u64;
        assert_eq!(block.header.number, expected, "non-contiguous block push");
        assert_eq!(
            block.transactions.len(),
            receipts.len(),
            "tx/receipt count mismatch"
        );
        for (i, tx) in block.transactions.iter().enumerate() {
            self.tx_index
                .insert(tx.hash(), (block.header.number, i as u32));
        }
        self.blocks.push(block);
        self.receipts.push(receipts);
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Height of the latest block, if any.
    pub fn head_number(&self) -> Option<u64> {
        self.blocks.last().map(|b| b.header.number)
    }

    /// Fetch a block by height.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks
            .get(number.checked_sub(self.first_number)? as usize)
    }

    /// Fetch receipts by height.
    pub fn receipts(&self, number: u64) -> Option<&[Receipt]> {
        self.receipts
            .get(number.checked_sub(self.first_number)? as usize)
            .map(|v| v.as_slice())
    }

    /// Locate a transaction by hash.
    pub fn locate_tx(&self, hash: TxHash) -> Option<(u64, u32)> {
        self.tx_index.get(&hash).copied()
    }

    /// True if the transaction landed on chain.
    pub fn contains_tx(&self, hash: TxHash) -> bool {
        self.tx_index.contains_key(&hash)
    }

    /// Iterate `(block, receipts)` pairs in height order.
    pub fn iter(&self) -> impl Iterator<Item = (&Block, &[Receipt])> {
        self.blocks
            .iter()
            .zip(self.receipts.iter().map(|r| r.as_slice()))
    }

    /// Streaming decode handoff for the index builder: `(block, receipts,
    /// month)` in height order, with the month resolved against the
    /// timeline exactly as [`ChainStore::month_of`] does — but walking
    /// the calendar once. The civil-date derivation loops over years
    /// since 1970, so the per-block `month_of` call is the hidden cost of
    /// a full-range scan; here each month boundary is computed once and
    /// every block inside it hits a cached compare.
    pub fn iter_with_months(&self) -> impl Iterator<Item = (&Block, &[Receipt], Month)> + '_ {
        let timeline = &self.timeline;
        // (month, timeline timestamp at which the next month starts)
        let mut cached: Option<(Month, u64)> = None;
        self.iter().map(move |(b, rs)| {
            let ts = timeline.timestamp_of(b.header.number);
            let month = match cached {
                Some((m, until)) if ts < until => m,
                _ => {
                    let m = mev_types::time::month_of_timestamp(ts);
                    cached = Some((m, m.next().start_timestamp()));
                    m
                }
            };
            (b, rs, month)
        })
    }

    /// Iterate `(block, receipts)` restricted to a height range
    /// (inclusive). Slices the backing storage directly, so the cost is
    /// O(window), not O(chain) — callers paging a narrow window (log
    /// queries, segment ingest) never touch blocks outside it.
    pub fn range(&self, from: u64, to: u64) -> impl Iterator<Item = (&Block, &[Receipt])> {
        let len = self.blocks.len() as u64;
        let lo = from.saturating_sub(self.first_number).min(len) as usize;
        let hi = if to < self.first_number {
            0
        } else {
            (to - self.first_number + 1).min(len) as usize
        };
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (0, 0) };
        self.blocks[lo..hi]
            .iter()
            .zip(self.receipts[lo..hi].iter().map(|r| r.as_slice()))
    }

    /// All logs of a block, with their tx index.
    pub fn logs_of(&self, number: u64) -> Vec<(u32, &Log)> {
        self.receipts(number)
            .map(|rs| {
                rs.iter()
                    .flat_map(|r| r.logs.iter().map(move |l| (r.index, l)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The miner of each block, in height order — input to hashrate
    /// estimation (§4.3).
    pub fn miners(&self) -> impl Iterator<Item = (u64, Address)> + '_ {
        self.blocks
            .iter()
            .map(|b| (b.header.number, b.header.miner))
    }

    /// The calendar month of a block.
    pub fn month_of(&self, number: u64) -> Month {
        self.timeline.at(number).month()
    }

    /// Blocks grouped by month, as (month, height-range) pairs in order.
    pub fn month_ranges(&self) -> Vec<(Month, u64, u64)> {
        let mut out: Vec<(Month, u64, u64)> = Vec::new();
        for b in &self.blocks {
            let m = self.month_of(b.header.number);
            match out.last_mut() {
                Some((lm, _, hi)) if *lm == m => *hi = b.header.number,
                _ => out.push((m, b.header.number, b.header.number)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{gwei, Action, BlockHeader, Gas, Transaction, TxFee, Wei, H256};

    fn mk_block(tl: &Timeline, number: u64, n_txs: u64) -> (Block, Vec<Receipt>) {
        let txs: Vec<_> = (0..n_txs)
            .map(|i| {
                Transaction::new(
                    Address::from_index(number * 100 + i),
                    0,
                    TxFee::Legacy {
                        gas_price: gwei(50),
                    },
                    Gas(21_000),
                    Action::Other { gas: Gas(21_000) },
                    Wei::ZERO,
                    None,
                )
            })
            .collect();
        let receipts: Vec<_> = txs
            .iter()
            .enumerate()
            .map(|(i, t)| Receipt {
                tx_hash: t.hash(),
                index: i as u32,
                from: t.from,
                outcome: mev_types::ExecOutcome::Success,
                gas_used: Gas(21_000),
                effective_gas_price: gwei(50),
                miner_fee: Gas(21_000).cost(gwei(50)),
                coinbase_transfer: Wei::ZERO,
                logs: vec![],
            })
            .collect();
        let header = BlockHeader {
            number,
            parent_hash: H256::zero(),
            miner: Address::from_index(7),
            timestamp: tl.timestamp_of(number),
            gas_used: Gas(21_000 * n_txs),
            gas_limit: Gas(30_000_000),
            base_fee: Wei::ZERO,
        };
        (
            Block {
                header,
                transactions: txs,
            },
            receipts,
        )
    }

    fn store_with(n: u64) -> ChainStore {
        let tl = Timeline::paper_span(100);
        let mut s = ChainStore::new(tl.clone());
        for i in 0..n {
            let (b, r) = mk_block(&tl, tl.genesis_number + i, 2);
            s.push(b, r);
        }
        s
    }

    #[test]
    fn iter_with_months_agrees_with_month_of() {
        // Enough blocks to cross several month boundaries at 100
        // blocks/month, so the cached boundary path is exercised.
        let s = store_with(350);
        let mut n = 0usize;
        for (b, rs, month) in s.iter_with_months() {
            assert_eq!(month, s.month_of(b.header.number));
            assert_eq!(rs.len(), 2);
            n += 1;
        }
        assert_eq!(n, 350);
    }

    #[test]
    fn push_and_query() {
        let s = store_with(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.head_number(), Some(10_000_004));
        assert!(s.block(10_000_003).is_some());
        assert!(s.block(10_000_005).is_none());
        assert!(s.block(9_999_999).is_none());
        assert_eq!(s.receipts(10_000_000).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn non_contiguous_push_panics() {
        let tl = Timeline::paper_span(100);
        let mut s = ChainStore::new(tl.clone());
        let (b, r) = mk_block(&tl, tl.genesis_number + 5, 1);
        s.push(b, r);
    }

    #[test]
    fn tx_index_locates() {
        let s = store_with(3);
        let tx = &s.block(10_000_001).unwrap().transactions[1];
        assert_eq!(s.locate_tx(tx.hash()), Some((10_000_001, 1)));
        assert!(s.contains_tx(tx.hash()));
        assert!(!s.contains_tx(H256::zero()));
    }

    #[test]
    fn range_filters() {
        let s = store_with(10);
        let got: Vec<_> = s
            .range(10_000_002, 10_000_004)
            .map(|(b, _)| b.header.number)
            .collect();
        assert_eq!(got, vec![10_000_002, 10_000_003, 10_000_004]);
    }

    #[test]
    fn range_handles_degenerate_windows() {
        let s = store_with(10);
        // Entirely below the chain.
        assert_eq!(s.range(0, 9_999_999).count(), 0);
        // Entirely above the chain.
        assert_eq!(s.range(10_000_050, 10_000_060).count(), 0);
        // Inverted window.
        assert_eq!(s.range(10_000_005, 10_000_002).count(), 0);
        // Clamped on both ends.
        assert_eq!(s.range(0, u64::MAX).count(), 10);
        // Single block.
        assert_eq!(s.range(10_000_009, 10_000_009).count(), 1);
    }

    #[test]
    fn month_ranges_contiguous() {
        // 100 blocks/month timeline, 250 blocks ⇒ 3 months.
        let s = store_with(250);
        let ranges = s.month_ranges();
        assert!(ranges.len() >= 2);
        // Ranges tile the chain without gaps.
        let mut expect = 10_000_000;
        for (_, lo, hi) in &ranges {
            assert_eq!(*lo, expect);
            expect = hi + 1;
        }
        assert_eq!(expect, 10_000_250);
    }

    #[test]
    fn miners_iterates_all() {
        let s = store_with(4);
        assert_eq!(s.miners().count(), 4);
        assert!(s.miners().all(|(_, m)| m == Address::from_index(7)));
    }
}
