//! The world: account state plus every protocol substrate, as seen by the
//! execution engine.

use crate::state::StateDb;
use mev_dex::{DexState, PriceOracle, TokenRegistry};
use mev_lending::LendingState;

/// Everything a transaction can touch.
#[derive(Debug, Clone)]
pub struct World {
    pub state: StateDb,
    pub dex: DexState,
    pub lending: LendingState,
    pub oracle: PriceOracle,
    pub registry: TokenRegistry,
}

impl World {
    /// An empty world with `n_tokens` registered tokens (plus WETH).
    pub fn new(n_tokens: u32) -> World {
        World {
            state: StateDb::new(),
            dex: DexState::new(),
            lending: LendingState::new(),
            oracle: PriceOracle::new(),
            registry: TokenRegistry::with_tokens(n_tokens),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::TokenId;

    #[test]
    fn new_world_is_empty_but_wired() {
        let w = World::new(3);
        assert!(w.state.is_empty());
        assert!(w.dex.is_empty());
        assert_eq!(w.registry.len(), 4);
        assert_eq!(w.oracle.price(TokenId::WETH), Some(10u128.pow(18)));
        assert_eq!(w.lending.platforms().count(), 4);
    }
}
