//! An `eth_getLogs`-style filter API over the archive store — the query
//! surface the paper's collection scripts use ("crawling token transfer
//! events", "crawling token swap events", "crawling liquidation events",
//! §3.1). Filters compose: block range, emitting addresses, event
//! families, and a result cap with continuation.
//!
//! This module also defines the *shared* query surface every archive
//! backend implements: the [`ArchiveQuery`] trait with a single
//! `(LogPage, QueryStats)` return shape, the [`Pages`] iterator that
//! drives cursors, and the unified [`QueryStats`] both the in-memory
//! [`ChainStore`] scan and the segmented on-disk store report. The store
//! additionally has a planner ([`QueryPlan`]) choosing between a full
//! scan, inverted postings, and rollup answers; the in-memory path is
//! always a [`QueryPlan::FullScan`]. Every plan is required to be
//! bit-identical to the full scan on the same filter.

use crate::archive::ChainStore;
use mev_types::{Address, Log, LogEvent, Timeline, TxHash};

/// The event families a filter can select (the analogue of `topic0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    Transfer,
    Swap,
    Deposit,
    Borrow,
    Repay,
    Liquidation,
    FlashLoan,
    OracleUpdate,
    Payout,
}

impl EventKind {
    /// Every family, in stable tag order ([`EventKind::tag`]).
    pub const ALL: [EventKind; 9] = [
        EventKind::Transfer,
        EventKind::Swap,
        EventKind::Deposit,
        EventKind::Borrow,
        EventKind::Repay,
        EventKind::Liquidation,
        EventKind::FlashLoan,
        EventKind::OracleUpdate,
        EventKind::Payout,
    ];

    /// Does a log match this family?
    pub fn matches(&self, log: &LogEvent) -> bool {
        *self == EventKind::of(log)
    }

    /// The event family of a decoded log body.
    pub fn of(event: &LogEvent) -> EventKind {
        match event {
            LogEvent::Transfer { .. } => EventKind::Transfer,
            LogEvent::Swap { .. } => EventKind::Swap,
            LogEvent::Deposit { .. } => EventKind::Deposit,
            LogEvent::Borrow { .. } => EventKind::Borrow,
            LogEvent::Repay { .. } => EventKind::Repay,
            LogEvent::Liquidation { .. } => EventKind::Liquidation,
            LogEvent::OracleUpdate { .. } => EventKind::OracleUpdate,
            LogEvent::FlashLoan { .. } => EventKind::FlashLoan,
            LogEvent::Payout { .. } => EventKind::Payout,
        }
    }

    /// Stable numeric tag per family — part of the store's on-disk
    /// format, so the mapping is frozen: new families append, existing
    /// tags never move.
    pub fn tag(self) -> u8 {
        match self {
            EventKind::Transfer => 0,
            EventKind::Swap => 1,
            EventKind::Deposit => 2,
            EventKind::Borrow => 3,
            EventKind::Repay => 4,
            EventKind::Liquidation => 5,
            EventKind::FlashLoan => 6,
            EventKind::OracleUpdate => 7,
            EventKind::Payout => 8,
        }
    }

    /// Inverse of [`EventKind::tag`]; `None` for tags from a newer
    /// format.
    pub fn from_tag(tag: u8) -> Option<EventKind> {
        EventKind::ALL.get(tag as usize).copied()
    }

    /// Lower-case family name, accepted back by [`EventKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Transfer => "transfer",
            EventKind::Swap => "swap",
            EventKind::Deposit => "deposit",
            EventKind::Borrow => "borrow",
            EventKind::Repay => "repay",
            EventKind::Liquidation => "liquidation",
            EventKind::FlashLoan => "flashloan",
            EventKind::OracleUpdate => "oracleupdate",
            EventKind::Payout => "payout",
        }
    }

    /// Parse a family from its [`EventKind::name`] (case-insensitive).
    pub fn parse(name: &str) -> Option<EventKind> {
        let lower = name.to_ascii_lowercase();
        EventKind::ALL.into_iter().find(|k| k.name() == lower)
    }
}

/// A log filter. All set fields must match (conjunction), like
/// `eth_getLogs`; within `addresses` / `kinds` any element may match
/// (disjunction), like `eth_getLogs`' address arrays.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
#[serde(from = "LogFilterWire")]
pub struct LogFilter {
    /// Inclusive start height; chain start if unset.
    pub from_block: Option<u64>,
    /// Inclusive end height; chain head if unset.
    pub to_block: Option<u64>,
    /// Emitting contract addresses (any may match; empty = all).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub addresses: Vec<Address>,
    /// Event families (any may match; empty = all).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub kinds: Vec<EventKind>,
    /// Maximum results per call (default 10,000, like a public RPC cap).
    pub limit: Option<usize>,
    /// Continuation position from a previous page ([`LogFilter::after`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resume: Option<Cursor>,
}

/// Wire shape of a serialized [`LogFilter`]. Accepts both the current
/// multi-value fields and the legacy single-value `address` / `kind`
/// fields (pre-planner checkpoints), folding legacy scalars into the
/// vectors — the serde back-compat half of the API redesign.
#[derive(serde::Deserialize)]
struct LogFilterWire {
    #[serde(default)]
    from_block: Option<u64>,
    #[serde(default)]
    to_block: Option<u64>,
    #[serde(default)]
    address: Option<Address>,
    #[serde(default)]
    kind: Option<EventKind>,
    #[serde(default)]
    addresses: Vec<Address>,
    #[serde(default)]
    kinds: Vec<EventKind>,
    #[serde(default)]
    limit: Option<usize>,
    #[serde(default)]
    resume: Option<Cursor>,
}

impl From<LogFilterWire> for LogFilter {
    fn from(wire: LogFilterWire) -> LogFilter {
        let mut filter = LogFilter {
            from_block: wire.from_block,
            to_block: wire.to_block,
            addresses: wire.addresses,
            kinds: wire.kinds,
            limit: wire.limit,
            resume: wire.resume,
        };
        if let Some(a) = wire.address {
            if !filter.addresses.contains(&a) {
                filter.addresses.push(a);
            }
        }
        if let Some(k) = wire.kind {
            if !filter.kinds.contains(&k) {
                filter.kinds.push(k);
            }
        }
        filter
    }
}

/// Default per-call cap.
pub const DEFAULT_LIMIT: usize = 10_000;

impl LogFilter {
    pub fn new() -> LogFilter {
        LogFilter::default()
    }

    pub fn from_block(mut self, b: u64) -> LogFilter {
        self.from_block = Some(b);
        self
    }

    pub fn to_block(mut self, b: u64) -> LogFilter {
        self.to_block = Some(b);
        self
    }

    /// Add one emitting contract address (deduplicating).
    pub fn address(mut self, a: Address) -> LogFilter {
        if !self.addresses.contains(&a) {
            self.addresses.push(a);
        }
        self
    }

    /// Add several emitting contract addresses (deduplicating).
    pub fn addresses(self, addrs: impl IntoIterator<Item = Address>) -> LogFilter {
        addrs.into_iter().fold(self, LogFilter::address)
    }

    /// Add one event family (deduplicating).
    pub fn kind(mut self, k: EventKind) -> LogFilter {
        if !self.kinds.contains(&k) {
            self.kinds.push(k);
        }
        self
    }

    /// Add several event families (deduplicating).
    pub fn kinds(self, kinds: impl IntoIterator<Item = EventKind>) -> LogFilter {
        kinds.into_iter().fold(self, LogFilter::kind)
    }

    pub fn limit(mut self, n: usize) -> LogFilter {
        self.limit = Some(n);
        self
    }

    /// Continue a paginated query from where a previous page stopped.
    pub fn after(mut self, cursor: Cursor) -> LogFilter {
        self.resume = Some(cursor);
        self
    }

    /// Does a log pass the address/kind predicate?
    pub fn matches_log(&self, log: &Log) -> bool {
        (self.addresses.is_empty() || self.addresses.contains(&log.address))
            && (self.kinds.is_empty() || self.kinds.contains(&EventKind::of(&log.event)))
    }

    /// Whether the filter constrains address or kind at all (the inputs
    /// blooms and postings can act on).
    pub fn is_selective(&self) -> bool {
        !self.addresses.is_empty() || !self.kinds.is_empty()
    }

    /// The effective per-page result cap.
    pub fn effective_limit(&self) -> usize {
        self.limit.unwrap_or(DEFAULT_LIMIT).max(1)
    }

    /// Build a filter from decoded HTTP query-string pairs — the inverse
    /// of the serde wire form, for URL surfaces. Accepted parameters:
    ///
    /// | param     | value                                   | repeatable |
    /// |-----------|-----------------------------------------|------------|
    /// | `from`    | inclusive start height                  | no         |
    /// | `to`      | inclusive end height                    | no         |
    /// | `limit`   | per-page result cap                     | no         |
    /// | `address` | `0x`-hex address or decimal sim index   | yes        |
    /// | `kind`    | [`EventKind::name`] (case-insensitive)  | yes        |
    /// | `cursor`  | [`Cursor::to_token`] continuation token | no         |
    ///
    /// Repeated `address` / `kind` pairs accumulate (deduplicating) into
    /// the disjunctive vectors; unknown parameter names and malformed
    /// values are errors so clients learn about typos instead of
    /// silently getting the unfiltered firehose.
    pub fn from_query_pairs<I, K, V>(pairs: I) -> Result<LogFilter, FilterParamError>
    where
        I: IntoIterator<Item = (K, V)>,
        K: AsRef<str>,
        V: AsRef<str>,
    {
        let mut filter = LogFilter::new();
        for (key, value) in pairs {
            let (key, value) = (key.as_ref(), value.as_ref());
            let bad = |k: &str, v: &str| FilterParamError::BadValue {
                param: k.to_string(),
                value: v.to_string(),
            };
            match key {
                "from" => {
                    filter.from_block = Some(value.parse().map_err(|_| bad(key, value))?);
                }
                "to" => {
                    filter.to_block = Some(value.parse().map_err(|_| bad(key, value))?);
                }
                "limit" => {
                    filter.limit = Some(value.parse().map_err(|_| bad(key, value))?);
                }
                "address" => {
                    let addr = if value.starts_with("0x") {
                        value.parse::<Address>().map_err(|_| bad(key, value))?
                    } else {
                        Address::from_index(value.parse().map_err(|_| bad(key, value))?)
                    };
                    filter = filter.address(addr);
                }
                "kind" => {
                    let kind = EventKind::parse(value).ok_or_else(|| bad(key, value))?;
                    filter = filter.kind(kind);
                }
                "cursor" => {
                    let cursor = Cursor::parse_token(value).ok_or_else(|| bad(key, value))?;
                    filter.resume = Some(cursor);
                }
                _ => {
                    return Err(FilterParamError::UnknownParam {
                        param: key.to_string(),
                    })
                }
            }
        }
        Ok(filter)
    }

    /// Clamp the filter (including any resume cursor) to an archive's
    /// committed `[genesis, head]` range. Returns the inclusive scan
    /// window plus the `(block, first_tx_index)` the resume cursor asks
    /// to skip to, or `None` when the window is empty. Every backend
    /// derives its scan bounds from this one place so pagination is
    /// bit-identical across them.
    pub fn window(&self, genesis: u64, head: u64) -> Option<(u64, u64, Option<(u64, u32)>)> {
        let mut from = self.from_block.unwrap_or(genesis).max(genesis);
        let mut skip = None;
        if let Some(cursor) = self.resume {
            from = from.max(cursor.next_block);
            if cursor.next_tx_index > 0 {
                skip = Some((cursor.next_block, cursor.next_tx_index));
            }
        }
        let to = self.to_block.unwrap_or(head).min(head);
        (from <= to).then_some((from, to, skip))
    }
}

/// Why a query-string could not be turned into a [`LogFilter`]
/// ([`LogFilter::from_query_pairs`]). Carries enough to render a
/// client-facing 400 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterParamError {
    /// A parameter name the filter surface does not define.
    UnknownParam { param: String },
    /// A known parameter whose value failed to parse.
    BadValue { param: String, value: String },
}

impl std::fmt::Display for FilterParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterParamError::UnknownParam { param } => {
                write!(f, "unknown query parameter `{param}`")
            }
            FilterParamError::BadValue { param, value } => {
                write!(f, "invalid value `{value}` for query parameter `{param}`")
            }
        }
    }
}

impl std::error::Error for FilterParamError {}

/// A typed continuation token: where the next page starts, to
/// transaction granularity. Serializable, so a crawl can checkpoint and
/// resume across processes. Cursors serialized before the tx-granular
/// fix (block only) deserialize with `next_tx_index = 0` — the old
/// block-boundary semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cursor {
    next_block: u64,
    #[serde(default)]
    next_tx_index: u32,
}

impl Cursor {
    /// A cursor that resumes at the first transaction of `next_block`.
    pub fn at(next_block: u64) -> Cursor {
        Cursor::at_tx(next_block, 0)
    }

    /// A cursor that resumes at transaction `next_tx_index` of
    /// `next_block`. Public so alternative archive backends (e.g. the
    /// segmented on-disk store) hand out the same continuation tokens as
    /// the in-memory path.
    pub fn at_tx(next_block: u64, next_tx_index: u32) -> Cursor {
        Cursor {
            next_block,
            next_tx_index,
        }
    }

    /// The first block height the next page will read.
    pub fn next_block(&self) -> u64 {
        self.next_block
    }

    /// The first transaction index within [`Cursor::next_block`] the
    /// next page will read.
    pub fn next_tx_index(&self) -> u32 {
        self.next_tx_index
    }

    /// Compact `block.tx` token for URLs and logs — the form an HTTP
    /// API hands to clients as a continuation parameter. The tx suffix
    /// is omitted at block boundaries so block-only tokens stay short.
    pub fn to_token(&self) -> String {
        if self.next_tx_index == 0 {
            self.next_block.to_string()
        } else {
            format!("{}.{}", self.next_block, self.next_tx_index)
        }
    }

    /// Parse a [`Cursor::to_token`] string (`"BLOCK"` or `"BLOCK.TX"`).
    /// Tolerates any numeric position, including a tx index at or past
    /// the end of its block — the query engines resume such cursors at
    /// the next block — so tokens from untrusted clients cannot make a
    /// filter unrepresentable.
    pub fn parse_token(s: &str) -> Option<Cursor> {
        match s.split_once('.') {
            None => s.parse().ok().map(Cursor::at),
            Some((block, tx)) => Some(Cursor::at_tx(block.parse().ok()?, tx.parse().ok()?)),
        }
    }
}

/// A matched log with its chain coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    pub block: u64,
    pub tx_index: u32,
    pub tx_hash: TxHash,
    pub log: Log,
}

/// The result page: matches plus a continuation cursor when the cap hit.
#[derive(Debug, Clone, PartialEq)]
pub struct LogPage {
    pub entries: Vec<LogEntry>,
    /// Resume with [`LogFilter::after`] if the page filled up. `Some`
    /// promises only that more matches *may* exist: the final page of an
    /// exactly-limit-sized result is empty with `next: None`.
    pub next: Option<Cursor>,
}

/// How a query was answered. The in-memory chain always scans; the
/// segmented store's planner may pick an index-only strategy instead,
/// and every strategy is bit-identical to [`QueryPlan::FullScan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum QueryPlan {
    /// Decode block entries across the filter window.
    #[default]
    FullScan,
    /// Serve matches from per-segment inverted postings — only sidecar
    /// index pages are read, never segment data frames.
    Postings,
    /// Answer an aggregate from persisted rollups without touching any
    /// segment or index bytes.
    Rollup,
}

impl QueryPlan {
    /// Stable lower-snake name (used in reports and CI assertions).
    pub fn as_str(self) -> &'static str {
        match self {
            QueryPlan::FullScan => "full_scan",
            QueryPlan::Postings => "postings",
            QueryPlan::Rollup => "rollup",
        }
    }

    /// How many bytes a strategy touches relative to the others:
    /// a rollup answer reads only the manifest, postings read sidecar
    /// pages, a full scan decodes data frames. Folding multi-page stats
    /// keeps the *most degraded* plan so a query that ever fell back to
    /// scanning can never summarize itself as index-served.
    fn degradation(self) -> u8 {
        match self {
            QueryPlan::Rollup => 0,
            QueryPlan::Postings => 1,
            QueryPlan::FullScan => 2,
        }
    }

    /// The more degraded (more bytes touched) of two executed plans.
    pub fn worse(self, other: QueryPlan) -> QueryPlan {
        if other.degradation() > self.degradation() {
            other
        } else {
            self
        }
    }
}

/// What a query actually touched — the single stats shape every
/// [`ArchiveQuery`] backend reports. Lets tests and benchmarks assert
/// that scans are bounded by the filter window and that planner-chosen
/// index paths really avoid data frames. Segment-level fields stay zero
/// on the in-memory backend (it has no segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// The strategy that actually *executed* (always `FullScan` in
    /// memory). When an index path degrades mid-query — e.g. a damaged
    /// sidecar forces the postings strategy back onto the scan — this
    /// field reports the executed fallback, never the optimistic choice;
    /// [`QueryStats::planned`] keeps what the planner wanted.
    pub plan: QueryPlan,
    /// The strategy the planner *chose* before execution. Differs from
    /// [`QueryStats::plan`] exactly when the query degraded (see the
    /// `store.postings.fallback` counter).
    pub planned: QueryPlan,
    /// Query calls folded into this stats value: 1 for a single page,
    /// the page count for an accumulated total, 0 only for a fresh
    /// accumulator that has absorbed nothing yet.
    pub pages: u64,
    /// Blocks whose receipts were examined.
    pub blocks_scanned: u64,
    /// Segments committed in the store.
    pub segments_total: u64,
    /// Segments skipped because their zone map misses the height window.
    pub pruned_by_zone: u64,
    /// Segments skipped because their bloom excludes every address/kind.
    pub pruned_by_bloom: u64,
    /// Segments whose data frames were read and decoded.
    pub segments_read: u64,
    /// Block-entry data frames decoded on behalf of this query.
    pub data_frames_read: u64,
    /// Sidecar index pages (postings + row chunks) read.
    pub postings_pages_read: u64,
    /// Rollup tables consulted.
    pub rollup_reads: u64,
    /// Segments the bloom let through that contributed no matching log —
    /// the filter's false positives (only counted when the filter names
    /// an address or kind, i.e. when the bloom had a say).
    pub bloom_false_positives: u64,
}

impl QueryStats {
    /// Segments skipped without touching their bytes, by any pruning.
    pub fn segments_pruned(&self) -> u64 {
        self.pruned_by_zone + self.pruned_by_bloom
    }

    /// Fold another page's stats into a running total. Cumulative fields
    /// sum; `segments_total` is a property of the store, not the page.
    /// The folded `plan`/`planned` keep the *most degraded* strategy any
    /// page executed ([`QueryPlan::worse`]): if one page of a paginated
    /// query fell back from postings to a scan, the total truthfully
    /// reports `FullScan` even when later pages were index-served. A
    /// fresh accumulator (`pages == 0`) adopts the first page's plans
    /// verbatim so its `FullScan` default cannot poison the fold.
    pub fn absorb(&mut self, other: &QueryStats) {
        if self.pages == 0 {
            self.plan = other.plan;
            self.planned = other.planned;
        } else if other.pages > 0 {
            self.plan = self.plan.worse(other.plan);
            self.planned = self.planned.worse(other.planned);
        }
        self.pages += other.pages;
        self.blocks_scanned += other.blocks_scanned;
        self.segments_total = self.segments_total.max(other.segments_total);
        self.pruned_by_zone += other.pruned_by_zone;
        self.pruned_by_bloom += other.pruned_by_bloom;
        self.segments_read += other.segments_read;
        self.data_frames_read += other.data_frames_read;
        self.postings_pages_read += other.postings_pages_read;
        self.rollup_reads += other.rollup_reads;
        self.bloom_false_positives += other.bloom_false_positives;
    }
}

/// The query surface shared by every archive backend — the in-memory
/// [`ChainStore`] and the segmented on-disk store answer the same
/// filters with the same `(LogPage, QueryStats)` shape, so callers
/// (detectors, audits, servers) are written once against this trait.
///
/// Backends differ only in their error channel: the in-memory store
/// cannot fail (`Error = Infallible`), the on-disk store surfaces I/O
/// and corruption errors.
pub trait ArchiveQuery {
    type Error: std::error::Error + Send + Sync + 'static;

    /// The block-number ↔ wall-clock mapping of the archived chain.
    fn timeline(&self) -> &Timeline;

    /// Height of the last archived block, if any.
    fn head_block(&self) -> Option<u64>;

    /// Execute a filter, reporting what the query touched.
    fn get_logs_with_stats(&self, filter: &LogFilter)
        -> Result<(LogPage, QueryStats), Self::Error>;

    /// Execute a filter.
    fn get_logs(&self, filter: &LogFilter) -> Result<LogPage, Self::Error> {
        self.get_logs_with_stats(filter).map(|(page, _)| page)
    }

    /// Iterate every page of a filter, driving the continuation cursor.
    /// The replacement for the deprecated `get_logs_all` shims.
    fn pages(&self, filter: &LogFilter) -> Pages<'_, Self>
    where
        Self: Sized,
    {
        Pages {
            archive: self,
            filter: Some(filter.clone()),
        }
    }
}

/// Iterator over the pages of one filter ([`ArchiveQuery::pages`]).
/// Yields `(page, stats)` per underlying call; stops after the first
/// error or the page whose `next` is `None`.
pub struct Pages<'a, Q: ArchiveQuery> {
    archive: &'a Q,
    filter: Option<LogFilter>,
}

impl<Q: ArchiveQuery> Pages<'_, Q> {
    /// Drain every page into one entry vector — the one-call convenience
    /// `get_logs_all` used to be.
    pub fn collect_entries(self) -> Result<Vec<LogEntry>, Q::Error> {
        let mut out = Vec::new();
        for page in self {
            out.extend(page?.0.entries);
        }
        Ok(out)
    }

    /// Drain every page, concatenating entries and accumulating stats.
    pub fn collect_with_stats(self) -> Result<(Vec<LogEntry>, QueryStats), Q::Error> {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for page in self {
            let (page, page_stats) = page?;
            out.extend(page.entries);
            stats.absorb(&page_stats);
        }
        Ok((out, stats))
    }
}

impl<Q: ArchiveQuery> Iterator for Pages<'_, Q> {
    type Item = Result<(LogPage, QueryStats), Q::Error>;

    fn next(&mut self) -> Option<Self::Item> {
        let filter = self.filter.take()?;
        match self.archive.get_logs_with_stats(&filter) {
            Ok((page, stats)) => {
                if let Some(cursor) = page.next {
                    self.filter = Some(filter.after(cursor));
                }
                Some(Ok((page, stats)))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

impl ArchiveQuery for ChainStore {
    type Error = std::convert::Infallible;

    fn timeline(&self) -> &Timeline {
        ChainStore::timeline(self)
    }

    fn head_block(&self) -> Option<u64> {
        self.head_number()
    }

    fn get_logs_with_stats(
        &self,
        filter: &LogFilter,
    ) -> Result<(LogPage, QueryStats), Self::Error> {
        Ok(get_logs_with_stats(self, filter))
    }
}

/// Execute a filter over the in-memory store.
pub fn get_logs(chain: &ChainStore, filter: &LogFilter) -> LogPage {
    get_logs_with_stats(chain, filter).0
}

/// [`get_logs`], also reporting how many blocks the scan touched. The
/// scan is bounded by `from_block..=to_block` (and any [`Cursor`]
/// position folded in via [`LogFilter::after`]): blocks outside the
/// window are never read, so each page costs O(window), not O(chain).
///
/// Pagination contract (shared, bit-for-bit, with the on-disk store):
/// pages break only at *transaction* boundaries — one transaction's logs
/// are never split — and when the cap hits after transaction `t` of
/// block `b`, the page carries `Cursor::at_tx(b, t + 1)`.
pub fn get_logs_with_stats(chain: &ChainStore, filter: &LogFilter) -> (LogPage, QueryStats) {
    let mut stats = QueryStats {
        pages: 1,
        ..QueryStats::default()
    };
    let empty = LogPage {
        entries: Vec::new(),
        next: None,
    };
    let head = match chain.head_number() {
        Some(h) => h,
        None => return (empty, stats),
    };
    let genesis = ChainStore::timeline(chain).genesis_number;
    let Some((from, to, skip)) = filter.window(genesis, head) else {
        return (empty, stats);
    };
    let limit = filter.effective_limit();
    let mut entries = Vec::new();
    for (block, receipts) in chain.range(from, to) {
        let block_number = block.header.number;
        stats.blocks_scanned += 1;
        for r in receipts {
            if let Some((skip_block, first_tx)) = skip {
                if block_number == skip_block && r.index < first_tx {
                    continue;
                }
            }
            for log in &r.logs {
                if filter.matches_log(log) {
                    entries.push(LogEntry {
                        block: block_number,
                        tx_index: r.index,
                        tx_hash: r.tx_hash,
                        log: log.clone(),
                    });
                }
            }
            // Page boundary between transactions, so pagination never
            // splits one transaction's logs (and never re-reads them).
            if entries.len() >= limit {
                return (
                    LogPage {
                        entries,
                        next: Some(Cursor::at_tx(block_number, r.index + 1)),
                    },
                    stats,
                );
            }
        }
    }
    (
        LogPage {
            entries,
            next: None,
        },
        stats,
    )
}

/// Stream every matching log by looping [`get_logs`] pages through their
/// cursors.
#[deprecated(
    since = "0.6.0",
    note = "use `ArchiveQuery::pages(filter).collect_entries()` instead"
)]
pub fn get_logs_all(chain: &ChainStore, filter: &LogFilter) -> Vec<LogEntry> {
    let mut out = Vec::new();
    let mut f = filter.clone();
    loop {
        let page = get_logs(chain, &f);
        out.extend(page.entries);
        match page.next {
            Some(cursor) => f = f.after(cursor),
            None => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{
        gwei, Action, Block, BlockHeader, ExecOutcome, Gas, Receipt, Timeline, TokenId,
        Transaction, TxFee, Wei, H256,
    };

    fn make_tx(from_index: u64) -> Transaction {
        Transaction::new(
            Address::from_index(from_index),
            0,
            TxFee::Legacy {
                gas_price: gwei(10),
            },
            Gas(100_000),
            Action::Other { gas: Gas(100_000) },
            Wei::ZERO,
            None,
        )
    }

    fn make_receipt(tx: &Transaction, index: u32, logs: Vec<Log>) -> Receipt {
        Receipt {
            tx_hash: tx.hash(),
            index,
            from: tx.from,
            outcome: ExecOutcome::Success,
            gas_used: Gas(100_000),
            effective_gas_price: gwei(10),
            miner_fee: Wei::ZERO,
            coinbase_transfer: Wei::ZERO,
            logs,
        }
    }

    fn push_block(c: &mut ChainStore, number: u64, txs: Vec<Transaction>, receipts: Vec<Receipt>) {
        let tl = ChainStore::timeline(c).clone();
        let header = BlockHeader {
            number,
            parent_hash: H256::zero(),
            miner: Address::from_index(9),
            timestamp: tl.timestamp_of(number),
            gas_used: Gas(100_000),
            gas_limit: Gas(30_000_000),
            base_fee: Wei::ZERO,
        };
        c.push(
            Block {
                header,
                transactions: txs,
            },
            receipts,
        );
    }

    /// 10 blocks; each block has one tx emitting a Transfer from address
    /// A(1) and, on even blocks, a Swap from address A(2).
    fn chain() -> ChainStore {
        let tl = Timeline::paper_span(100);
        let mut c = ChainStore::new(tl.clone());
        for i in 0..10u64 {
            let number = tl.genesis_number + i;
            let tx = make_tx(100 + i);
            let mut logs = vec![Log::new(
                Address::from_index(1),
                LogEvent::Transfer {
                    token: TokenId::WETH,
                    from: Address::ZERO,
                    to: Address::ZERO,
                    amount: i as u128,
                },
            )];
            if i % 2 == 0 {
                logs.push(Log::new(
                    Address::from_index(2),
                    LogEvent::Swap {
                        pool: mev_types::PoolId {
                            exchange: mev_types::ExchangeId::UniswapV2,
                            index: 0,
                        },
                        sender: Address::ZERO,
                        token_in: TokenId::WETH,
                        amount_in: 1,
                        token_out: TokenId(1),
                        amount_out: 1,
                    },
                ));
            }
            let receipt = make_receipt(&tx, 0, logs);
            push_block(&mut c, number, vec![tx], vec![receipt]);
        }
        c
    }

    /// 4 blocks of 3 transactions, each tx emitting one Transfer — a
    /// fixture whose pages can fill mid-block.
    fn multi_tx_chain() -> ChainStore {
        let tl = Timeline::paper_span(100);
        let mut c = ChainStore::new(tl.clone());
        for i in 0..4u64 {
            let number = tl.genesis_number + i;
            let mut txs = Vec::new();
            let mut receipts = Vec::new();
            for t in 0..3u64 {
                let tx = make_tx(1000 + i * 10 + t);
                let log = Log::new(
                    Address::from_index(1),
                    LogEvent::Transfer {
                        token: TokenId::WETH,
                        from: Address::ZERO,
                        to: Address::ZERO,
                        amount: (i * 10 + t) as u128,
                    },
                );
                receipts.push(make_receipt(&tx, t as u32, vec![log]));
                txs.push(tx);
            }
            push_block(&mut c, number, txs, receipts);
        }
        c
    }

    fn all_entries(c: &ChainStore, f: &LogFilter) -> Vec<LogEntry> {
        c.pages(f).collect_entries().unwrap()
    }

    #[test]
    fn unfiltered_returns_everything() {
        let c = chain();
        let page = get_logs(&c, &LogFilter::new());
        assert_eq!(page.entries.len(), 15); // 10 transfers + 5 swaps
        assert!(page.next.is_none());
    }

    #[test]
    fn kind_filter() {
        let c = chain();
        let swaps = get_logs(&c, &LogFilter::new().kind(EventKind::Swap));
        assert_eq!(swaps.entries.len(), 5);
        assert!(swaps
            .entries
            .iter()
            .all(|e| matches!(e.log.event, LogEvent::Swap { .. })));
        let liqs = get_logs(&c, &LogFilter::new().kind(EventKind::Liquidation));
        assert!(liqs.entries.is_empty());
    }

    #[test]
    fn address_filter() {
        let c = chain();
        let from_a2 = get_logs(&c, &LogFilter::new().address(Address::from_index(2)));
        assert_eq!(from_a2.entries.len(), 5);
    }

    #[test]
    fn multi_address_and_multi_kind_filters_are_disjunctions() {
        let c = chain();
        let both = get_logs(
            &c,
            &LogFilter::new().addresses([Address::from_index(1), Address::from_index(2)]),
        );
        assert_eq!(both.entries.len(), 15, "A(1) ∪ A(2) is everything");
        let kinds = get_logs(
            &c,
            &LogFilter::new().kinds([EventKind::Swap, EventKind::Liquidation]),
        );
        assert_eq!(kinds.entries.len(), 5, "Swap ∪ Liquidation = the swaps");
        // Conjunction across dimensions still applies.
        let cross = get_logs(
            &c,
            &LogFilter::new()
                .address(Address::from_index(1))
                .kind(EventKind::Swap),
        );
        assert!(cross.entries.is_empty(), "A(1) never emits swaps");
        // Builders deduplicate.
        let dup = LogFilter::new()
            .address(Address::from_index(1))
            .address(Address::from_index(1))
            .kind(EventKind::Swap)
            .kind(EventKind::Swap);
        assert_eq!(dup.addresses.len(), 1);
        assert_eq!(dup.kinds.len(), 1);
    }

    #[test]
    fn block_range_filter() {
        let c = chain();
        let g = ChainStore::timeline(&c).genesis_number;
        let page = get_logs(&c, &LogFilter::new().from_block(g + 2).to_block(g + 4));
        // Blocks g+2, g+3, g+4: 3 transfers + 2 swaps (g+2, g+4 even).
        assert_eq!(page.entries.len(), 5);
        assert!(page
            .entries
            .iter()
            .all(|e| e.block >= g + 2 && e.block <= g + 4));
    }

    #[test]
    fn pagination_with_continuation() {
        let c = chain();
        let f = LogFilter::new().limit(4);
        let first = get_logs(&c, &f);
        assert!(first.entries.len() >= 4);
        let cursor = first.next.expect("more pages");
        let second = get_logs(&c, &f.clone().after(cursor));
        assert!(!second.entries.is_empty());
        // No overlap across pages.
        let last_of_first = first.entries.last().unwrap();
        let first_of_second = second.entries.first().unwrap();
        assert!(
            (first_of_second.block, first_of_second.tx_index)
                > (last_of_first.block, last_of_first.tx_index)
        );
        // Streaming equals a single unbounded query.
        let all = all_entries(&c, &LogFilter::new().limit(4));
        assert_eq!(all.len(), 15);
        assert_eq!(all, get_logs(&c, &LogFilter::new()).entries);
    }

    #[test]
    fn pagination_is_tx_granular_and_round_trips() {
        // 4 blocks × 3 txs × 1 log; limit 2 cuts every page mid-block.
        let c = multi_tx_chain();
        let g = ChainStore::timeline(&c).genesis_number;
        let f = LogFilter::new().limit(2);
        let first = get_logs(&c, &f);
        assert_eq!(first.entries.len(), 2);
        let cursor = first.next.expect("more pages");
        // The cursor resumes *within* block g, at tx 2 — not at g+1.
        assert_eq!(cursor.next_block(), g);
        assert_eq!(cursor.next_tx_index(), 2);
        let second = get_logs(&c, &f.clone().after(cursor));
        // Resume must not re-read the block's earlier entries.
        assert_eq!(second.entries[0].block, g);
        assert_eq!(second.entries[0].tx_index, 2);
        // Full round trip: concatenated pages equal the unbounded query.
        let all = all_entries(&c, &f);
        assert_eq!(all, get_logs(&c, &LogFilter::new()).entries);
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn cursor_survives_serialization() {
        // A crawl can checkpoint its cursor and resume in a new process.
        let c = chain();
        let first = get_logs(&c, &LogFilter::new().limit(4));
        let cursor = first.next.expect("more pages");
        let json = serde_json::to_string(&cursor).unwrap();
        let restored: Cursor = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, cursor);
        let resumed = all_entries(&c, &LogFilter::new().limit(4).after(restored));
        assert_eq!(first.entries.len() + resumed.len(), 15);
        assert!(resumed.first().unwrap().block >= restored.next_block());
    }

    #[test]
    fn legacy_serialized_forms_still_deserialize() {
        // A block-granular cursor from an old checkpoint.
        let cursor: Cursor = serde_json::from_str(r#"{"next_block": 10000004}"#).unwrap();
        assert_eq!(cursor, Cursor::at_tx(10_000_004, 0));
        // A filter with the legacy scalar address/kind fields.
        let addr = Address::from_index(7);
        let json = format!(
            r#"{{"from_block": 1, "to_block": 2, "address": {}, "kind": "Swap", "limit": 5}}"#,
            serde_json::to_string(&addr).unwrap()
        );
        let filter: LogFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(filter.addresses, vec![addr]);
        assert_eq!(filter.kinds, vec![EventKind::Swap]);
        assert_eq!(filter.limit, Some(5));
        // The current multi-value form round-trips.
        let f = LogFilter::new()
            .address(Address::from_index(1))
            .kind(EventKind::Transfer)
            .limit(3);
        let json = serde_json::to_string(&f).unwrap();
        let back: LogFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(back.addresses, f.addresses);
        assert_eq!(back.kinds, f.kinds);
        assert_eq!(back.limit, f.limit);
    }

    #[test]
    fn scan_is_bounded_by_the_filter_window() {
        let c = chain();
        let g = ChainStore::timeline(&c).genesis_number;
        // A 3-block window touches exactly 3 blocks of a 10-block chain.
        let (_, stats) =
            get_logs_with_stats(&c, &LogFilter::new().from_block(g + 4).to_block(g + 6));
        assert_eq!(stats.blocks_scanned, 3);
        assert_eq!(stats.plan, QueryPlan::FullScan);
        // A cursor resume never re-reads blocks before the cursor: an
        // unbounded resume scans exactly the tail, and a limited one
        // stops even earlier.
        let f = LogFilter::new().limit(4);
        let (first, first_stats) = get_logs_with_stats(&c, &f);
        let cursor = first.next.expect("more pages");
        assert!(first_stats.blocks_scanned < 10);
        let (tail, tail_stats) = get_logs_with_stats(&c, &LogFilter::new().after(cursor));
        assert_eq!(tail_stats.blocks_scanned, 10 - (cursor.next_block() - g));
        assert!(tail
            .entries
            .iter()
            .all(|e| (e.block, e.tx_index) >= (cursor.next_block(), cursor.next_tx_index())));
        let (_, resume_stats) = get_logs_with_stats(&c, &f.clone().after(cursor));
        assert!(resume_stats.blocks_scanned <= tail_stats.blocks_scanned);
        // An inverted window scans nothing.
        let (page, none) =
            get_logs_with_stats(&c, &LogFilter::new().from_block(g + 6).to_block(g + 2));
        assert!(page.entries.is_empty());
        assert_eq!(none.blocks_scanned, 0);
    }

    #[test]
    fn cursor_at_round_trips() {
        assert_eq!(Cursor::at(42).next_block(), 42);
        assert_eq!(Cursor::at(42).next_tx_index(), 0);
        assert_eq!(Cursor::at_tx(42, 7).next_tx_index(), 7);
    }

    #[test]
    fn empty_chain_is_empty_page() {
        let c = ChainStore::new(Timeline::paper_span(100));
        let page = get_logs(&c, &LogFilter::new());
        assert!(page.entries.is_empty());
        assert!(page.next.is_none());
    }

    #[test]
    fn event_kind_matching_is_exact() {
        let transfer = LogEvent::Transfer {
            token: TokenId::WETH,
            from: Address::ZERO,
            to: Address::ZERO,
            amount: 0,
        };
        assert!(EventKind::Transfer.matches(&transfer));
        assert!(!EventKind::Swap.matches(&transfer));
        assert!(!EventKind::FlashLoan.matches(&transfer));
        assert_eq!(EventKind::of(&transfer), EventKind::Transfer);
    }

    #[test]
    fn event_kind_tags_are_frozen_and_round_trip() {
        for (i, k) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(k.tag() as usize, i, "declaration order is tag order");
            assert_eq!(EventKind::from_tag(k.tag()), Some(k));
            assert_eq!(EventKind::parse(k.name()), Some(k));
        }
        assert_eq!(EventKind::Transfer.tag(), 0);
        assert_eq!(EventKind::Payout.tag(), 8);
        assert_eq!(EventKind::from_tag(9), None);
        assert_eq!(EventKind::parse("SWAP"), Some(EventKind::Swap));
        assert_eq!(EventKind::parse("nope"), None);
    }

    #[test]
    fn archive_query_trait_on_chain_store() {
        let c = chain();
        let f = LogFilter::new().kind(EventKind::Swap).limit(2);
        // Trait methods mirror the free functions exactly.
        let via_trait = ArchiveQuery::get_logs(&c, &f).unwrap();
        assert_eq!(via_trait, get_logs(&c, &f));
        assert_eq!(ArchiveQuery::head_block(&c), c.head_number());
        assert_eq!(
            ArchiveQuery::timeline(&c).genesis_number,
            ChainStore::timeline(&c).genesis_number
        );
        // The pages iterator walks every page.
        let pages: Vec<_> = c.pages(&f).map(|p| p.unwrap().0).collect();
        assert!(pages.len() >= 3, "5 swaps at limit 2 is at least 3 pages");
        let total: usize = pages.iter().map(|p| p.entries.len()).sum();
        assert_eq!(total, 5);
        // collect_with_stats sums the per-page scan work.
        let (entries, stats) = c.pages(&f).collect_with_stats().unwrap();
        assert_eq!(entries.len(), 5);
        assert!(stats.blocks_scanned >= 10);
    }

    #[test]
    fn plan_worse_keeps_the_most_degraded_strategy() {
        use QueryPlan::*;
        assert_eq!(Rollup.worse(Postings), Postings);
        assert_eq!(Postings.worse(Rollup), Postings);
        assert_eq!(Postings.worse(FullScan), FullScan);
        assert_eq!(FullScan.worse(Postings), FullScan);
        assert_eq!(Rollup.worse(FullScan), FullScan);
        for p in [FullScan, Postings, Rollup] {
            assert_eq!(p.worse(p), p);
        }
    }

    #[test]
    fn absorb_reports_the_executed_plan_across_pages() {
        // The satellite-1 contract at the stats layer: a paginated query
        // where one page degraded to a scan must summarize itself as
        // FullScan even when other pages were index-served, while
        // `planned` keeps the planner's optimistic choice.
        let postings_page = QueryStats {
            plan: QueryPlan::Postings,
            planned: QueryPlan::Postings,
            pages: 1,
            postings_pages_read: 2,
            ..QueryStats::default()
        };
        let fallback_page = QueryStats {
            plan: QueryPlan::FullScan,
            planned: QueryPlan::Postings,
            pages: 1,
            data_frames_read: 3,
            ..QueryStats::default()
        };
        let mut total = QueryStats::default();
        assert_eq!(total.pages, 0, "fresh accumulator");
        total.absorb(&postings_page);
        assert_eq!(total.plan, QueryPlan::Postings, "default cannot poison");
        total.absorb(&fallback_page);
        total.absorb(&postings_page);
        assert_eq!(total.plan, QueryPlan::FullScan, "executed plan sticks");
        assert_eq!(total.planned, QueryPlan::Postings);
        assert_eq!(total.pages, 3);
        assert_eq!(total.postings_pages_read, 4);
        assert_eq!(total.data_frames_read, 3);
        // Folding a fresh (page-less) accumulator into another is a no-op
        // on the plan fields.
        let mut other = QueryStats {
            plan: QueryPlan::Rollup,
            planned: QueryPlan::Rollup,
            pages: 1,
            ..QueryStats::default()
        };
        other.absorb(&QueryStats::default());
        assert_eq!(other.plan, QueryPlan::Rollup);
        assert_eq!(other.pages, 1);
    }

    #[test]
    fn cursor_tokens_round_trip() {
        assert_eq!(Cursor::at(42).to_token(), "42");
        assert_eq!(Cursor::at_tx(42, 7).to_token(), "42.7");
        assert_eq!(Cursor::parse_token("42"), Some(Cursor::at(42)));
        assert_eq!(Cursor::parse_token("42.7"), Some(Cursor::at_tx(42, 7)));
        for c in [Cursor::at(0), Cursor::at(10_000_003), Cursor::at_tx(5, 1)] {
            assert_eq!(Cursor::parse_token(&c.to_token()), Some(c));
        }
        // Out-of-range tx indices are representable (the engines resume
        // them at the next block), garbage is not.
        assert_eq!(
            Cursor::parse_token("9.4294967295"),
            Some(Cursor::at_tx(9, u32::MAX))
        );
        for bad in ["", ".", "a", "1.", ".2", "1.2.3", "-1", "1.-2", "1.x"] {
            assert_eq!(Cursor::parse_token(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn filter_from_query_pairs() {
        let a7 = Address::from_index(7);
        let f = LogFilter::from_query_pairs([
            ("from", "10000002".to_string()),
            ("to", "10000008".to_string()),
            ("limit", "5".to_string()),
            ("address", "7".to_string()),
            ("address", format!("{}", Address::from_index(9))),
            ("address", "7".to_string()), // duplicates fold away
            ("kind", "Swap".to_string()),
            ("kind", "transfer".to_string()),
            ("cursor", "10000004.2".to_string()),
        ])
        .unwrap();
        assert_eq!(f.from_block, Some(10_000_002));
        assert_eq!(f.to_block, Some(10_000_008));
        assert_eq!(f.limit, Some(5));
        assert_eq!(f.addresses, vec![a7, Address::from_index(9)]);
        assert_eq!(f.kinds, vec![EventKind::Swap, EventKind::Transfer]);
        assert_eq!(f.resume, Some(Cursor::at_tx(10_000_004, 2)));
        // Hex and decimal-index spellings of the same address agree.
        let hex = LogFilter::from_query_pairs([("address", format!("{a7}"))]).unwrap();
        assert_eq!(hex.addresses, vec![a7]);
        // No pairs means no constraints.
        let empty = LogFilter::from_query_pairs(std::iter::empty::<(&str, &str)>()).unwrap();
        assert!(!empty.is_selective());
        assert!(empty.from_block.is_none() && empty.limit.is_none());
        // Errors name the offending parameter.
        let unknown = LogFilter::from_query_pairs([("fromblock", "1")]).unwrap_err();
        assert_eq!(
            unknown,
            FilterParamError::UnknownParam {
                param: "fromblock".into()
            }
        );
        for (k, v) in [
            ("from", "abc"),
            ("to", "-3"),
            ("limit", "lots"),
            ("address", "0x123"),
            ("address", "not-a-number"),
            ("kind", "swaps"),
            ("cursor", "1.2.3"),
        ] {
            let err = LogFilter::from_query_pairs([(k, v)]).unwrap_err();
            assert_eq!(
                err,
                FilterParamError::BadValue {
                    param: k.into(),
                    value: v.into()
                },
                "{k}={v}"
            );
            assert!(err.to_string().contains(k));
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_get_logs_all_still_works() {
        let c = chain();
        let old = get_logs_all(&c, &LogFilter::new().limit(4));
        let new = c
            .pages(&LogFilter::new().limit(4))
            .collect_entries()
            .unwrap();
        assert_eq!(old, new);
    }
}
