//! An `eth_getLogs`-style filter API over the archive store — the query
//! surface the paper's collection scripts use ("crawling token transfer
//! events", "crawling token swap events", "crawling liquidation events",
//! §3.1). Filters compose: block range, emitting address, event family,
//! and a result cap with continuation.

use crate::archive::ChainStore;
use mev_types::{Address, Log, LogEvent, TxHash};

/// The event families a filter can select (the analogue of `topic0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    Transfer,
    Swap,
    Deposit,
    Borrow,
    Repay,
    Liquidation,
    FlashLoan,
    OracleUpdate,
    Payout,
}

impl EventKind {
    /// Does a log match this family?
    pub fn matches(&self, log: &LogEvent) -> bool {
        matches!(
            (self, log),
            (EventKind::Transfer, LogEvent::Transfer { .. })
                | (EventKind::Swap, LogEvent::Swap { .. })
                | (EventKind::Deposit, LogEvent::Deposit { .. })
                | (EventKind::Borrow, LogEvent::Borrow { .. })
                | (EventKind::Repay, LogEvent::Repay { .. })
                | (EventKind::Liquidation, LogEvent::Liquidation { .. })
                | (EventKind::FlashLoan, LogEvent::FlashLoan { .. })
                | (EventKind::OracleUpdate, LogEvent::OracleUpdate { .. })
                | (EventKind::Payout, LogEvent::Payout { .. })
        )
    }
}

/// A log filter. All set fields must match (conjunction), like
/// `eth_getLogs`.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct LogFilter {
    /// Inclusive start height; chain start if unset.
    pub from_block: Option<u64>,
    /// Inclusive end height; chain head if unset.
    pub to_block: Option<u64>,
    /// Emitting contract address.
    pub address: Option<Address>,
    /// Event family.
    pub kind: Option<EventKind>,
    /// Maximum results per call (default 10,000, like a public RPC cap).
    pub limit: Option<usize>,
}

impl LogFilter {
    pub fn new() -> LogFilter {
        LogFilter::default()
    }

    pub fn from_block(mut self, b: u64) -> LogFilter {
        self.from_block = Some(b);
        self
    }

    pub fn to_block(mut self, b: u64) -> LogFilter {
        self.to_block = Some(b);
        self
    }

    pub fn address(mut self, a: Address) -> LogFilter {
        self.address = Some(a);
        self
    }

    pub fn kind(mut self, k: EventKind) -> LogFilter {
        self.kind = Some(k);
        self
    }

    pub fn limit(mut self, n: usize) -> LogFilter {
        self.limit = Some(n);
        self
    }

    /// Continue a paginated query from where a previous page stopped.
    /// Equivalent to `from_block(cursor.next_block())`.
    pub fn after(self, cursor: Cursor) -> LogFilter {
        self.from_block(cursor.next_block)
    }
}

/// A typed continuation token: where the next page starts. Serializable,
/// so a crawl can checkpoint and resume across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cursor {
    next_block: u64,
}

impl Cursor {
    /// A cursor that resumes at `next_block`. Public so alternative
    /// archive backends (e.g. the segmented on-disk store) can hand out
    /// the same continuation tokens as the in-memory path.
    pub fn at(next_block: u64) -> Cursor {
        Cursor { next_block }
    }

    /// The first block height the next page will read.
    pub fn next_block(&self) -> u64 {
        self.next_block
    }
}

/// A matched log with its chain coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    pub block: u64,
    pub tx_index: u32,
    pub tx_hash: TxHash,
    pub log: Log,
}

/// The result page: matches plus a continuation cursor when the cap hit.
#[derive(Debug, Clone, PartialEq)]
pub struct LogPage {
    pub entries: Vec<LogEntry>,
    /// Resume with [`LogFilter::after`] if the page filled up.
    pub next: Option<Cursor>,
}

/// Default per-call cap.
const DEFAULT_LIMIT: usize = 10_000;

/// What a [`get_logs_with_stats`] call actually touched — lets tests and
/// benchmarks assert that scans are bounded by the filter window instead
/// of walking the whole chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Blocks whose receipts were examined.
    pub blocks_scanned: u64,
}

/// Execute a filter over the store.
pub fn get_logs(chain: &ChainStore, filter: &LogFilter) -> LogPage {
    get_logs_with_stats(chain, filter).0
}

/// [`get_logs`], also reporting how many blocks the scan touched. The
/// scan is bounded by `from_block..=to_block` (and any [`Cursor`]
/// position folded in via [`LogFilter::after`]): blocks outside the
/// window are never read, so each page costs O(window), not O(chain).
pub fn get_logs_with_stats(chain: &ChainStore, filter: &LogFilter) -> (LogPage, QueryStats) {
    let mut stats = QueryStats::default();
    let empty = LogPage {
        entries: Vec::new(),
        next: None,
    };
    let head = match chain.head_number() {
        Some(h) => h,
        None => return (empty, stats),
    };
    let genesis = chain.timeline().genesis_number;
    let from = filter.from_block.unwrap_or(genesis).max(genesis);
    let to = filter.to_block.unwrap_or(head).min(head);
    if from > to {
        return (empty, stats);
    }
    let limit = filter.limit.unwrap_or(DEFAULT_LIMIT).max(1);
    let mut entries = Vec::new();
    for (block, receipts) in chain.range(from, to) {
        let block_number = block.header.number;
        stats.blocks_scanned += 1;
        for r in receipts {
            for log in &r.logs {
                if let Some(addr) = filter.address {
                    if log.address != addr {
                        continue;
                    }
                }
                if let Some(kind) = filter.kind {
                    if !kind.matches(&log.event) {
                        continue;
                    }
                }
                entries.push(LogEntry {
                    block: block_number,
                    tx_index: r.index,
                    tx_hash: r.tx_hash,
                    log: log.clone(),
                });
            }
        }
        // Page boundary only between blocks, so pagination never splits a
        // block's logs.
        if entries.len() >= limit && block_number < to {
            return (
                LogPage {
                    entries,
                    next: Some(Cursor {
                        next_block: block_number + 1,
                    }),
                },
                stats,
            );
        }
    }
    (
        LogPage {
            entries,
            next: None,
        },
        stats,
    )
}

/// Convenience: stream every matching log by looping [`get_logs`] pages
/// through their cursors.
pub fn get_logs_all(chain: &ChainStore, filter: &LogFilter) -> Vec<LogEntry> {
    let mut out = Vec::new();
    let mut f = filter.clone();
    loop {
        let page = get_logs(chain, &f);
        out.extend(page.entries);
        match page.next {
            Some(cursor) => f = f.after(cursor),
            None => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{
        gwei, Action, Block, BlockHeader, ExecOutcome, Gas, Receipt, Timeline, TokenId,
        Transaction, TxFee, Wei, H256,
    };

    /// 10 blocks; each block has one tx emitting a Transfer from address
    /// A(1) and, on even blocks, a Swap from address A(2).
    fn chain() -> ChainStore {
        let tl = Timeline::paper_span(100);
        let mut c = ChainStore::new(tl.clone());
        for i in 0..10u64 {
            let number = tl.genesis_number + i;
            let tx = Transaction::new(
                Address::from_index(100 + i),
                0,
                TxFee::Legacy {
                    gas_price: gwei(10),
                },
                Gas(100_000),
                Action::Other { gas: Gas(100_000) },
                Wei::ZERO,
                None,
            );
            let mut logs = vec![Log::new(
                Address::from_index(1),
                LogEvent::Transfer {
                    token: TokenId::WETH,
                    from: Address::ZERO,
                    to: Address::ZERO,
                    amount: i as u128,
                },
            )];
            if i % 2 == 0 {
                logs.push(Log::new(
                    Address::from_index(2),
                    LogEvent::Swap {
                        pool: mev_types::PoolId {
                            exchange: mev_types::ExchangeId::UniswapV2,
                            index: 0,
                        },
                        sender: Address::ZERO,
                        token_in: TokenId::WETH,
                        amount_in: 1,
                        token_out: TokenId(1),
                        amount_out: 1,
                    },
                ));
            }
            let receipt = Receipt {
                tx_hash: tx.hash(),
                index: 0,
                from: tx.from,
                outcome: ExecOutcome::Success,
                gas_used: Gas(100_000),
                effective_gas_price: gwei(10),
                miner_fee: Wei::ZERO,
                coinbase_transfer: Wei::ZERO,
                logs,
            };
            let header = BlockHeader {
                number,
                parent_hash: H256::zero(),
                miner: Address::from_index(9),
                timestamp: tl.timestamp_of(number),
                gas_used: Gas(100_000),
                gas_limit: Gas(30_000_000),
                base_fee: Wei::ZERO,
            };
            c.push(
                Block {
                    header,
                    transactions: vec![tx],
                },
                vec![receipt],
            );
        }
        c
    }

    #[test]
    fn unfiltered_returns_everything() {
        let c = chain();
        let page = get_logs(&c, &LogFilter::new());
        assert_eq!(page.entries.len(), 15); // 10 transfers + 5 swaps
        assert!(page.next.is_none());
    }

    #[test]
    fn kind_filter() {
        let c = chain();
        let swaps = get_logs(&c, &LogFilter::new().kind(EventKind::Swap));
        assert_eq!(swaps.entries.len(), 5);
        assert!(swaps
            .entries
            .iter()
            .all(|e| matches!(e.log.event, LogEvent::Swap { .. })));
        let liqs = get_logs(&c, &LogFilter::new().kind(EventKind::Liquidation));
        assert!(liqs.entries.is_empty());
    }

    #[test]
    fn address_filter() {
        let c = chain();
        let from_a2 = get_logs(&c, &LogFilter::new().address(Address::from_index(2)));
        assert_eq!(from_a2.entries.len(), 5);
    }

    #[test]
    fn block_range_filter() {
        let c = chain();
        let g = c.timeline().genesis_number;
        let page = get_logs(&c, &LogFilter::new().from_block(g + 2).to_block(g + 4));
        // Blocks g+2, g+3, g+4: 3 transfers + 2 swaps (g+2, g+4 even).
        assert_eq!(page.entries.len(), 5);
        assert!(page
            .entries
            .iter()
            .all(|e| e.block >= g + 2 && e.block <= g + 4));
    }

    #[test]
    fn pagination_with_continuation() {
        let c = chain();
        let f = LogFilter::new().limit(4);
        let first = get_logs(&c, &f);
        assert!(first.entries.len() >= 4);
        let cursor = first.next.expect("more pages");
        let second = get_logs(&c, &f.clone().after(cursor));
        assert!(!second.entries.is_empty());
        // No overlap across pages.
        let last_of_first = first.entries.last().unwrap().block;
        assert!(second.entries.first().unwrap().block > last_of_first);
        // Streaming equals a single unbounded query.
        let all = get_logs_all(&c, &LogFilter::new().limit(4));
        assert_eq!(all.len(), 15);
    }

    #[test]
    fn cursor_survives_serialization() {
        // A crawl can checkpoint its cursor and resume in a new process.
        let c = chain();
        let first = get_logs(&c, &LogFilter::new().limit(4));
        let cursor = first.next.expect("more pages");
        let json = serde_json::to_string(&cursor).unwrap();
        let restored: Cursor = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, cursor);
        let resumed = get_logs_all(&c, &LogFilter::new().limit(4).after(restored));
        assert_eq!(first.entries.len() + resumed.len(), 15);
        assert_eq!(resumed.first().unwrap().block, restored.next_block());
    }

    #[test]
    fn scan_is_bounded_by_the_filter_window() {
        let c = chain();
        let g = c.timeline().genesis_number;
        // A 3-block window touches exactly 3 blocks of a 10-block chain.
        let (_, stats) =
            get_logs_with_stats(&c, &LogFilter::new().from_block(g + 4).to_block(g + 6));
        assert_eq!(stats.blocks_scanned, 3);
        // A cursor resume never re-reads blocks before the cursor.
        let f = LogFilter::new().limit(4);
        let (first, first_stats) = get_logs_with_stats(&c, &f);
        let cursor = first.next.expect("more pages");
        let (_, resume_stats) = get_logs_with_stats(&c, &f.clone().after(cursor));
        assert!(first_stats.blocks_scanned < 10);
        assert_eq!(resume_stats.blocks_scanned, 10 - (cursor.next_block() - g));
        // An inverted window scans nothing.
        let (page, none) =
            get_logs_with_stats(&c, &LogFilter::new().from_block(g + 6).to_block(g + 2));
        assert!(page.entries.is_empty());
        assert_eq!(none.blocks_scanned, 0);
    }

    #[test]
    fn cursor_at_round_trips() {
        assert_eq!(Cursor::at(42).next_block(), 42);
    }

    #[test]
    fn empty_chain_is_empty_page() {
        let c = ChainStore::new(Timeline::paper_span(100));
        let page = get_logs(&c, &LogFilter::new());
        assert!(page.entries.is_empty());
        assert!(page.next.is_none());
    }

    #[test]
    fn event_kind_matching_is_exact() {
        let transfer = LogEvent::Transfer {
            token: TokenId::WETH,
            from: Address::ZERO,
            to: Address::ZERO,
            amount: 0,
        };
        assert!(EventKind::Transfer.matches(&transfer));
        assert!(!EventKind::Swap.matches(&transfer));
        assert!(!EventKind::FlashLoan.matches(&transfer));
    }
}
