//! Property tests over the execution engine: random transaction streams
//! never panic, conserve wei (modulo explicit issuance), keep nonces
//! strictly increasing, and leave no token supply unaccounted.

use mev_chain::{build_block, seed_account, BlockSpec, World, DEFAULT_GAS_LIMIT};
use mev_dex::pool::build;
use mev_types::{
    eth, gwei, Action, Address, Gas, LendingPlatformId, PoolId, SwapCall, TokenId, Transaction,
    TxFee, Wei, H256,
};
use proptest::prelude::*;

const E18: u128 = 10u128.pow(18);

fn world() -> World {
    let mut w = World::new(3);
    w.dex.add_pool(build::uniswap_v2(
        1,
        TokenId::WETH,
        TokenId(1),
        5_000 * E18,
        10_000 * E18,
    ));
    w.dex.add_pool(build::sushiswap(
        1,
        TokenId::WETH,
        TokenId(1),
        3_000 * E18,
        6_100 * E18,
    ));
    w.dex.add_pool(build::curve(
        2,
        TokenId(1),
        TokenId(2),
        50_000 * E18,
        50_000 * E18,
    ));
    w.oracle.update(TokenId(1), 0, E18 / 2);
    w.oracle.update(TokenId(2), 0, E18 / 2);
    for p in [
        LendingPlatformId::AaveV2,
        LendingPlatformId::Compound,
        LendingPlatformId::DyDx,
    ] {
        let platform = w.lending.platform_mut(p);
        platform.seed_liquidity(TokenId::WETH, 100_000 * E18);
        platform.seed_liquidity(TokenId(1), 100_000 * E18);
    }
    for i in 0..8u64 {
        seed_account(
            &mut w.state,
            Address::from_index(i),
            eth(1_000),
            &[
                (TokenId::WETH, 10_000 * E18),
                (TokenId(1), 10_000 * E18),
                (TokenId(2), 10_000 * E18),
            ],
        );
    }
    w
}

/// An arbitrary user action drawn from the full action vocabulary.
fn action_strategy() -> impl Strategy<Value = Action> {
    let swap = (0u8..2, 1u128..=50, 0u128..=100).prop_map(|(pool_idx, amt, min_pct)| {
        let pool = if pool_idx == 0 {
            PoolId {
                exchange: mev_types::ExchangeId::UniswapV2,
                index: 1,
            }
        } else {
            PoolId {
                exchange: mev_types::ExchangeId::SushiSwap,
                index: 1,
            }
        };
        Action::Swap(SwapCall {
            pool,
            token_in: TokenId::WETH,
            token_out: TokenId(1),
            amount_in: amt * E18,
            // Sometimes an impossible guard: must revert cleanly.
            min_amount_out: amt * E18 * min_pct / 50,
        })
    });
    let transfer = (1u64..8, 1u128..=10).prop_map(|(to, v)| Action::Transfer {
        to: Address::from_index(to),
        value: eth(v),
    });
    let deposit = (1u128..=100).prop_map(|amt| Action::Deposit {
        platform: LendingPlatformId::AaveV2,
        token: TokenId(1),
        amount: amt * E18,
    });
    let borrow = (1u128..=20).prop_map(|amt| Action::Borrow {
        platform: LendingPlatformId::AaveV2,
        token: TokenId::WETH,
        amount: amt * E18,
    });
    let flash = (1u128..=500, any::<bool>()).prop_map(|(amt, good)| Action::FlashLoan {
        platform: LendingPlatformId::DyDx,
        token: TokenId::WETH,
        amount: amt * E18,
        inner: if good {
            vec![] // trivially repayable (fee covered by own balance)
        } else {
            // Swaps the borrowed funds away: must roll back cleanly.
            vec![Action::Swap(SwapCall {
                pool: PoolId {
                    exchange: mev_types::ExchangeId::UniswapV2,
                    index: 1,
                },
                token_in: TokenId::WETH,
                token_out: TokenId(1),
                amount_in: amt * E18 * 2,
                min_amount_out: 0,
            })]
        },
    });
    let other = (21_000u64..500_000).prop_map(|g| Action::Other { gas: Gas(g) });
    prop_oneof![swap, transfer, deposit, borrow, flash, other]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_blocks_conserve_wei_and_nonces(
        actions in proptest::collection::vec((0u64..8, action_strategy(), 1u128..200), 1..40),
        base_fee_gwei in 0u128..60,
    ) {
        let mut w = world();
        let mut nonces = std::collections::HashMap::new();
        let txs: Vec<Transaction> = actions
            .into_iter()
            .map(|(from_idx, action, price)| {
                let from = Address::from_index(from_idx);
                let nonce = {
                    let e = nonces.entry(from).or_insert(0u64);
                    let n = *e;
                    *e += 1;
                    n
                };
                Transaction::new(
                    from,
                    nonce,
                    TxFee::Legacy { gas_price: gwei(price) },
                    Gas(2_000_000),
                    action,
                    Wei::ZERO,
                    None,
                )
            })
            .collect();
        let before = w.state.total_wei();
        let spec = BlockSpec {
            number: 1,
            parent_hash: H256::zero(),
            timestamp: 1_600_000_000,
            miner: Address::from_index(99),
            base_fee: gwei(base_fee_gwei),
            gas_limit: DEFAULT_GAS_LIMIT,
        };
        let built = build_block(&mut w, &spec, &txs);

        // Wei conservation: total after = total before + block issuance.
        let after = w.state.total_wei();
        prop_assert_eq!(after, before + mev_chain::BLOCK_REWARD);

        // Nonces strictly increase per sender along the block.
        let mut seen: std::collections::HashMap<Address, u64> = std::collections::HashMap::new();
        for tx in &built.block.transactions {
            if let Some(&prev) = seen.get(&tx.from) {
                prop_assert!(tx.nonce > prev, "nonce regression for {}", tx.from);
            }
            seen.insert(tx.from, tx.nonce);
        }

        // Receipts pair off with included transactions, in order.
        prop_assert_eq!(built.receipts.len(), built.block.transactions.len());
        for (i, (tx, r)) in built.block.transactions.iter().zip(&built.receipts).enumerate() {
            prop_assert_eq!(r.tx_hash, tx.hash());
            prop_assert_eq!(r.index as usize, i);
        }

        // Gas accounting: header total equals receipt sum and respects the limit.
        let gas_sum: u64 = built.receipts.iter().map(|r| r.gas_used.0).sum();
        prop_assert_eq!(built.block.header.gas_used.0, gas_sum);
        prop_assert!(built.block.header.gas_used <= spec.gas_limit);
    }

    #[test]
    fn pool_k_never_decreases_through_executor(
        swaps in proptest::collection::vec((0u64..8, 1u128..=80), 1..25),
    ) {
        let mut w = world();
        let pool_id = PoolId { exchange: mev_types::ExchangeId::UniswapV2, index: 1 };
        let k_before = {
            let p = w.dex.pool(pool_id).unwrap();
            mev_types::U256::mul_u128_u128(
                p.reserve_of(TokenId::WETH).unwrap(),
                p.reserve_of(TokenId(1)).unwrap(),
            )
        };
        let txs: Vec<Transaction> = swaps
            .iter()
            .enumerate()
            .map(|(i, &(from_idx, amt))| {
                Transaction::new(
                    Address::from_index(from_idx),
                    // Nonce per sender: count prior occurrences.
                    swaps[..i].iter().filter(|(f, _)| *f == from_idx).count() as u64,
                    TxFee::Legacy { gas_price: gwei(10) },
                    Gas(200_000),
                    Action::Swap(SwapCall {
                        pool: pool_id,
                        token_in: if i % 2 == 0 { TokenId::WETH } else { TokenId(1) },
                        token_out: if i % 2 == 0 { TokenId(1) } else { TokenId::WETH },
                        amount_in: amt * E18,
                        min_amount_out: 0,
                    }),
                    Wei::ZERO,
                    None,
                )
            })
            .collect();
        let spec = BlockSpec {
            number: 1,
            parent_hash: H256::zero(),
            timestamp: 1_600_000_000,
            miner: Address::from_index(99),
            base_fee: Wei::ZERO,
            gas_limit: DEFAULT_GAS_LIMIT,
        };
        build_block(&mut w, &spec, &txs);
        let p = w.dex.pool(pool_id).unwrap();
        let k_after = mev_types::U256::mul_u128_u128(
            p.reserve_of(TokenId::WETH).unwrap(),
            p.reserve_of(TokenId(1)).unwrap(),
        );
        prop_assert!(k_after >= k_before, "fees only grow k");
    }
}
