//! # mev-flashbots
//!
//! The Flashbots private-pool infrastructure (§2.5): searcher bundles,
//! the relay (validation, DoS filtering, ban enforcement), MEV-geth-style
//! bundle selection for miners, the public blocks API that the paper's
//! measurement pipeline downloads (§3.3), and the *other* private pools
//! of §6 — Eden-like multi-miner channels, the defunct Taichi network,
//! and single-miner self-extraction channels.

pub mod api;
pub mod bundle;
pub mod miner;
pub mod pools;
pub mod relay;

pub use api::{BlocksApi, BundleRecord, FlashbotsBlockRecord};
pub use bundle::{Bundle, BundleId, BundleType};
pub use miner::{assemble_candidates, select_bundles, SelectionConfig};
pub use pools::{PrivateChannel, PrivateSubmission, StakeBook};
pub use relay::{BundleOutcome, Relay, RelayError};
