//! Flashbots bundles: immutable, atomic, ordered transaction sets with a
//! miner fee paid via coinbase transfers (§2.5).

use mev_types::{Address, Gas, Transaction, TxHash, Wei};

/// Identifier assigned by the relay on submission.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct BundleId(pub u64);

/// The three bundle types the paper observes (§2.5, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BundleType {
    /// Mining-pool payout batches (1.9 % of bundles).
    MinerPayout,
    /// Introduced by the miner itself, never broadcast (7.6 %).
    Rogue,
    /// The standard searcher dataflow (90.5 %).
    Flashbots,
}

impl std::fmt::Display for BundleType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BundleType::MinerPayout => "miner-payout",
            BundleType::Rogue => "rogue",
            BundleType::Flashbots => "flashbots",
        };
        write!(f, "{s}")
    }
}

/// An immutable bundle: either all transactions execute in order, or the
/// bundle is not included at all. A miner who equivocates (reorders,
/// drops, or splices a bundle) is banned (§2.5).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bundle {
    /// Relay-assigned id; `BundleId(0)` until submission.
    pub id: BundleId,
    /// The submitting searcher (or miner, for rogue/payout bundles).
    pub searcher: Address,
    pub bundle_type: BundleType,
    /// Ordered transactions; immutable once submitted.
    pub txs: Vec<Transaction>,
    /// The block the searcher targets.
    pub target_block: u64,
}

impl Bundle {
    pub fn new(
        searcher: Address,
        bundle_type: BundleType,
        txs: Vec<Transaction>,
        target_block: u64,
    ) -> Bundle {
        Bundle {
            id: BundleId(0),
            searcher,
            bundle_type,
            txs,
            target_block,
        }
    }

    /// Total gas limit of the bundle.
    pub fn gas(&self) -> Gas {
        self.txs.iter().map(|t| t.gas_limit).sum()
    }

    /// Total direct coinbase payment offered.
    pub fn total_tip(&self) -> Wei {
        self.txs.iter().map(|t| t.coinbase_tip).sum()
    }

    /// Declared miner value: coinbase tips plus bid-priced gas fees.
    /// This is the score MEV-geth ranks bundles by (per gas).
    pub fn declared_value(&self, base_fee: Wei) -> Wei {
        let fees: Wei = self
            .txs
            .iter()
            .map(|t| t.gas_limit.cost(t.fee.miner_tip_per_gas(base_fee)))
            .sum();
        self.total_tip().saturating_add(fees)
    }

    /// Value per gas — the greedy-packing key.
    pub fn value_per_gas(&self, base_fee: Wei) -> Wei {
        let g = self.gas().0.max(1) as u128;
        Wei(self.declared_value(base_fee).0 / g)
    }

    /// Hashes of the bundle's transactions, in order.
    pub fn tx_hashes(&self) -> Vec<TxHash> {
        self.txs.iter().map(|t| t.hash()).collect()
    }

    pub fn len(&self) -> usize {
        self.txs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{eth, gwei, Action, TxFee};

    fn tx(nonce: u64, gas: u64, price: Wei, tip: Wei) -> Transaction {
        Transaction::new(
            Address::from_index(1),
            nonce,
            TxFee::Legacy { gas_price: price },
            Gas(gas),
            Action::Other { gas: Gas(gas) },
            tip,
            None,
        )
    }

    #[test]
    fn gas_and_tip_sum() {
        let b = Bundle::new(
            Address::from_index(1),
            BundleType::Flashbots,
            vec![
                tx(0, 100_000, gwei(0), eth(1)),
                tx(1, 50_000, gwei(0), eth(2)),
            ],
            10,
        );
        assert_eq!(b.gas(), Gas(150_000));
        assert_eq!(b.total_tip(), eth(3));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn declared_value_includes_gas_fees() {
        let b = Bundle::new(
            Address::from_index(1),
            BundleType::Flashbots,
            vec![tx(0, 100_000, gwei(50), eth(1))],
            10,
        );
        // Legacy fee: whole gas price is miner tip.
        let expected = eth(1) + Gas(100_000).cost(gwei(50));
        assert_eq!(b.declared_value(Wei::ZERO), expected);
        assert_eq!(b.value_per_gas(Wei::ZERO), Wei(expected.0 / 100_000));
    }

    #[test]
    fn tx_hashes_in_order() {
        let t0 = tx(0, 21_000, gwei(1), Wei::ZERO);
        let t1 = tx(1, 21_000, gwei(1), Wei::ZERO);
        let b = Bundle::new(
            Address::from_index(1),
            BundleType::Rogue,
            vec![t0.clone(), t1.clone()],
            5,
        );
        assert_eq!(b.tx_hashes(), vec![t0.hash(), t1.hash()]);
    }

    #[test]
    fn type_display() {
        assert_eq!(BundleType::MinerPayout.to_string(), "miner-payout");
        assert_eq!(BundleType::Flashbots.to_string(), "flashbots");
    }
}
