//! MEV-geth bundle selection and block-candidate assembly.
//!
//! A Flashbots miner "mines whatever subset of bundles is most profitable
//! for them" (§2.5): bundles are ranked by declared value per gas and
//! greedily packed into a gas budget at the top of the block, followed by
//! private-channel submissions, then the public mempool by fee.

use crate::bundle::Bundle;
use crate::pools::PrivateSubmission;
use mev_types::{Gas, Transaction, TxHash, Wei};
use std::collections::HashSet;

/// Knobs for bundle selection.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Gas budget reserved for bundles (rest of the block is public).
    pub bundle_gas_budget: Gas,
    /// Hard cap on bundles per block (the paper's observed max is 42).
    pub max_bundles: usize,
    /// Minimum declared value per gas to bother including.
    pub min_value_per_gas: Wei,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            bundle_gas_budget: Gas(10_000_000),
            max_bundles: 42,
            min_value_per_gas: Wei(1),
        }
    }
}

/// Greedily select the most profitable bundle subset.
///
/// Sort by value-per-gas descending (deterministic tie-break on the first
/// tx hash), then take while budget and count allow. Returns the chosen
/// bundles in inclusion order.
pub fn select_bundles(
    mut bundles: Vec<Bundle>,
    base_fee: Wei,
    cfg: &SelectionConfig,
) -> Vec<Bundle> {
    bundles.retain(|b| !b.is_empty() && b.value_per_gas(base_fee) >= cfg.min_value_per_gas);
    bundles.sort_by(|a, b| {
        b.value_per_gas(base_fee)
            .cmp(&a.value_per_gas(base_fee))
            .then_with(|| {
                a.tx_hashes()
                    .first()
                    .cloned()
                    .cmp(&b.tx_hashes().first().cloned())
            })
    });
    let mut chosen = Vec::new();
    let mut gas = Gas::ZERO;
    let mut seen_senders_nonces: HashSet<(mev_types::Address, u64)> = HashSet::new();
    for b in bundles {
        if chosen.len() >= cfg.max_bundles {
            break;
        }
        if gas + b.gas() > cfg.bundle_gas_budget {
            continue;
        }
        // Two bundles carrying the same (sender, nonce) cannot both land.
        if b.txs
            .iter()
            .any(|t| seen_senders_nonces.contains(&(t.from, t.nonce)))
        {
            continue;
        }
        for t in &b.txs {
            seen_senders_nonces.insert((t.from, t.nonce));
        }
        gas += b.gas();
        chosen.push(b);
    }
    chosen
}

/// Assemble the full candidate ordering for a block:
///
/// 1. selected bundles, each contiguous and in order, at the top;
/// 2. private-channel submissions — a submission that wraps a public
///    victim places `[front…, victim, back…]` as a unit;
/// 3. remaining public transactions in the given (fee-sorted) order.
///
/// Duplicate hashes are dropped (a public tx already consumed as a wrapped
/// victim, or a bundle tx also gossiped publicly).
pub fn assemble_candidates(
    bundles: &[Bundle],
    private_subs: &[PrivateSubmission],
    public_txs: &[Transaction],
) -> Vec<Transaction> {
    let mut out: Vec<Transaction> = Vec::new();
    let mut used: HashSet<TxHash> = HashSet::new();
    let push = |out: &mut Vec<Transaction>, used: &mut HashSet<TxHash>, t: &Transaction| {
        if used.insert(t.hash()) {
            out.push(t.clone());
        }
    };

    for b in bundles {
        for t in &b.txs {
            push(&mut out, &mut used, t);
        }
    }

    let by_hash: std::collections::HashMap<TxHash, &Transaction> =
        public_txs.iter().map(|t| (t.hash(), t)).collect();

    for sub in private_subs {
        match sub.wrap_victim.and_then(|v| by_hash.get(&v)) {
            Some(victim) => {
                // Sandwich shape: first half before the victim, rest after.
                let mid = sub.txs.len() / 2;
                for t in &sub.txs[..mid] {
                    push(&mut out, &mut used, t);
                }
                push(&mut out, &mut used, victim);
                for t in &sub.txs[mid..] {
                    push(&mut out, &mut used, t);
                }
            }
            None => {
                if sub.wrap_victim.is_some() {
                    // Victim not visible to this miner: the sandwich is
                    // pointless, skip the submission entirely.
                    continue;
                }
                for t in &sub.txs {
                    push(&mut out, &mut used, t);
                }
            }
        }
    }

    for t in public_txs {
        push(&mut out, &mut used, t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::BundleType;
    use mev_types::{eth, gwei, Action, Address, TxFee};

    fn tx(from: u64, nonce: u64, gas: u64, tip: Wei) -> Transaction {
        Transaction::new(
            Address::from_index(from),
            nonce,
            TxFee::Legacy { gas_price: gwei(1) },
            Gas(gas),
            Action::Other { gas: Gas(gas) },
            tip,
            None,
        )
    }

    fn bundle(searcher: u64, txs: Vec<Transaction>) -> Bundle {
        Bundle::new(
            Address::from_index(searcher),
            BundleType::Flashbots,
            txs,
            10,
        )
    }

    #[test]
    fn selects_by_value_per_gas() {
        let cheap = bundle(1, vec![tx(1, 0, 100_000, eth(1) / 100)]);
        let rich = bundle(2, vec![tx(2, 0, 100_000, eth(1))]);
        let chosen = select_bundles(
            vec![cheap, rich.clone()],
            Wei::ZERO,
            &SelectionConfig::default(),
        );
        assert_eq!(chosen[0].searcher, rich.searcher);
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn respects_gas_budget() {
        let cfg = SelectionConfig {
            bundle_gas_budget: Gas(150_000),
            ..Default::default()
        };
        let b1 = bundle(1, vec![tx(1, 0, 100_000, eth(2))]);
        let b2 = bundle(2, vec![tx(2, 0, 100_000, eth(1))]);
        let b3 = bundle(3, vec![tx(3, 0, 40_000, eth(1) / 2)]);
        let chosen = select_bundles(vec![b1, b2, b3], Wei::ZERO, &cfg);
        // b1 takes 100k; b2 doesn't fit; b3 (40k) does.
        assert_eq!(chosen.len(), 2);
        assert_eq!(chosen[0].searcher, Address::from_index(1));
        assert_eq!(chosen[1].searcher, Address::from_index(3));
    }

    #[test]
    fn respects_max_bundles() {
        let cfg = SelectionConfig {
            max_bundles: 2,
            ..Default::default()
        };
        let bundles: Vec<_> = (1..=5)
            .map(|i| bundle(i, vec![tx(i, 0, 21_000, eth(1))]))
            .collect();
        assert_eq!(select_bundles(bundles, Wei::ZERO, &cfg).len(), 2);
    }

    #[test]
    fn drops_conflicting_nonces() {
        // Two bundles spending the same (sender, nonce): only one lands.
        let shared = tx(1, 0, 21_000, eth(1));
        let b1 = bundle(1, vec![shared.clone()]);
        let b2 = bundle(2, vec![shared]);
        assert_eq!(
            select_bundles(vec![b1, b2], Wei::ZERO, &SelectionConfig::default()).len(),
            1
        );
    }

    #[test]
    fn drops_dust_bundles() {
        let cfg = SelectionConfig {
            min_value_per_gas: gwei(2),
            ..Default::default()
        };
        // 1 gwei/gas from fees + a 1-wei tip: below the 2 gwei/gas floor.
        let dust = bundle(1, vec![tx(1, 0, 21_000, Wei(1))]);
        assert!(select_bundles(vec![dust], Wei::ZERO, &cfg).is_empty());
    }

    #[test]
    fn assemble_puts_bundles_first() {
        let b = bundle(
            1,
            vec![tx(1, 0, 21_000, eth(1)), tx(1, 1, 21_000, Wei::ZERO)],
        );
        let public = vec![tx(5, 0, 21_000, Wei::ZERO)];
        let ordered = assemble_candidates(&[b.clone()], &[], &public);
        assert_eq!(ordered.len(), 3);
        assert_eq!(ordered[0].hash(), b.txs[0].hash());
        assert_eq!(ordered[1].hash(), b.txs[1].hash());
        assert_eq!(ordered[2].hash(), public[0].hash());
    }

    #[test]
    fn assemble_wraps_victim() {
        let victim = tx(9, 0, 21_000, Wei::ZERO);
        let front = tx(2, 0, 21_000, Wei::ZERO);
        let back = tx(2, 1, 21_000, Wei::ZERO);
        let sub = PrivateSubmission {
            searcher: Address::from_index(2),
            txs: vec![front.clone(), back.clone()],
            wrap_victim: Some(victim.hash()),
        };
        let public = vec![tx(5, 0, 21_000, Wei::ZERO), victim.clone()];
        let ordered = assemble_candidates(&[], &[sub], &public);
        let pos = |h: TxHash| ordered.iter().position(|t| t.hash() == h).unwrap();
        assert!(pos(front.hash()) < pos(victim.hash()));
        assert!(pos(victim.hash()) < pos(back.hash()));
        // Victim appears exactly once.
        assert_eq!(
            ordered.iter().filter(|t| t.hash() == victim.hash()).count(),
            1
        );
    }

    #[test]
    fn assemble_skips_sandwich_with_missing_victim() {
        let ghost = tx(9, 0, 21_000, Wei::ZERO);
        let sub = PrivateSubmission {
            searcher: Address::from_index(2),
            txs: vec![tx(2, 0, 21_000, Wei::ZERO), tx(2, 1, 21_000, Wei::ZERO)],
            wrap_victim: Some(ghost.hash()),
        };
        let ordered = assemble_candidates(&[], &[sub], &[]);
        assert!(ordered.is_empty(), "sandwich without its victim is dropped");
    }

    #[test]
    fn assemble_dedupes_bundle_tx_also_public() {
        let shared = tx(1, 0, 21_000, eth(1));
        let b = bundle(1, vec![shared.clone()]);
        let ordered = assemble_candidates(&[b], &[], &[shared.clone()]);
        assert_eq!(ordered.len(), 1);
    }
}
