//! Non-Flashbots private pools (§6).
//!
//! The paper identifies three shapes of private MEV channel besides
//! Flashbots: multi-miner private pools (Eden Network), defunct pools
//! (Taichi, dead October 15th 2021), and single-miner self-extraction
//! (the Flexpool and F2Pool accounts of §6.3). All three reduce to a
//! [`PrivateChannel`]: a set of member miners, an activity window, and a
//! queue of private submissions that never touch the public gossip layer.

use mev_types::{Address, Transaction, TxHash};

/// A private submission: transactions delivered directly to a miner,
/// optionally wrapping a public victim (the private-sandwich shape the
/// §6.1 heuristic detects: front and back private, victim public).
#[derive(Debug, Clone, PartialEq)]
pub struct PrivateSubmission {
    pub searcher: Address,
    /// Ordered private transactions.
    pub txs: Vec<Transaction>,
    /// If set, the miner orders the submission around this public tx.
    pub wrap_victim: Option<TxHash>,
}

/// A private pool: Eden-like (many members), Taichi-like (bounded
/// lifetime) or a single-miner self-channel.
#[derive(Debug, Clone)]
pub struct PrivateChannel {
    pub name: String,
    /// Miners that receive this channel's submissions.
    members: Vec<Address>,
    /// Active block range (inclusive start, exclusive end).
    pub active_from: u64,
    pub active_until: u64,
    queue: Vec<PrivateSubmission>,
    /// Total submissions accepted over the channel's lifetime.
    pub accepted: u64,
}

impl PrivateChannel {
    /// A channel alive for `[from, until)`.
    pub fn new(
        name: impl Into<String>,
        members: Vec<Address>,
        from: u64,
        until: u64,
    ) -> PrivateChannel {
        assert!(!members.is_empty(), "channel needs at least one miner");
        assert!(from < until, "empty activity window");
        PrivateChannel {
            name: name.into(),
            members,
            active_from: from,
            active_until: until,
            queue: Vec::new(),
            accepted: 0,
        }
    }

    /// A single-miner self-extraction channel (never expires).
    pub fn self_channel(miner: Address, from: u64) -> PrivateChannel {
        PrivateChannel::new(
            format!("self:{}", miner.short()),
            vec![miner],
            from,
            u64::MAX,
        )
    }

    /// Is the channel alive at `block`?
    pub fn is_active(&self, block: u64) -> bool {
        (self.active_from..self.active_until).contains(&block)
    }

    /// Is `miner` a member?
    pub fn is_member(&self, miner: Address) -> bool {
        self.members.contains(&miner)
    }

    pub fn members(&self) -> &[Address] {
        &self.members
    }

    /// Submit privately; rejected outside the activity window.
    pub fn submit(&mut self, sub: PrivateSubmission, block: u64) -> bool {
        if !self.is_active(block) {
            return false;
        }
        self.queue.push(sub);
        self.accepted += 1;
        true
    }

    /// Member miner `miner` drains the queue while building at `block`.
    /// Non-members and inactive channels get nothing.
    pub fn drain_for(&mut self, miner: Address, block: u64) -> Vec<PrivateSubmission> {
        if !self.is_active(block) || !self.is_member(miner) {
            return Vec::new();
        }
        std::mem::take(&mut self.queue)
    }

    /// Pending submissions.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Eden-Network-style staked priority (the Eden whitepaper's core
/// mechanism): submitters stake tokens; when a member miner drains the
/// channel, submissions are delivered highest-stake-first, so priority is
/// bought with capital rather than gas. This is the concrete form of
/// "expensive infrastructure" access the paper's Goal 2 worries about.
#[derive(Debug, Clone, Default)]
pub struct StakeBook {
    stakes: std::collections::HashMap<Address, u128>,
}

impl StakeBook {
    pub fn new() -> StakeBook {
        StakeBook::default()
    }

    /// Add stake for a searcher.
    pub fn stake(&mut self, who: Address, amount: u128) {
        let staked = self.stakes.entry(who).or_default();
        *staked = staked.saturating_add(amount);
    }

    /// Withdraw stake; returns the amount actually released.
    pub fn unstake(&mut self, who: Address, amount: u128) -> u128 {
        let e = self.stakes.entry(who).or_default();
        let released = amount.min(*e);
        *e -= released;
        released
    }

    pub fn stake_of(&self, who: Address) -> u128 {
        self.stakes.get(&who).copied().unwrap_or(0)
    }

    /// Order submissions by the submitter's stake, descending; ties broken
    /// by the first tx hash for determinism.
    pub fn prioritise(&self, mut subs: Vec<PrivateSubmission>) -> Vec<PrivateSubmission> {
        subs.sort_by(|a, b| {
            self.stake_of(b.searcher)
                .cmp(&self.stake_of(a.searcher))
                .then_with(|| {
                    let ha = a.txs.first().map(|t| t.hash());
                    let hb = b.txs.first().map(|t| t.hash());
                    ha.cmp(&hb)
                })
        });
        subs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{gwei, Action, Gas, TxFee, Wei};

    fn tx(from: u64, nonce: u64) -> Transaction {
        Transaction::new(
            Address::from_index(from),
            nonce,
            TxFee::Legacy { gas_price: gwei(1) },
            Gas(21_000),
            Action::Other { gas: Gas(21_000) },
            Wei::ZERO,
            None,
        )
    }

    fn sub(searcher: u64) -> PrivateSubmission {
        PrivateSubmission {
            searcher: Address::from_index(searcher),
            txs: vec![tx(searcher, 0)],
            wrap_victim: None,
        }
    }

    #[test]
    fn activity_window_enforced() {
        let mut c = PrivateChannel::new("taichi", vec![Address::from_index(1)], 100, 200);
        assert!(!c.submit(sub(5), 99));
        assert!(c.submit(sub(5), 100));
        assert!(c.submit(sub(5), 199));
        assert!(!c.submit(sub(5), 200), "defunct channel rejects");
        assert_eq!(c.accepted, 2);
    }

    #[test]
    fn only_members_drain() {
        let m1 = Address::from_index(1);
        let outsider = Address::from_index(9);
        let mut c = PrivateChannel::new("eden", vec![m1], 0, u64::MAX);
        c.submit(sub(5), 10);
        assert!(c.drain_for(outsider, 10).is_empty());
        assert_eq!(c.pending(), 1);
        assert_eq!(c.drain_for(m1, 10).len(), 1);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn drain_outside_window_yields_nothing() {
        let m1 = Address::from_index(1);
        let mut c = PrivateChannel::new("taichi", vec![m1], 0, 100);
        c.submit(sub(5), 50);
        assert!(c.drain_for(m1, 100).is_empty(), "channel already defunct");
        assert_eq!(c.pending(), 1, "submission stranded, never mined");
    }

    #[test]
    fn self_channel_single_member() {
        let m = Address::from_index(3);
        let c = PrivateChannel::self_channel(m, 10);
        assert!(c.is_member(m));
        assert_eq!(c.members().len(), 1);
        assert!(c.is_active(10));
        assert!(c.is_active(u64::MAX - 1));
        assert!(!c.is_active(9));
        assert!(c.name.starts_with("self:"));
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_membership_panics() {
        PrivateChannel::new("x", vec![], 0, 10);
    }

    #[test]
    fn stake_book_accounting() {
        let mut book = StakeBook::new();
        let a = Address::from_index(1);
        book.stake(a, 100);
        book.stake(a, 50);
        assert_eq!(book.stake_of(a), 150);
        assert_eq!(book.unstake(a, 60), 60);
        assert_eq!(book.stake_of(a), 90);
        assert_eq!(
            book.unstake(a, 1_000),
            90,
            "cannot withdraw more than staked"
        );
        assert_eq!(book.stake_of(a), 0);
        assert_eq!(book.stake_of(Address::from_index(9)), 0);
    }

    #[test]
    fn staked_priority_orders_submissions() {
        let mut book = StakeBook::new();
        let whale = Address::from_index(1);
        let minnow = Address::from_index(2);
        book.stake(whale, 1_000_000);
        book.stake(minnow, 10);
        let subs = vec![
            PrivateSubmission {
                searcher: minnow,
                txs: vec![tx(2, 0)],
                wrap_victim: None,
            },
            PrivateSubmission {
                searcher: whale,
                txs: vec![tx(1, 0)],
                wrap_victim: None,
            },
        ];
        let ordered = book.prioritise(subs);
        assert_eq!(ordered[0].searcher, whale, "capital buys priority");
        assert_eq!(ordered[1].searcher, minnow);
    }

    #[test]
    fn staked_priority_is_deterministic_on_ties() {
        let book = StakeBook::new(); // everyone unstaked: all ties
        let subs: Vec<PrivateSubmission> = (0..5)
            .map(|i| PrivateSubmission {
                searcher: Address::from_index(i),
                txs: vec![tx(i, 0)],
                wrap_victim: None,
            })
            .collect();
        let a = book.prioritise(subs.clone());
        let b = book.prioritise(subs);
        assert_eq!(a, b);
    }
}
