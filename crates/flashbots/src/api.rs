//! The public Flashbots blocks API (§3.3): the dataset of every mined
//! Flashbots block, its bundles, miner, and miner reward — what the paper
//! downloads from blocks.flashbots.net and joins against chain data to
//! label transactions as Flashbots transactions.

use crate::bundle::{BundleId, BundleType};
use mev_types::{Address, TxHash, Wei};
use std::collections::{HashMap, HashSet};

/// One bundle as recorded by the API.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BundleRecord {
    pub bundle_id: BundleId,
    pub bundle_type: BundleType,
    pub searcher: Address,
    pub tx_hashes: Vec<TxHash>,
    /// Coinbase payment the bundle delivered.
    pub tip: Wei,
}

/// One Flashbots block as recorded by the API.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlashbotsBlockRecord {
    pub block_number: u64,
    pub miner: Address,
    /// Total miner reward attributable to Flashbots bundles.
    pub miner_reward: Wei,
    pub bundles: Vec<BundleRecord>,
}

/// The queryable dataset.
///
/// Only `records` is serialised; the lookup indices are rebuilt inside
/// `Deserialize` (via the `BlocksApiWire` shadow struct), so a freshly
/// deserialised API answers queries immediately — no `reindex()` call
/// required.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
#[serde(from = "BlocksApiWire")]
pub struct BlocksApi {
    records: Vec<FlashbotsBlockRecord>,
    #[serde(skip)]
    by_number: HashMap<u64, usize>,
    #[serde(skip)]
    tx_set: HashSet<TxHash>,
}

/// The on-disk shape of [`BlocksApi`]: just the records. Deserialising
/// through it reindexes automatically.
#[derive(serde::Deserialize)]
struct BlocksApiWire {
    records: Vec<FlashbotsBlockRecord>,
}

impl From<BlocksApiWire> for BlocksApi {
    fn from(wire: BlocksApiWire) -> BlocksApi {
        let mut api = BlocksApi {
            records: wire.records,
            by_number: HashMap::new(),
            tx_set: HashSet::new(),
        };
        api.reindex();
        api
    }
}

impl BlocksApi {
    pub fn new() -> BlocksApi {
        BlocksApi::default()
    }

    /// Record a mined Flashbots block. Blocks with no bundles are not
    /// Flashbots blocks and must not be recorded.
    pub fn record(&mut self, record: FlashbotsBlockRecord) {
        assert!(
            !record.bundles.is_empty(),
            "a Flashbots block has at least one bundle"
        );
        assert!(
            !self.by_number.contains_key(&record.block_number),
            "duplicate block {}",
            record.block_number
        );
        for b in &record.bundles {
            self.tx_set.extend(b.tx_hashes.iter().copied());
        }
        self.by_number
            .insert(record.block_number, self.records.len());
        self.records.push(record);
    }

    /// Was this block mined as a Flashbots block?
    pub fn is_flashbots_block(&self, number: u64) -> bool {
        self.by_number.contains_key(&number)
    }

    /// Was this transaction part of a mined bundle? (The paper's labeling
    /// step: "used the transactions included in those blocks to identify
    /// and mark transactions as Flashbots transactions".)
    pub fn is_flashbots_tx(&self, hash: TxHash) -> bool {
        self.tx_set.contains(&hash)
    }

    /// Fetch one block's record.
    pub fn block(&self, number: u64) -> Option<&FlashbotsBlockRecord> {
        self.by_number.get(&number).map(|&i| &self.records[i])
    }

    /// All records in mining order.
    pub fn iter(&self) -> impl Iterator<Item = &FlashbotsBlockRecord> {
        self.records.iter()
    }

    /// Number of Flashbots blocks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bundles across all blocks.
    pub fn total_bundles(&self) -> usize {
        self.records.iter().map(|r| r.bundles.len()).sum()
    }

    /// Rebuild the lookup indices after deserialisation.
    pub fn reindex(&mut self) {
        self.by_number.clear();
        self.tx_set.clear();
        for (i, r) in self.records.iter().enumerate() {
            self.by_number.insert(r.block_number, i);
            for b in &r.bundles {
                self.tx_set.extend(b.tx_hashes.iter().copied());
            }
        }
    }

    /// Bundle-count distribution per block (for §4.1's statistics).
    pub fn bundles_per_block(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.bundles.len()).collect()
    }

    /// Transaction-count distribution per bundle.
    pub fn txs_per_bundle(&self) -> Vec<usize> {
        self.records
            .iter()
            .flat_map(|r| r.bundles.iter().map(|b| b.tx_hashes.len()))
            .collect()
    }

    /// Bundle counts by type.
    pub fn type_counts(&self) -> (usize, usize, usize) {
        let mut payout = 0;
        let mut rogue = 0;
        let mut flashbots = 0;
        for r in &self.records {
            for b in &r.bundles {
                match b.bundle_type {
                    BundleType::MinerPayout => payout += 1,
                    BundleType::Rogue => rogue += 1,
                    BundleType::Flashbots => flashbots += 1,
                }
            }
        }
        (payout, rogue, flashbots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{eth, H256};

    fn hash(i: u8) -> TxHash {
        let mut b = [0u8; 32];
        b[0] = i;
        H256(b)
    }

    fn record(number: u64, bundles: Vec<(BundleType, Vec<TxHash>)>) -> FlashbotsBlockRecord {
        FlashbotsBlockRecord {
            block_number: number,
            miner: Address::from_index(1),
            miner_reward: eth(1),
            bundles: bundles
                .into_iter()
                .enumerate()
                .map(|(i, (t, hashes))| BundleRecord {
                    bundle_id: BundleId(i as u64 + 1),
                    bundle_type: t,
                    searcher: Address::from_index(50),
                    tx_hashes: hashes,
                    tip: eth(1) / 10,
                })
                .collect(),
        }
    }

    #[test]
    fn record_and_query() {
        let mut api = BlocksApi::new();
        api.record(record(
            100,
            vec![(BundleType::Flashbots, vec![hash(1), hash(2)])],
        ));
        assert!(api.is_flashbots_block(100));
        assert!(!api.is_flashbots_block(101));
        assert!(api.is_flashbots_tx(hash(1)));
        assert!(!api.is_flashbots_tx(hash(9)));
        assert_eq!(api.len(), 1);
        assert_eq!(api.total_bundles(), 1);
        assert_eq!(api.block(100).unwrap().miner_reward, eth(1));
    }

    #[test]
    #[should_panic(expected = "at least one bundle")]
    fn empty_block_rejected() {
        BlocksApi::new().record(record(100, vec![]));
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_block_rejected() {
        let mut api = BlocksApi::new();
        api.record(record(100, vec![(BundleType::Flashbots, vec![hash(1)])]));
        api.record(record(100, vec![(BundleType::Flashbots, vec![hash(2)])]));
    }

    #[test]
    fn distributions() {
        let mut api = BlocksApi::new();
        api.record(record(1, vec![(BundleType::Flashbots, vec![hash(1)])]));
        api.record(record(
            2,
            vec![
                (BundleType::Flashbots, vec![hash(2), hash(3)]),
                (BundleType::MinerPayout, vec![hash(4)]),
                (BundleType::Rogue, vec![hash(5)]),
            ],
        ));
        assert_eq!(api.bundles_per_block(), vec![1, 3]);
        assert_eq!(api.txs_per_bundle(), vec![1, 2, 1, 1]);
        assert_eq!(api.type_counts(), (1, 1, 2));
    }

    #[test]
    fn serde_roundtrip_reindexes_automatically() {
        let mut api = BlocksApi::new();
        api.record(record(
            7,
            vec![(BundleType::Flashbots, vec![hash(1), hash(2)])],
        ));
        api.record(record(9, vec![(BundleType::Rogue, vec![hash(3)])]));
        let json = serde_json::to_string(&api).unwrap();
        let back: BlocksApi = serde_json::from_str(&json).unwrap();
        // No manual reindex(): Deserialize rebuilt the lookups.
        assert!(back.is_flashbots_block(7));
        assert!(back.is_flashbots_block(9));
        assert!(!back.is_flashbots_block(8));
        assert!(back.is_flashbots_tx(hash(1)));
        assert!(back.is_flashbots_tx(hash(3)));
        assert!(!back.is_flashbots_tx(hash(4)));
        assert_eq!(back.block(9).unwrap().bundles.len(), 1);
        // record() keeps working on the reindexed instance.
        let mut grown = back;
        grown.record(record(11, vec![(BundleType::Flashbots, vec![hash(5)])]));
        assert!(grown.is_flashbots_tx(hash(5)));
    }
}
