//! The Flashbots relay: collects bundles from searchers, validates them,
//! forwards them to participating miners, and enforces the one rule that
//! holds the system together — a miner that equivocates on a bundle is
//! permanently banned (§2.5).
//!
//! The paper notes only one relay exists, run by Flashbots itself; this
//! implementation is likewise a single logical relay.

use crate::bundle::{Bundle, BundleId};
use mev_types::{Address, Block, TxHash};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Submission failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayError {
    /// The submitting searcher is banned.
    SearcherBanned,
    /// Empty bundles are rejected (DoS filtering).
    EmptyBundle,
    /// Bundle exceeds the relay's max size.
    TooLarge { max: usize },
    /// Target block is already in the past.
    StaleTarget { head: u64 },
}

impl std::fmt::Display for RelayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelayError::SearcherBanned => write!(f, "searcher is banned"),
            RelayError::EmptyBundle => write!(f, "empty bundle"),
            RelayError::TooLarge { max } => write!(f, "bundle exceeds {max} txs"),
            RelayError::StaleTarget { head } => write!(f, "target block behind head {head}"),
        }
    }
}

impl std::error::Error for RelayError {}

/// Result of auditing a mined block against the bundles sent to its miner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleOutcome {
    /// Bundle appears contiguously and in order.
    Honoured,
    /// Bundle not included at all (allowed — miners may skip bundles).
    Skipped,
    /// Bundle partially included, reordered, or interleaved: equivocation.
    Equivocated,
}

/// The single Flashbots relay.
#[derive(Debug, Clone, Default)]
pub struct Relay {
    next_id: u64,
    /// Pending bundles keyed by target block.
    queue: HashMap<u64, Vec<Bundle>>,
    banned_searchers: HashSet<Address>,
    banned_miners: HashSet<Address>,
    /// Miners registered to receive bundles. Ordered so
    /// [`active_miners`](Relay::active_miners) iterates deterministically.
    miners: BTreeSet<Address>,
    /// Submission counter (for dashboard-style stats).
    pub submitted: u64,
    /// Maximum bundle size accepted. The largest bundle the paper observed
    /// held 700 transactions (an F2Pool payout), so the cap sits above that.
    pub max_bundle_txs: usize,
}

impl Relay {
    pub fn new() -> Relay {
        Relay {
            max_bundle_txs: 1024,
            ..Relay::default()
        }
    }

    /// Register a miner (the Flashbots web-portal application step).
    pub fn register_miner(&mut self, miner: Address) {
        self.miners.insert(miner);
    }

    /// Is the miner registered and in good standing?
    pub fn miner_active(&self, miner: Address) -> bool {
        self.miners.contains(&miner) && !self.banned_miners.contains(&miner)
    }

    /// Registered miners in good standing.
    pub fn active_miners(&self) -> impl Iterator<Item = Address> + '_ {
        self.miners
            .iter()
            .copied()
            .filter(|m| !self.banned_miners.contains(m))
    }

    /// Submit a bundle targeting `bundle.target_block`.
    pub fn submit(&mut self, mut bundle: Bundle, head: u64) -> Result<BundleId, RelayError> {
        if self.banned_searchers.contains(&bundle.searcher) {
            return Err(RelayError::SearcherBanned);
        }
        if bundle.is_empty() {
            return Err(RelayError::EmptyBundle);
        }
        if bundle.len() > self.max_bundle_txs {
            return Err(RelayError::TooLarge {
                max: self.max_bundle_txs,
            });
        }
        if bundle.target_block <= head {
            return Err(RelayError::StaleTarget { head });
        }
        self.next_id += 1;
        bundle.id = BundleId(self.next_id);
        let id = bundle.id;
        self.queue
            .entry(bundle.target_block)
            .or_default()
            .push(bundle);
        self.submitted += 1;
        Ok(id)
    }

    /// Bundles available for `block`, for a registered miner. Returns a
    /// clone — the relay keeps the originals for post-block auditing.
    pub fn bundles_for(&self, miner: Address, block: u64) -> Vec<Bundle> {
        if !self.miner_active(miner) {
            return Vec::new();
        }
        self.queue.get(&block).cloned().unwrap_or_default()
    }

    /// Audit a mined block: classify each bundle targeted at this height,
    /// and ban the miner if any bundle was equivocated on.
    pub fn audit_block(&mut self, block: &Block) -> Vec<(BundleId, BundleOutcome)> {
        let number = block.header.number;
        let Some(bundles) = self.queue.get(&number) else {
            return Vec::new();
        };
        let block_hashes: Vec<TxHash> = block.transactions.iter().map(|t| t.hash()).collect();
        let mut outcomes = Vec::new();
        let mut equivocated = false;
        for b in bundles {
            let outcome = classify_inclusion(&b.tx_hashes(), &block_hashes);
            if outcome == BundleOutcome::Equivocated {
                equivocated = true;
            }
            outcomes.push((b.id, outcome));
        }
        if equivocated {
            self.banned_miners.insert(block.header.miner);
        }
        outcomes
    }

    /// Drop bundles for heights at or below `head` (they can no longer land).
    pub fn expire(&mut self, head: u64) {
        // lint:allow(determinism: retain's predicate only reads the key — visit order cannot reach the result)
        self.queue.retain(|&target, _| target > head);
    }

    /// Ban a searcher outright.
    pub fn ban_searcher(&mut self, searcher: Address) {
        self.banned_searchers.insert(searcher);
    }

    pub fn is_miner_banned(&self, miner: Address) -> bool {
        self.banned_miners.contains(&miner)
    }

    /// Pending bundle count across all target heights.
    pub fn pending(&self) -> usize {
        // lint:allow(determinism: iteration order cannot reach the output — commutative usize sum)
        self.queue.values().map(Vec::len).sum()
    }
}

/// Is `needle` a contiguous, in-order subsequence of `haystack`?
///
/// A bundle counts as *included* only when **all** of its transactions are
/// present; then it must be contiguous and in order or the miner
/// equivocated. Partial presence is `Skipped`, not equivocation: bundles
/// routinely contain transactions that are also public (a sandwich's
/// victim), and those land on their own when the bundle loses the
/// auction — the miner never saw the bundle as a unit.
fn classify_inclusion(needle: &[TxHash], haystack: &[TxHash]) -> BundleOutcome {
    let all_present = needle.iter().all(|h| haystack.contains(h));
    if !all_present {
        return BundleOutcome::Skipped;
    }
    for window in haystack.windows(needle.len()) {
        if window == needle {
            return BundleOutcome::Honoured;
        }
    }
    BundleOutcome::Equivocated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::BundleType;
    use mev_types::{gwei, Action, BlockHeader, Gas, Transaction, TxFee, Wei, H256};

    fn tx(from: u64, nonce: u64) -> Transaction {
        Transaction::new(
            Address::from_index(from),
            nonce,
            TxFee::Legacy { gas_price: gwei(1) },
            Gas(21_000),
            Action::Other { gas: Gas(21_000) },
            Wei::ZERO,
            None,
        )
    }

    fn bundle(searcher: u64, target: u64, txs: Vec<Transaction>) -> Bundle {
        Bundle::new(
            Address::from_index(searcher),
            BundleType::Flashbots,
            txs,
            target,
        )
    }

    fn block_with(miner: Address, number: u64, txs: Vec<Transaction>) -> Block {
        Block {
            header: BlockHeader {
                number,
                parent_hash: H256::zero(),
                miner,
                timestamp: 0,
                gas_used: Gas::ZERO,
                gas_limit: Gas(30_000_000),
                base_fee: Wei::ZERO,
            },
            transactions: txs,
        }
    }

    #[test]
    fn submit_assigns_ids_and_queues() {
        let mut r = Relay::new();
        let id1 = r.submit(bundle(1, 10, vec![tx(1, 0)]), 5).unwrap();
        let id2 = r.submit(bundle(2, 10, vec![tx(2, 0)]), 5).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(r.pending(), 2);
        assert_eq!(r.submitted, 2);
    }

    #[test]
    fn validation_rejections() {
        let mut r = Relay::new();
        assert_eq!(
            r.submit(bundle(1, 10, vec![]), 5),
            Err(RelayError::EmptyBundle)
        );
        assert_eq!(
            r.submit(bundle(1, 4, vec![tx(1, 0)]), 5),
            Err(RelayError::StaleTarget { head: 5 })
        );
        r.max_bundle_txs = 1;
        assert_eq!(
            r.submit(bundle(1, 10, vec![tx(1, 0), tx(1, 1)]), 5),
            Err(RelayError::TooLarge { max: 1 })
        );
        r.ban_searcher(Address::from_index(1));
        assert_eq!(
            r.submit(bundle(1, 10, vec![tx(1, 0)]), 5),
            Err(RelayError::SearcherBanned)
        );
    }

    #[test]
    fn only_registered_miners_receive_bundles() {
        let mut r = Relay::new();
        let miner = Address::from_index(99);
        r.submit(bundle(1, 10, vec![tx(1, 0)]), 5).unwrap();
        assert!(r.bundles_for(miner, 10).is_empty());
        r.register_miner(miner);
        assert_eq!(r.bundles_for(miner, 10).len(), 1);
        assert!(r.bundles_for(miner, 11).is_empty(), "wrong height");
    }

    #[test]
    fn audit_honours_contiguous_inclusion() {
        let mut r = Relay::new();
        let miner = Address::from_index(99);
        r.register_miner(miner);
        let b = bundle(1, 10, vec![tx(1, 0), tx(1, 1)]);
        let btxs = b.txs.clone();
        r.submit(b, 5).unwrap();
        // Bundle at top, a public tx after.
        let blk = block_with(miner, 10, vec![btxs[0].clone(), btxs[1].clone(), tx(7, 0)]);
        let outcomes = r.audit_block(&blk);
        assert_eq!(outcomes[0].1, BundleOutcome::Honoured);
        assert!(!r.is_miner_banned(miner));
    }

    #[test]
    fn audit_detects_reordering_and_bans() {
        let mut r = Relay::new();
        let miner = Address::from_index(99);
        r.register_miner(miner);
        let b = bundle(1, 10, vec![tx(1, 0), tx(1, 1)]);
        let btxs = b.txs.clone();
        r.submit(b, 5).unwrap();
        // Reordered bundle txs.
        let blk = block_with(miner, 10, vec![btxs[1].clone(), btxs[0].clone()]);
        let outcomes = r.audit_block(&blk);
        assert_eq!(outcomes[0].1, BundleOutcome::Equivocated);
        assert!(r.is_miner_banned(miner));
        assert!(!r.miner_active(miner));
        assert!(r.bundles_for(miner, 11).is_empty(), "banned miner cut off");
    }

    #[test]
    fn audit_detects_splicing() {
        let mut r = Relay::new();
        let miner = Address::from_index(99);
        r.register_miner(miner);
        let b = bundle(1, 10, vec![tx(1, 0), tx(1, 1)]);
        let btxs = b.txs.clone();
        r.submit(b, 5).unwrap();
        // A foreign tx interleaved inside the bundle.
        let blk = block_with(miner, 10, vec![btxs[0].clone(), tx(7, 0), btxs[1].clone()]);
        assert_eq!(r.audit_block(&blk)[0].1, BundleOutcome::Equivocated);
    }

    #[test]
    fn audit_allows_skipping() {
        let mut r = Relay::new();
        let miner = Address::from_index(99);
        r.register_miner(miner);
        r.submit(bundle(1, 10, vec![tx(1, 0)]), 5).unwrap();
        let blk = block_with(miner, 10, vec![tx(7, 0)]);
        assert_eq!(r.audit_block(&blk)[0].1, BundleOutcome::Skipped);
        assert!(!r.is_miner_banned(miner));
    }

    #[test]
    fn expire_drops_stale_heights() {
        let mut r = Relay::new();
        r.submit(bundle(1, 10, vec![tx(1, 0)]), 5).unwrap();
        r.submit(bundle(2, 12, vec![tx(2, 0)]), 5).unwrap();
        r.expire(10);
        assert_eq!(r.pending(), 1);
    }
}
