//! Property tests over bundle selection and block auditing: the greedy
//! packer never exceeds its budgets or duplicates nonces, and the audit
//! classification is consistent with how the block was actually built.

use mev_flashbots::{
    assemble_candidates, select_bundles, Bundle, BundleOutcome, BundleType, Relay, SelectionConfig,
};
use mev_types::{gwei, Action, Address, Block, BlockHeader, Gas, Transaction, TxFee, Wei, H256};
use proptest::prelude::*;

fn tx(from: u64, nonce: u64, gas: u64, tip_milli: u64) -> Transaction {
    Transaction::new(
        Address::from_index(from),
        nonce,
        TxFee::Legacy { gas_price: gwei(1) },
        Gas(gas),
        Action::Other { gas: Gas(gas) },
        Wei(tip_milli as u128 * 10u128.pow(15)),
        None,
    )
}

/// Strategy: a pool of bundles with random sizes, senders, gas, and tips.
fn bundles_strategy() -> impl Strategy<Value = Vec<Bundle>> {
    proptest::collection::vec(
        (1u64..6, 0u64..3, 1usize..4, 30_000u64..400_000, 0u64..2_000),
        1..20,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (from, nonce0, n_txs, gas, tip))| {
                let txs: Vec<Transaction> = (0..n_txs)
                    .map(|k| tx(from, nonce0 + k as u64, gas, tip))
                    .collect();
                Bundle::new(
                    Address::from_index(100 + i as u64),
                    BundleType::Flashbots,
                    txs,
                    10,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn selection_respects_budgets_and_nonces(
        bundles in bundles_strategy(),
        budget_k in 100u64..20_000,
        max_bundles in 1usize..10,
    ) {
        let cfg = SelectionConfig {
            bundle_gas_budget: Gas(budget_k * 1_000),
            max_bundles,
            min_value_per_gas: Wei(1),
        };
        let chosen = select_bundles(bundles.clone(), Wei::ZERO, &cfg);
        // Count cap.
        prop_assert!(chosen.len() <= max_bundles);
        // Gas budget.
        let gas: u64 = chosen.iter().map(|b| b.gas().0).sum();
        prop_assert!(gas <= budget_k * 1_000);
        // No duplicated (sender, nonce) across chosen bundles.
        let mut seen = std::collections::HashSet::new();
        for b in &chosen {
            for t in &b.txs {
                prop_assert!(seen.insert((t.from, t.nonce)), "nonce conflict slipped through");
            }
        }
        // Value ordering: each chosen bundle is at least as valuable per
        // gas as any skipped bundle that would have fit in its place is
        // NOT guaranteed by greedy packing, but the first chosen bundle
        // must be the global per-gas maximum among those that fit alone.
        if let Some(first) = chosen.first() {
            let first_v = first.value_per_gas(Wei::ZERO);
            for b in &bundles {
                if b.gas() <= Gas(budget_k * 1_000) {
                    prop_assert!(
                        b.value_per_gas(Wei::ZERO) <= first_v
                            || b.txs.iter().any(|t| first.txs.iter().any(|f| f.from == t.from && f.nonce == t.nonce)),
                        "a strictly better lone bundle was skipped"
                    );
                }
            }
        }
    }

    #[test]
    fn honoured_bundles_audit_clean(bundles in bundles_strategy()) {
        // Build a block that includes the selected bundles contiguously;
        // the audit must classify every selected bundle Honoured and never
        // ban the miner.
        let cfg = SelectionConfig::default();
        let mut relay = Relay::new();
        let miner = Address::from_index(999);
        relay.register_miner(miner);
        let mut ids = Vec::new();
        for b in bundles {
            if let Ok(id) = relay.submit(b, 9) {
                ids.push(id);
            }
        }
        let available = relay.bundles_for(miner, 10);
        let chosen = select_bundles(available, Wei::ZERO, &cfg);
        let txs = assemble_candidates(&chosen, &[], &[]);
        let block = Block {
            header: BlockHeader {
                number: 10,
                parent_hash: H256::zero(),
                miner,
                timestamp: 0,
                gas_used: Gas::ZERO,
                gas_limit: Gas(30_000_000),
                base_fee: Wei::ZERO,
            },
            transactions: txs,
        };
        let outcomes = relay.audit_block(&block);
        prop_assert!(!relay.is_miner_banned(miner), "honest assembly must never ban");
        let chosen_ids: std::collections::HashSet<_> = chosen.iter().map(|b| b.id).collect();
        for (id, outcome) in outcomes {
            if chosen_ids.contains(&id) {
                // Chosen bundles whose txs all made it in must be honoured.
                // (assemble dedupes shared (sender, nonce) txs across
                // bundles, which select_bundles already prevents.)
                prop_assert_eq!(&outcome, &BundleOutcome::Honoured, "chosen bundle {:?}", id);
            }
        }
    }
}
