//! Lending platforms with collateralised positions and fixed-spread
//! liquidation, following the model in the paper's §2.2.2: a loan whose
//! collateral value falls below the liquidation threshold is released for
//! liquidation on a first-come-first-served basis, with the liquidator
//! repaying debt in exchange for discounted collateral.

use mev_dex::PriceOracle;
use mev_types::{Address, LendingPlatformId, TokenId, U256};
use std::collections::{BTreeMap, HashMap};

const BPS: u128 = 10_000;
const E18: u128 = 10u128.pow(18);

/// Risk parameters for one platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlatformConfig {
    /// Max borrow value as a fraction of collateral value (bps).
    pub collateral_factor_bps: u32,
    /// Health threshold: a position is liquidatable when
    /// `debt_value > collateral_value · threshold` (bps).
    pub liquidation_threshold_bps: u32,
    /// Liquidator's discount on seized collateral (bps over par).
    pub liquidation_bonus_bps: u32,
    /// Max share of the debt repayable in one liquidation (bps).
    pub close_factor_bps: u32,
    /// Flash-loan fee (bps); `None` if the platform has no flash loans.
    pub flash_loan_fee_bps: Option<u32>,
}

impl PlatformConfig {
    /// Per-platform defaults loosely following the real protocols.
    pub fn default_for(id: LendingPlatformId) -> PlatformConfig {
        match id {
            LendingPlatformId::AaveV1 => PlatformConfig {
                collateral_factor_bps: 7_500,
                liquidation_threshold_bps: 8_000,
                liquidation_bonus_bps: 500,
                close_factor_bps: 5_000,
                flash_loan_fee_bps: Some(9), // 0.09 %
            },
            LendingPlatformId::AaveV2 => PlatformConfig {
                collateral_factor_bps: 7_500,
                liquidation_threshold_bps: 8_250,
                liquidation_bonus_bps: 500,
                close_factor_bps: 5_000,
                flash_loan_fee_bps: Some(9),
            },
            LendingPlatformId::Compound => PlatformConfig {
                collateral_factor_bps: 7_500,
                liquidation_threshold_bps: 7_500,
                liquidation_bonus_bps: 800,
                close_factor_bps: 5_000,
                flash_loan_fee_bps: None,
            },
            LendingPlatformId::DyDx => PlatformConfig {
                collateral_factor_bps: 7_500,
                liquidation_threshold_bps: 7_500,
                liquidation_bonus_bps: 500,
                close_factor_bps: 10_000,
                flash_loan_fee_bps: Some(2), // dYdX's ~free flash loans
            },
        }
    }
}

/// A user's position on one platform.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Position {
    /// Collateral per token, base units.
    pub collateral: BTreeMap<TokenId, u128>,
    /// Debt per token, base units.
    pub debt: BTreeMap<TokenId, u128>,
}

impl Position {
    pub fn is_empty(&self) -> bool {
        self.collateral.values().all(|&v| v == 0) && self.debt.values().all(|&v| v == 0)
    }

    /// Total collateral value in wei at oracle prices.
    pub fn collateral_value(&self, oracle: &PriceOracle) -> Option<u128> {
        value_of(&self.collateral, oracle)
    }

    /// Total debt value in wei at oracle prices.
    pub fn debt_value(&self, oracle: &PriceOracle) -> Option<u128> {
        value_of(&self.debt, oracle)
    }
}

fn value_of(amounts: &BTreeMap<TokenId, u128>, oracle: &PriceOracle) -> Option<u128> {
    let mut total: u128 = 0;
    for (&t, &amt) in amounts {
        total = total.checked_add(oracle.to_wei(t, amt)?)?;
    }
    Some(total)
}

/// Errors from lending operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LendingError {
    /// The platform has insufficient pooled liquidity.
    InsufficientLiquidity,
    /// Borrow would push the position past its collateral factor.
    Undercollateralised,
    /// The caller holds no such collateral/debt.
    NoPosition,
    /// Liquidation attempted on a healthy position.
    PositionHealthy,
    /// Repay amount exceeds the close factor limit.
    ExceedsCloseFactor,
    /// No oracle price for a token involved.
    NoPrice,
    /// The platform does not offer flash loans.
    NoFlashLoans,
}

impl std::fmt::Display for LendingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LendingError::InsufficientLiquidity => "insufficient pool liquidity",
            LendingError::Undercollateralised => "borrow exceeds collateral factor",
            LendingError::NoPosition => "no such position",
            LendingError::PositionHealthy => "position is healthy",
            LendingError::ExceedsCloseFactor => "repay exceeds close factor",
            LendingError::NoPrice => "missing oracle price",
            LendingError::NoFlashLoans => "platform has no flash loans",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for LendingError {}

/// A liquidation opportunity surfaced by a scan.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UnhealthyLoan {
    pub platform: LendingPlatformId,
    pub borrower: Address,
    /// The largest debt token (what a liquidator repays).
    pub debt_token: TokenId,
    /// Max repayable under the close factor, debt-token base units.
    pub max_repay: u128,
    /// The largest collateral token (what a liquidator seizes).
    pub collateral_token: TokenId,
    /// Health factor scaled 1e18 (< 1e18 means liquidatable).
    pub health_e18: u128,
}

/// Outcome of a successful liquidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiquidationOutcome {
    pub debt_repaid: u128,
    pub collateral_token: TokenId,
    pub collateral_seized: u128,
}

/// One lending platform's full state.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Platform {
    pub id: LendingPlatformId,
    pub address: Address,
    pub config: PlatformConfig,
    /// Pooled liquidity available to borrow/flash-loan, per token.
    pub liquidity: BTreeMap<TokenId, u128>,
    /// Open positions by borrower.
    pub positions: HashMap<Address, Position>,
}

impl Platform {
    pub fn new(id: LendingPlatformId) -> Platform {
        Platform {
            id,
            address: platform_address(id),
            config: PlatformConfig::default_for(id),
            liquidity: BTreeMap::new(),
            positions: HashMap::new(),
        }
    }

    /// Seed pooled liquidity (lenders' deposits, abstracted).
    pub fn seed_liquidity(&mut self, token: TokenId, amount: u128) {
        *self.liquidity.entry(token).or_default() += amount;
    }

    /// Available liquidity for a token.
    pub fn available(&self, token: TokenId) -> u128 {
        self.liquidity.get(&token).copied().unwrap_or(0)
    }

    /// Deposit collateral. The caller must have already escrowed the tokens
    /// (`mev-chain` moves balances).
    pub fn deposit(&mut self, user: Address, token: TokenId, amount: u128) {
        let pos = self.positions.entry(user).or_default();
        *pos.collateral.entry(token).or_default() += amount;
    }

    /// Borrow against collateral. Fails if it would breach the collateral
    /// factor or drain pool liquidity.
    pub fn borrow(
        &mut self,
        user: Address,
        token: TokenId,
        amount: u128,
        oracle: &PriceOracle,
    ) -> Result<(), LendingError> {
        if self.available(token) < amount {
            return Err(LendingError::InsufficientLiquidity);
        }
        let pos = self.positions.entry(user).or_default();
        let coll_value = pos.collateral_value(oracle).ok_or(LendingError::NoPrice)?;
        let debt_value = pos.debt_value(oracle).ok_or(LendingError::NoPrice)?;
        let new_debt = oracle.to_wei(token, amount).ok_or(LendingError::NoPrice)?;
        let max_debt = mul_bps(coll_value, self.config.collateral_factor_bps);
        if debt_value + new_debt > max_debt {
            return Err(LendingError::Undercollateralised);
        }
        *pos.debt.entry(token).or_default() += amount;
        *self.liquidity.get_mut(&token).expect("checked above") -= amount;
        Ok(())
    }

    /// Repay debt (possibly partially). Returns the amount actually applied.
    pub fn repay(
        &mut self,
        user: Address,
        token: TokenId,
        amount: u128,
    ) -> Result<u128, LendingError> {
        let pos = self
            .positions
            .get_mut(&user)
            .ok_or(LendingError::NoPosition)?;
        let debt = pos.debt.get_mut(&token).ok_or(LendingError::NoPosition)?;
        let applied = amount.min(*debt);
        *debt -= applied;
        *self.liquidity.entry(token).or_default() += applied;
        Ok(applied)
    }

    /// Health factor scaled 1e18: `collateral·threshold / debt`.
    /// `None` when the user has no debt (infinitely healthy) or no price.
    pub fn health_e18(&self, user: Address, oracle: &PriceOracle) -> Option<u128> {
        let pos = self.positions.get(&user)?;
        let debt = pos.debt_value(oracle)?;
        if debt == 0 {
            return None;
        }
        let coll = pos.collateral_value(oracle)?;
        let adjusted = mul_bps(coll, self.config.liquidation_threshold_bps);
        U256::from(adjusted)
            .mul_u128(E18)
            .div_u128(debt)
            .checked_u128()
    }

    /// Fixed-spread liquidation: repay up to `close_factor` of the debt,
    /// seize collateral worth `repaid · (1 + bonus)`.
    pub fn liquidate(
        &mut self,
        borrower: Address,
        debt_token: TokenId,
        repay_amount: u128,
        oracle: &PriceOracle,
    ) -> Result<LiquidationOutcome, LendingError> {
        let health = self
            .health_e18(borrower, oracle)
            .ok_or(LendingError::NoPosition)?;
        if health >= E18 {
            return Err(LendingError::PositionHealthy);
        }
        let pos = self
            .positions
            .get_mut(&borrower)
            .ok_or(LendingError::NoPosition)?;
        let debt = *pos.debt.get(&debt_token).ok_or(LendingError::NoPosition)?;
        if debt == 0 {
            return Err(LendingError::NoPosition);
        }
        let max_repay = mul_bps(debt, self.config.close_factor_bps);
        if repay_amount > max_repay {
            return Err(LendingError::ExceedsCloseFactor);
        }
        // Pick the borrower's largest collateral by value.
        let (coll_token, coll_held) = pos
            .collateral
            .iter()
            .filter(|(_, &amt)| amt > 0)
            .max_by_key(|(&t, &amt)| oracle.to_wei(t, amt).unwrap_or(0))
            .map(|(&t, &amt)| (t, amt))
            .ok_or(LendingError::NoPosition)?;
        let repay_value = oracle
            .to_wei(debt_token, repay_amount)
            .ok_or(LendingError::NoPrice)?;
        let seize_value = mul_bps(repay_value, 10_000 + self.config.liquidation_bonus_bps);
        let coll_price = oracle.price(coll_token).ok_or(LendingError::NoPrice)?;
        let seize_amount = U256::from(seize_value)
            .mul_u128(E18)
            .div_u128(coll_price)
            .as_u128()
            .min(coll_held);
        // Apply.
        *pos.debt.get_mut(&debt_token).expect("checked") -= repay_amount;
        *pos.collateral.get_mut(&coll_token).expect("checked") -= seize_amount;
        *self.liquidity.entry(debt_token).or_default() += repay_amount;
        Ok(LiquidationOutcome {
            debt_repaid: repay_amount,
            collateral_token: coll_token,
            collateral_seized: seize_amount,
        })
    }

    /// Flash-loan fee for `amount`, or an error if unsupported/illiquid.
    pub fn flash_loan_fee(&self, token: TokenId, amount: u128) -> Result<u128, LendingError> {
        let fee_bps = self
            .config
            .flash_loan_fee_bps
            .ok_or(LendingError::NoFlashLoans)?;
        if self.available(token) < amount {
            return Err(LendingError::InsufficientLiquidity);
        }
        Ok(mul_bps(amount, fee_bps).max(1))
    }

    /// Scan for liquidatable positions (the passive strategy of §2.2.2).
    pub fn unhealthy_positions(&self, oracle: &PriceOracle) -> Vec<UnhealthyLoan> {
        let mut out = Vec::new();
        for (&user, pos) in &self.positions {
            let Some(health) = self.health_e18(user, oracle) else {
                continue;
            };
            if health >= E18 {
                continue;
            }
            let Some((&debt_token, &debt)) = pos
                .debt
                .iter()
                .filter(|(_, &amt)| amt > 0)
                .max_by_key(|(&t, &amt)| oracle.to_wei(t, amt).unwrap_or(0))
            else {
                continue;
            };
            let Some((&coll_token, _)) = pos
                .collateral
                .iter()
                .filter(|(_, &amt)| amt > 0)
                .max_by_key(|(&t, &amt)| oracle.to_wei(t, amt).unwrap_or(0))
            else {
                continue;
            };
            out.push(UnhealthyLoan {
                platform: self.id,
                borrower: user,
                debt_token,
                max_repay: mul_bps(debt, self.config.close_factor_bps),
                collateral_token: coll_token,
                health_e18: health,
            });
        }
        out.sort_by_key(|l| (l.health_e18, l.borrower));
        out
    }
}

/// All platforms together.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LendingState {
    platforms: HashMap<LendingPlatformId, Platform>,
}

impl LendingState {
    /// All four platforms, unseeded.
    pub fn new() -> LendingState {
        LendingState {
            platforms: LendingPlatformId::ALL
                .iter()
                .map(|&id| (id, Platform::new(id)))
                .collect(),
        }
    }

    pub fn platform(&self, id: LendingPlatformId) -> &Platform {
        &self.platforms[&id]
    }

    pub fn platform_mut(&mut self, id: LendingPlatformId) -> &mut Platform {
        self.platforms.get_mut(&id).expect("all platforms present")
    }

    pub fn platforms(&self) -> impl Iterator<Item = &Platform> {
        self.platforms.values()
    }

    /// Unhealthy loans across all platforms.
    pub fn unhealthy_positions(&self, oracle: &PriceOracle) -> Vec<UnhealthyLoan> {
        let mut out: Vec<_> = self
            .platforms
            .values()
            .flat_map(|p| p.unhealthy_positions(oracle))
            .collect();
        out.sort_by_key(|l| (l.health_e18, l.borrower));
        out
    }
}

impl Default for LendingState {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic platform "contract" address.
pub fn platform_address(id: LendingPlatformId) -> Address {
    Address::from_index(0x6000_0000_0000 + id as u64)
}

fn mul_bps(v: u128, bps: u32) -> u128 {
    U256::from(v).mul_u128(bps as u128).div_u128(BPS).as_u128()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_with(token: TokenId, price: u128) -> PriceOracle {
        let mut o = PriceOracle::new();
        o.update(token, 0, price);
        o
    }

    fn setup() -> (Platform, PriceOracle, Address) {
        let mut p = Platform::new(LendingPlatformId::AaveV2);
        p.seed_liquidity(TokenId::WETH, 1_000_000 * E18);
        let oracle = oracle_with(TokenId(1), 2 * E18); // 1 TKN1 = 2 WETH
        let user = Address::from_index(42);
        (p, oracle, user)
    }

    #[test]
    fn borrow_within_collateral_factor() {
        let (mut p, oracle, user) = setup();
        p.deposit(user, TokenId(1), 100 * E18); // 200 WETH collateral value
                                                // 75% factor ⇒ up to 150 WETH borrowable.
        assert!(p.borrow(user, TokenId::WETH, 150 * E18, &oracle).is_ok());
        assert_eq!(p.available(TokenId::WETH), 1_000_000 * E18 - 150 * E18);
    }

    #[test]
    fn borrow_beyond_factor_rejected() {
        let (mut p, oracle, user) = setup();
        p.deposit(user, TokenId(1), 100 * E18);
        assert_eq!(
            p.borrow(user, TokenId::WETH, 151 * E18, &oracle),
            Err(LendingError::Undercollateralised)
        );
    }

    #[test]
    fn borrow_more_than_liquidity_rejected() {
        let (mut p, oracle, user) = setup();
        p.deposit(user, TokenId(1), 10_000_000 * E18);
        assert_eq!(
            p.borrow(user, TokenId::WETH, 2_000_000 * E18, &oracle),
            Err(LendingError::InsufficientLiquidity)
        );
    }

    #[test]
    fn health_factor_tracks_price() {
        let (mut p, mut oracle, user) = setup();
        p.deposit(user, TokenId(1), 100 * E18);
        p.borrow(user, TokenId::WETH, 120 * E18, &oracle).unwrap();
        // coll 200 · 0.825 = 165; debt 120 ⇒ health 1.375.
        let h = p.health_e18(user, &oracle).unwrap();
        assert_eq!(h, 1_375 * E18 / 1000);
        // Price halves: coll 100 · 0.825 = 82.5 vs debt 120 ⇒ 0.6875.
        oracle.update(TokenId(1), 1, E18);
        let h2 = p.health_e18(user, &oracle).unwrap();
        assert!(h2 < E18);
        assert_eq!(h2, 6_875 * E18 / 10_000);
    }

    #[test]
    fn liquidation_only_when_unhealthy() {
        let (mut p, mut oracle, user) = setup();
        p.deposit(user, TokenId(1), 100 * E18);
        p.borrow(user, TokenId::WETH, 120 * E18, &oracle).unwrap();
        assert_eq!(
            p.liquidate(user, TokenId::WETH, 10 * E18, &oracle),
            Err(LendingError::PositionHealthy)
        );
        oracle.update(TokenId(1), 1, E18); // crash
        let out = p.liquidate(user, TokenId::WETH, 60 * E18, &oracle).unwrap();
        assert_eq!(out.debt_repaid, 60 * E18);
        assert_eq!(out.collateral_token, TokenId(1));
        // Seize value = 60 · 1.05 = 63 WETH = 63 TKN1 at price 1.
        assert_eq!(out.collateral_seized, 63 * E18);
    }

    #[test]
    fn close_factor_enforced() {
        let (mut p, mut oracle, user) = setup();
        p.deposit(user, TokenId(1), 100 * E18);
        p.borrow(user, TokenId::WETH, 120 * E18, &oracle).unwrap();
        oracle.update(TokenId(1), 1, E18);
        // Close factor 50% ⇒ max repay 60.
        assert_eq!(
            p.liquidate(user, TokenId::WETH, 61 * E18, &oracle),
            Err(LendingError::ExceedsCloseFactor)
        );
    }

    #[test]
    fn unhealthy_scan_finds_and_sorts() {
        let (mut p, mut oracle, _) = setup();
        oracle.update(TokenId(2), 0, 2 * E18);
        for (i, borrow) in [(1u64, 100 * E18), (2, 140 * E18)] {
            let u = Address::from_index(i);
            p.deposit(u, TokenId(1), 100 * E18);
            p.borrow(u, TokenId::WETH, borrow, &oracle).unwrap();
        }
        assert!(p.unhealthy_positions(&oracle).is_empty());
        oracle.update(TokenId(1), 1, E18);
        let loans = p.unhealthy_positions(&oracle);
        assert_eq!(loans.len(), 2);
        // The riskier loan (140 borrowed) sorts first.
        assert_eq!(loans[0].borrower, Address::from_index(2));
        assert!(loans[0].health_e18 < loans[1].health_e18);
        assert_eq!(loans[0].max_repay, 70 * E18);
    }

    #[test]
    fn repay_restores_liquidity_and_caps_at_debt() {
        let (mut p, oracle, user) = setup();
        p.deposit(user, TokenId(1), 100 * E18);
        p.borrow(user, TokenId::WETH, 100 * E18, &oracle).unwrap();
        let applied = p.repay(user, TokenId::WETH, 150 * E18).unwrap();
        assert_eq!(applied, 100 * E18);
        assert_eq!(p.available(TokenId::WETH), 1_000_000 * E18);
        assert_eq!(
            p.health_e18(user, &oracle),
            None,
            "no debt ⇒ no health factor"
        );
    }

    #[test]
    fn flash_loan_fees_per_platform() {
        let mut aave = Platform::new(LendingPlatformId::AaveV2);
        aave.seed_liquidity(TokenId::WETH, 1_000 * E18);
        assert_eq!(
            aave.flash_loan_fee(TokenId::WETH, 1_000 * E18).unwrap(),
            9 * E18 / 10
        );
        assert_eq!(
            aave.flash_loan_fee(TokenId::WETH, 1_001 * E18),
            Err(LendingError::InsufficientLiquidity)
        );
        let compound = Platform::new(LendingPlatformId::Compound);
        assert_eq!(
            compound.flash_loan_fee(TokenId::WETH, E18),
            Err(LendingError::NoFlashLoans)
        );
    }

    #[test]
    fn state_spans_all_platforms() {
        let s = LendingState::new();
        assert_eq!(s.platforms().count(), 4);
        assert_eq!(
            s.platform(LendingPlatformId::DyDx).id,
            LendingPlatformId::DyDx
        );
    }
}
