//! Auction-based liquidations (§2.2.2).
//!
//! The paper notes two liquidation mechanisms: fixed-spread (atomic,
//! first-come-first-served — the MEV target) and auction-based (multi-
//! transaction, hours long, and therefore *not* atomic enough for classic
//! MEV extraction). This module implements the auction variant so the
//! substrate is complete and so tests can demonstrate *why* the paper's
//! detector only targets fixed-spread liquidations.

use mev_types::{Address, LendingPlatformId, TokenId};
use std::collections::HashMap;

/// Errors from auction operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuctionError {
    /// No auction with that id.
    NotFound,
    /// Bid does not beat the current best.
    BidTooLow,
    /// Auction still open — cannot settle yet.
    StillOpen,
    /// Auction already settled.
    Settled,
}

impl std::fmt::Display for AuctionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AuctionError::NotFound => "auction not found",
            AuctionError::BidTooLow => "bid below current best",
            AuctionError::StillOpen => "auction still open",
            AuctionError::Settled => "auction already settled",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for AuctionError {}

/// A running collateral auction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Auction {
    pub id: u64,
    pub platform: LendingPlatformId,
    pub borrower: Address,
    pub collateral_token: TokenId,
    pub collateral_amount: u128,
    pub debt_token: TokenId,
    /// Minimum acceptable bid (the outstanding debt).
    pub reserve_bid: u128,
    /// Block at which bidding closes.
    pub closes_at_block: u64,
    pub best_bid: Option<(Address, u128)>,
    pub settled: bool,
}

/// The book of open and settled auctions.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct AuctionBook {
    next_id: u64,
    auctions: HashMap<u64, Auction>,
}

impl AuctionBook {
    pub fn new() -> AuctionBook {
        AuctionBook::default()
    }

    /// Open an auction; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        &mut self,
        platform: LendingPlatformId,
        borrower: Address,
        collateral_token: TokenId,
        collateral_amount: u128,
        debt_token: TokenId,
        reserve_bid: u128,
        current_block: u64,
        duration_blocks: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.auctions.insert(
            id,
            Auction {
                id,
                platform,
                borrower,
                collateral_token,
                collateral_amount,
                debt_token,
                reserve_bid,
                closes_at_block: current_block + duration_blocks,
                best_bid: None,
                settled: false,
            },
        );
        id
    }

    pub fn get(&self, id: u64) -> Option<&Auction> {
        self.auctions.get(&id)
    }

    /// Place a bid; must strictly beat the current best and meet the reserve.
    pub fn bid(&mut self, id: u64, bidder: Address, amount: u128) -> Result<(), AuctionError> {
        let a = self.auctions.get_mut(&id).ok_or(AuctionError::NotFound)?;
        if a.settled {
            return Err(AuctionError::Settled);
        }
        let floor = a
            .best_bid
            .map(|(_, b)| b)
            .unwrap_or(a.reserve_bid.saturating_sub(1));
        if amount <= floor {
            return Err(AuctionError::BidTooLow);
        }
        a.best_bid = Some((bidder, amount));
        Ok(())
    }

    /// Settle a closed auction; returns the winner if any bid met reserve.
    pub fn settle(
        &mut self,
        id: u64,
        current_block: u64,
    ) -> Result<Option<(Address, u128)>, AuctionError> {
        let a = self.auctions.get_mut(&id).ok_or(AuctionError::NotFound)?;
        if a.settled {
            return Err(AuctionError::Settled);
        }
        if current_block < a.closes_at_block {
            return Err(AuctionError::StillOpen);
        }
        a.settled = true;
        Ok(a.best_bid)
    }

    /// Auctions still accepting bids at `block`.
    pub fn open_auctions(&self, block: u64) -> impl Iterator<Item = &Auction> {
        self.auctions
            .values()
            .filter(move |a| !a.settled && block < a.closes_at_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E18: u128 = 10u128.pow(18);

    fn book_with_auction() -> (AuctionBook, u64) {
        let mut b = AuctionBook::new();
        let id = b.open(
            LendingPlatformId::Compound,
            Address::from_index(1),
            TokenId(1),
            100 * E18,
            TokenId::WETH,
            50 * E18,
            1000,
            100,
        );
        (b, id)
    }

    #[test]
    fn bids_must_escalate() {
        let (mut b, id) = book_with_auction();
        assert_eq!(
            b.bid(id, Address::from_index(2), 49 * E18),
            Err(AuctionError::BidTooLow)
        );
        b.bid(id, Address::from_index(2), 50 * E18).unwrap();
        assert_eq!(
            b.bid(id, Address::from_index(3), 50 * E18),
            Err(AuctionError::BidTooLow)
        );
        b.bid(id, Address::from_index(3), 51 * E18).unwrap();
        assert_eq!(
            b.get(id).unwrap().best_bid,
            Some((Address::from_index(3), 51 * E18))
        );
    }

    #[test]
    fn settle_only_after_close() {
        let (mut b, id) = book_with_auction();
        b.bid(id, Address::from_index(2), 60 * E18).unwrap();
        assert_eq!(b.settle(id, 1099), Err(AuctionError::StillOpen));
        let winner = b.settle(id, 1100).unwrap();
        assert_eq!(winner, Some((Address::from_index(2), 60 * E18)));
        assert_eq!(b.settle(id, 1101), Err(AuctionError::Settled));
        assert_eq!(
            b.bid(id, Address::from_index(3), 99 * E18),
            Err(AuctionError::Settled)
        );
    }

    #[test]
    fn settle_with_no_bids_returns_none() {
        let (mut b, id) = book_with_auction();
        assert_eq!(b.settle(id, 2000).unwrap(), None);
    }

    #[test]
    fn auction_is_not_atomic() {
        // The property the paper leans on (§2.2.2): an auction spans many
        // blocks, so a liquidation via auction cannot be captured in a
        // single frontrun — open_auctions stays non-empty across blocks.
        let (mut b, id) = book_with_auction();
        assert_eq!(b.open_auctions(1000).count(), 1);
        assert_eq!(b.open_auctions(1050).count(), 1);
        assert_eq!(b.open_auctions(1100).count(), 0);
        b.settle(id, 1100).unwrap();
    }

    #[test]
    fn missing_auction_errors() {
        let mut b = AuctionBook::new();
        assert_eq!(b.bid(99, Address::ZERO, 1), Err(AuctionError::NotFound));
        assert_eq!(b.settle(99, 0), Err(AuctionError::NotFound));
        assert!(b.get(99).is_none());
    }
}
