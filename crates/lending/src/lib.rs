//! # mev-lending
//!
//! Collateralised lending platforms — the substrate for the paper's
//! liquidation-MEV measurements (§2.2.2, §3.1.3) and flash loans (§2.3,
//! §3.4). Models Aave V1/V2, Compound (fixed-spread liquidation) and dYdX
//! (flash loans), with health-factor accounting against the `mev-dex`
//! price oracle, close factors, liquidation bonuses, and an auction-based
//! liquidation variant for completeness.
//!
//! Flash-loan *atomicity* (repay-or-revert) is provided by the execution
//! engine in `mev-chain` via world snapshots; this crate provides the
//! liquidity accounting and fee rules.

pub mod auction;
pub mod platform;

pub use auction::{Auction, AuctionBook, AuctionError};
pub use platform::{
    LendingError, LendingState, LiquidationOutcome, Platform, PlatformConfig, Position,
    UnhealthyLoan,
};
