//! `profile_sim` — calibration diagnostics: run the quick scenario,
//! print the Figure 8 subpopulations and the §5.2 loss rate, and time the
//! run. Used while tuning scenario parameters against the paper's
//! reference values (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p mev-bench --bin profile_sim
//! ```

fn main() {
    let t = std::time::Instant::now();
    let lab = mev_analysis::Lab::run(mev_sim::Scenario::quick());
    eprintln!(
        "quick scenario: {} blocks simulated + inspected in {:?}",
        lab.out.stats.blocks,
        t.elapsed()
    );
    eprintln!("stats: {:#?}", lab.out.stats);
    let f8 = lab.fig8();
    for (name, s) in [
        ("miners w/ FB   ", &f8.miners_flashbots),
        ("miners w/o FB  ", &f8.miners_non_flashbots),
        ("searchers w/ FB", &f8.searchers_flashbots),
        ("searchers w/o  ", &f8.searchers_non_flashbots),
    ] {
        eprintln!(
            "{name}: n={:<5} mean {:.4} ETH  median {:.4} ETH",
            s.count, s.mean_eth, s.median_eth
        );
    }
    let neg = lab.sec52();
    eprintln!(
        "§5.2: {} of {} FB sandwiches unprofitable ({:.2} %)",
        neg.negative,
        neg.total_flashbots,
        neg.share() * 100.0
    );
}
