//! Before/after detection throughput, emitted as JSON for
//! `BENCH_DETECTION.json`:
//!
//! ```sh
//! cargo run -p mev-bench --release --bin detect_throughput
//! cargo run -p mev-bench --release --bin detect_throughput -- --report runreport.json
//! ```
//!
//! Compares the seed's fixed-chunk strategy (re-decoding receipts per
//! detector) against the indexed worker-pool `Inspector`, and checks the
//! two produce identical detections. With `--report <path>`, the
//! `mev-obs` RunReport accumulated across all runs (worker histograms,
//! span timings, per-kind detection counters) is written as JSON.

use mev_bench::chunked_baseline;
use mev_core::{BlockIndex, Inspector};
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let report_path = args
        .windows(2)
        .find(|w| w[0] == "--report")
        .map(|w| w[1].clone());
    let out = mev_sim::Simulation::new(mev_sim::Scenario::quick()).run();
    let chain = &out.chain;
    let api = &out.blocks_api;
    let blocks = chain.iter().count();
    let txs: usize = chain.iter().map(|(b, _)| b.transactions.len()).sum();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);

    let baseline = chunked_baseline(chain, api);
    let pooled = Inspector::new(chain, api).run().expect("inspection");
    let identical = baseline.detections == pooled.detections;

    let reps = 5;
    let baseline_ms = time_ms(reps, || chunked_baseline(chain, api));
    let serial_ms = time_ms(reps, || {
        Inspector::new(chain, api).threads(1).run().unwrap()
    });
    let pool_ms = time_ms(reps, || Inspector::new(chain, api).run().unwrap());
    let index = Arc::new(BlockIndex::build(chain));
    let index_build_ms = time_ms(reps, || BlockIndex::build(chain));
    let prebuilt_ms = time_ms(reps, || {
        Inspector::new(chain, api)
            .with_index(index.clone())
            .run()
            .unwrap()
    });

    // The pipelined store path: ingest the same chain, then time the
    // prefetched decode and confirm it builds the identical index.
    let store_dir = mev_store::testutil::scratch_dir("detect-throughput-store");
    let mut writer = mev_store::StoreWriter::create(&store_dir, chain.timeline().clone(), 64)
        .expect("create store");
    writer.ingest(chain).expect("ingest chain");
    let store = mev_store::StoreReader::open(&store_dir).expect("open store");
    let store_index = BlockIndex::build_from_store(&store).expect("build from store");
    let store_index_identical = store_index == *index;
    let store_prefetch_ms = time_ms(reps, || BlockIndex::build_from_store(&store).unwrap());
    std::fs::remove_dir_all(&store_dir).ok();

    let (interned_addresses, interned_tx_hashes) = index.intern_stats();
    let parts = index.partition_stats();

    println!(
        "{{\n  \"scenario\": \"quick\",\n  \"blocks\": {blocks},\n  \"txs\": {txs},\n  \
         \"threads\": {threads},\n  \"chunked_baseline_ms\": {baseline_ms:.3},\n  \
         \"inspector_serial_ms\": {serial_ms:.3},\n  \"inspector_pool_ms\": {pool_ms:.3},\n  \
         \"index_build_ms\": {index_build_ms:.3},\n  \
         \"inspector_pool_prebuilt_index_ms\": {prebuilt_ms:.3},\n  \
         \"index_v2_build_ms\": {index_build_ms:.3},\n  \
         \"inspect_pool_v2_ms\": {prebuilt_ms:.3},\n  \
         \"store_prefetch_ms\": {store_prefetch_ms:.3},\n  \
         \"interned_addresses\": {interned_addresses},\n  \
         \"interned_tx_hashes\": {interned_tx_hashes},\n  \
         \"partition_swaps\": {},\n  \"partition_transfers\": {},\n  \
         \"partition_liquidations\": {},\n  \"partition_flash_loans\": {},\n  \
         \"speedup_pool_vs_baseline\": {:.3},\n  \
         \"speedup_prebuilt_vs_baseline\": {:.3},\n  \
         \"store_index_identical\": {store_index_identical},\n  \
         \"identical_detections\": {identical}\n}}",
        parts.swaps,
        parts.transfers,
        parts.liquidations,
        parts.flash_loans,
        baseline_ms / pool_ms,
        baseline_ms / prebuilt_ms,
    );
    assert!(identical, "baseline and Inspector detections diverged");
    assert!(
        store_index_identical,
        "store-built index diverged from the in-memory build"
    );

    if let Some(path) = report_path {
        let report = mev_obs::report();
        // Sanity: a populated report, not an empty shell.
        assert!(report.counter("inspector.runs").unwrap_or(0) > 0);
        assert!(report.histogram("inspector.worker_blocks").is_some());
        report
            .write_to(std::path::Path::new(&path))
            .expect("write RunReport");
        eprintln!("RunReport written to {path}");
    }
}
