//! Concurrent-client benchmark of the `mev-serve` HTTP API, emitted as
//! JSON for `BENCH_SERVE.json`:
//!
//! ```sh
//! cargo run -p mev-bench --release --bin serve_bench
//! cargo run -p mev-bench --release --bin serve_bench -- --clients 16 --requests 500
//! cargo run -p mev-bench --release --bin serve_bench -- --report serve-runreport.json
//! ```
//!
//! Simulates the quick scenario, ingests it into a scratch segmented
//! store, runs detection once to populate `/detections`, then drives
//! the server with N concurrent keep-alive clients (default 8, one
//! worker per client) over a mixed workload: selective postings-served
//! `/logs`, cursor-paged unselective `/logs`, rollup-served
//! `/aggregates`, round-robin `/blocks/{n}`, and `/detections`. Every
//! response is status-200-checked; per-request latencies are collected
//! exactly and reported as p50/p90/p99 alongside aggregate request
//! throughput. Before timing starts the bin asserts the warm selective
//! `/logs` body truthfully reports `"plan":"postings"` with
//! `"data_frames_read":0`, and `/aggregates` reports `"plan":"rollup"`.

use mev_core::Inspector;
use mev_serve::{ApiState, Client, ServeConfig, Server};
use mev_store::{LogFilter, StoreReader, StoreWriter};
use std::sync::Arc;
use std::time::Instant;

/// Exact percentile (nearest-rank on the sorted sample).
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank] as f64 / 1e3
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = arg(&args, "--clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(8);
    let requests_per_client: usize = arg(&args, "--requests")
        .map(|v| v.parse().expect("--requests takes a number"))
        .unwrap_or(200);
    let report_path = arg(&args, "--report");
    assert!(clients >= 2, "need at least 2 concurrent clients");

    // Fixture: quick scenario into a scratch store, detection once.
    let out = mev_sim::Simulation::new(mev_sim::Scenario::quick()).run();
    let chain = &out.chain;
    let dir = std::env::temp_dir().join(format!("flashpan-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 64).expect("create store");
    w.ingest(chain).expect("ingest");
    drop(w);
    let reader = Arc::new(
        StoreReader::open(&dir)
            .expect("open store")
            .with_segment_cache(8),
    );
    let dataset = Inspector::new(chain, &out.blocks_api)
        .run()
        .expect("inspect");
    let detections = dataset.detections.len();
    let genesis = reader.timeline().genesis_number;
    let head = reader.head_block().expect("head");
    let blocks = head - genesis + 1;

    // A hot address for the postings-served workload leg.
    let (first_page, _) = reader
        .get_logs_with_stats(&LogFilter::new().limit(1))
        .expect("probe");
    let hot_addr = first_page
        .entries
        .first()
        .map(|e| e.log.address)
        .expect("quick scenario emits logs");

    let state = ApiState::new(Arc::clone(&reader), dataset.detections);
    let server = Server::start(
        ServeConfig {
            workers: clients,
            queue_depth: clients * 4,
            ..ServeConfig::default()
        },
        state,
    )
    .expect("start server");
    let addr = server.addr();

    // Warm-up + truthfulness gate: the served stats must say what the
    // planner actually did.
    let mut probe = Client::connect(addr).expect("connect");
    let selective = format!("/logs?address={hot_addr}&limit=64");
    let warm = probe.get(&selective).expect("warm selective /logs");
    assert_eq!(warm.status, 200);
    assert!(
        warm.body.contains(r#""plan":"postings""#),
        "selective /logs must be postings-served: {}",
        warm.body
    );
    assert!(
        warm.body.contains(r#""data_frames_read":0"#),
        "postings-served /logs must not decode data frames: {}",
        warm.body
    );
    let agg = probe
        .get("/aggregates?group=kind")
        .expect("warm /aggregates");
    assert_eq!(agg.status, 200);
    assert!(
        agg.body.contains(r#""plan":"rollup""#),
        "whole-archive /aggregates must be rollup-served: {}",
        agg.body
    );
    assert!(agg.body.contains(r#""data_frames_read":0"#));
    drop(probe);

    // Mixed workload: each client cycles selective logs, cursor-paged
    // unselective logs, aggregates, blocks, detections.
    let t = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let selective = selective.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                let mut latencies_ns = Vec::with_capacity(requests_per_client);
                let mut cursor: Option<String> = None;
                for i in 0..requests_per_client {
                    let target = match i % 5 {
                        0 => selective.clone(),
                        1 => match cursor.take() {
                            Some(token) => format!("/logs?limit=256&cursor={token}"),
                            None => "/logs?limit=256".to_string(),
                        },
                        2 => "/aggregates?group=kind".to_string(),
                        3 => format!("/blocks/{}", genesis + ((c + i) as u64 % blocks)),
                        _ => "/detections".to_string(),
                    };
                    let req = Instant::now();
                    let response = client.get(&target).expect("request");
                    latencies_ns.push(req.elapsed().as_nanos() as u64);
                    assert_eq!(response.status, 200, "{target}: {}", response.body);
                    if i % 5 == 1 {
                        // Continue the paged walk where the server said.
                        cursor = response
                            .body
                            .split(r#""next_cursor":""#)
                            .nth(1)
                            .and_then(|rest| rest.split('"').next())
                            .map(str::to_string);
                    }
                }
                latencies_ns
            })
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(clients * requests_per_client);
    for h in handles {
        latencies_ns.extend(h.join().expect("client thread"));
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    latencies_ns.sort_unstable();
    let total = latencies_ns.len();
    let mean_us = latencies_ns.iter().sum::<u64>() as f64 / total as f64 / 1e3;

    server.shutdown();

    if let Some(path) = report_path {
        std::fs::write(&path, mev_obs::report().to_json()).expect("write report");
        eprintln!("RunReport written to {path}");
    }
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "{{\n  \"scenario\": \"quick\",\n  \"blocks\": {blocks},\n  \
         \"detections_served\": {detections},\n  \
         \"clients\": {clients},\n  \"requests_per_client\": {requests_per_client},\n  \
         \"requests_total\": {total},\n  \"wall_ms\": {wall_ms:.3},\n  \
         \"req_per_s\": {:.0},\n  \"latency_mean_us\": {mean_us:.1},\n  \
         \"latency_p50_us\": {:.1},\n  \"latency_p90_us\": {:.1},\n  \
         \"latency_p99_us\": {:.1},\n  \"latency_max_us\": {:.1},\n  \
         \"selective_logs_plan\": \"postings\",\n  \"aggregates_plan\": \"rollup\"\n}}",
        total as f64 / (wall_ms / 1e3),
        percentile_us(&latencies_ns, 50.0),
        percentile_us(&latencies_ns, 90.0),
        percentile_us(&latencies_ns, 99.0),
        percentile_us(&latencies_ns, 100.0),
    );
}
