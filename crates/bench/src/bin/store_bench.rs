//! Cold-vs-warm archive store benchmark, emitted as JSON for
//! `BENCH_STORE.json`:
//!
//! ```sh
//! cargo run -p mev-bench --release --bin store_bench
//! cargo run -p mev-bench --release --bin store_bench -- --threads 4
//! cargo run -p mev-bench --release --bin store_bench -- --report runreport.json
//! ```
//!
//! Simulates the quick scenario, ingests it into a scratch segmented
//! store, then measures:
//!
//! * ingest throughput (blocks/s into sealed segments),
//! * a **cold** full scan (every segment mapped and decoded),
//! * a **warm** narrow-window scan (zone maps prune to the touched
//!   segments) and an absent-address scan (blooms prune the rest),
//! * a **postings** address query (planner routes it through the
//!   sidecar indexes; zero data frames decoded) and a **rollup**
//!   aggregate (answered from the manifest alone),
//! * the **parallel decode** pipeline: `BlockIndex::build_from_store`
//!   at `--threads 1` vs `--threads N`, asserted structurally equal to
//!   each other and to the in-memory build,
//! * **compaction**: tiering the sealed segments, re-verifying, and
//!   re-running the cold scan for the identical digest,
//! * store-backed detection vs the in-memory `Inspector` on the same
//!   chain, asserting bit-identical detections.
//!
//! The `detection_digest` / `scan_digest` fields are stable CRC-32s of
//! the result sets: two invocations at different `--threads` values (or
//! before/after compaction) must print identical digests — CI greps
//! exactly that.

use mev_core::{BlockIndex, Inspector, StoreRunOutcome};
use mev_store::{Crc32, GroupBy, LogFilter, QueryPlan, StoreReader, StoreWriter};
use mev_types::Address;
use std::time::Instant;

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Order-sensitive CRC-32 over the debug form of a result set — the
/// digest two runs must agree on byte for byte.
fn digest<T: std::fmt::Debug>(items: &[T]) -> String {
    let mut c = Crc32::new();
    for item in items {
        c.update(format!("{item:?}\n").as_bytes());
    }
    format!("{:08x}", c.finish())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let report_path = args
        .windows(2)
        .find(|w| w[0] == "--report")
        .map(|w| w[1].clone());
    let threads: usize = args
        .windows(2)
        .find(|w| w[0] == "--threads")
        .map(|w| w[1].parse().expect("--threads takes a number"))
        .unwrap_or(1);

    let out = mev_sim::Simulation::new(mev_sim::Scenario::quick()).run();
    let chain = &out.chain;
    let blocks = chain.len() as u64;
    let segment_blocks = 64u64;

    let dir = std::env::temp_dir().join(format!("flashpan-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Ingest (one-shot; deleting and re-ingesting per rep would measure
    // the filesystem cache, not the store).
    let t = Instant::now();
    let mut w =
        StoreWriter::create(&dir, chain.timeline().clone(), segment_blocks).expect("create store");
    let stats = w.ingest(chain).expect("ingest");
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(w);
    assert_eq!(stats.appended, blocks);

    let store = StoreReader::open(&dir)
        .expect("open store")
        .with_decode_threads(threads);
    let segments_total = store.segments().len() as u64;
    let genesis = store.timeline().genesis_number;

    let reps = 5;
    // Cold: full unfiltered scan touches every segment — each one mapped
    // and decoded through the zero-copy frame reader. (`StoreReader`
    // caches one segment; a full pass still decodes each one.)
    let unbounded = LogFilter::new().limit(usize::MAX);
    let (cold_page, cold_stats) = store.get_logs_with_stats(&unbounded).expect("cold scan");
    assert_eq!(cold_stats.plan, QueryPlan::FullScan);
    let cold_ms = time_ms(reps, || {
        store.get_logs_with_stats(&unbounded).expect("cold")
    });
    let scan_digest = digest(&cold_page.entries);

    // Warm: a narrow window inside one segment — zone maps prune the rest.
    let narrow = LogFilter::new()
        .from_block(genesis + segment_blocks + 1)
        .to_block(genesis + segment_blocks + 10)
        .limit(usize::MAX);
    let (_, warm_stats) = store.get_logs_with_stats(&narrow).expect("warm scan");
    let warm_ms = time_ms(reps, || store.get_logs_with_stats(&narrow).expect("warm"));
    assert!(
        warm_stats.segments_read < cold_stats.segments_read,
        "pruned warm scan must read strictly fewer segments ({} vs {})",
        warm_stats.segments_read,
        cold_stats.segments_read
    );

    // Bloom: an address the chain never used — blooms prune segments the
    // zone map cannot. Probes run word-wise over the compiled query.
    let absent = LogFilter::new()
        .address(Address::from_index(0xDEAD_BEEF_DEAD))
        .limit(usize::MAX);
    let (absent_page, bloom_stats) = store.get_logs_with_stats(&absent).expect("bloom scan");
    assert!(absent_page.entries.is_empty());

    // Postings: a warm address-history query on an address the chain
    // actually used. The planner must route it through the sidecar
    // indexes — index pages only, zero data frames decoded — and the
    // answer must be bit-identical to the forced scan.
    let hot_addr = cold_page
        .entries
        .first()
        .map(|e| e.log.address)
        .expect("quick scenario emits logs");
    let addr_query = LogFilter::new().address(hot_addr).limit(usize::MAX);
    let (postings_page, postings_stats) = store
        .get_logs_with_stats(&addr_query)
        .expect("postings query");
    assert_eq!(postings_stats.plan, QueryPlan::Postings);
    assert_eq!(postings_stats.segments_read, 0);
    assert_eq!(postings_stats.data_frames_read, 0);
    assert!(postings_stats.postings_pages_read > 0);
    let (scan_page, _) = store
        .get_logs_scan_with_stats(&addr_query)
        .expect("forced scan");
    assert_eq!(postings_page.entries, scan_page.entries);
    let postings_ms = time_ms(reps, || {
        store.get_logs_with_stats(&addr_query).expect("postings")
    });

    // Rollup: a whole-archive per-kind aggregate answered from the
    // manifest tables without opening a single segment or sidecar.
    let (rollup_rows, rollup_stats) = store
        .aggregate(&LogFilter::new(), GroupBy::Kind)
        .expect("rollup aggregate");
    assert_eq!(rollup_stats.plan, QueryPlan::Rollup);
    assert_eq!(rollup_stats.data_frames_read, 0);
    let (fold_rows, _) = store
        .aggregate_fold(&LogFilter::new(), GroupBy::Kind)
        .expect("fold aggregate");
    assert_eq!(
        rollup_rows, fold_rows,
        "rollup answer diverged from the fold"
    );
    let rollup_ms = time_ms(reps, || {
        store
            .aggregate(&LogFilter::new(), GroupBy::Kind)
            .expect("rollup")
    });

    // Parallel decode: the streaming index build at --threads 1 vs
    // --threads N must produce structurally equal indexes, both equal
    // to the in-memory build. Bit-identity is the contract parallelism
    // rides on; the timing is the tentpole's payoff.
    let serial_store = StoreReader::open(&dir).expect("open store serial");
    let in_memory_index = BlockIndex::build(chain);
    let serial_index = BlockIndex::build_from_store(&serial_store).expect("serial build");
    let parallel_index = BlockIndex::build_from_store(&store).expect("parallel build");
    assert_eq!(serial_index, in_memory_index, "serial build != in-memory");
    assert_eq!(
        parallel_index, in_memory_index,
        "parallel build != in-memory at {threads} threads"
    );
    let build_serial_ms = time_ms(reps, || {
        BlockIndex::build_from_store(&serial_store).expect("serial build")
    });
    let build_parallel_ms = time_ms(reps, || {
        BlockIndex::build_from_store(&store).expect("parallel build")
    });

    // Detection from the store vs in memory: identical results.
    let in_memory = Inspector::new(chain, &out.blocks_api)
        .run()
        .expect("inspect");
    let from_store = match Inspector::from_store(&store, &out.blocks_api)
        .run()
        .expect("store run")
    {
        StoreRunOutcome::Complete(ds) => ds,
        StoreRunOutcome::Partial { .. } => unreachable!("unbounded run is complete"),
    };
    let identical = from_store.detections == in_memory.detections;
    let detection_digest = digest(&from_store.detections);
    let detect_memory_ms = time_ms(reps, || {
        Inspector::new(chain, &out.blocks_api)
            .run()
            .expect("inspect")
    });
    let detect_store_ms = time_ms(reps, || {
        Inspector::from_store(&store, &out.blocks_api)
            .run()
            .expect("store run")
    });

    let verify = store.verify().expect("verify");
    drop(serial_store);
    drop(store);

    // Compaction: tier the sealed segments, re-verify, and re-run the
    // cold scan — same digest, fewer files.
    let mut w = StoreWriter::open(&dir).expect("reopen for compaction");
    let t = Instant::now();
    let compaction = w.compact(4).expect("compact");
    let compact_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(compaction.committed);
    drop(w);
    let compacted = StoreReader::open(&dir)
        .expect("open compacted store")
        .with_decode_threads(threads);
    let compacted_verify = compacted.verify().expect("verify compacted");
    let (compacted_page, _) = compacted
        .get_logs_with_stats(&unbounded)
        .expect("compacted cold scan");
    assert_eq!(
        digest(&compacted_page.entries),
        scan_digest,
        "compaction changed the scan answer"
    );
    let compacted_index = BlockIndex::build_from_store(&compacted).expect("compacted build");
    assert_eq!(
        compacted_index, in_memory_index,
        "compaction changed the built index"
    );
    let compacted_cold_ms = time_ms(reps, || {
        compacted
            .get_logs_with_stats(&unbounded)
            .expect("compacted cold")
    });

    println!(
        "{{\n  \"scenario\": \"quick\",\n  \"blocks\": {blocks},\n  \
         \"segment_blocks\": {segment_blocks},\n  \"segments_total\": {segments_total},\n  \
         \"store_bytes\": {},\n  \"ingest_ms\": {ingest_ms:.3},\n  \
         \"ingest_blocks_per_s\": {:.0},\n  \
         \"mmap_scan\": {{\"cold_full_scan_ms\": {cold_ms:.3}, \"cold_segments_read\": {}, \
         \"scan_digest\": \"{scan_digest}\"}},\n  \
         \"warm_window_scan_ms\": {warm_ms:.3},\n  \"warm_segments_read\": {},\n  \
         \"warm_pruned_by_zone\": {},\n  \
         \"bloom_segments_pruned\": {},\n  \"bloom_false_positives\": {},\n  \
         \"postings_query\": {{\"ms\": {postings_ms:.3}, \"plan\": \"{}\", \
         \"entries\": {}, \"pages_read\": {}, \"data_frames_read\": {}}},\n  \
         \"rollup_query\": {{\"ms\": {rollup_ms:.3}, \"plan\": \"{}\", \
         \"rows\": {}, \"data_frames_read\": {}}},\n  \
         \"parallel_decode\": {{\"threads\": {threads}, \
         \"build_serial_ms\": {build_serial_ms:.3}, \
         \"build_parallel_ms\": {build_parallel_ms:.3}, \"identical\": true}},\n  \
         \"compaction\": {{\"ms\": {compact_ms:.3}, \"segments_before\": {}, \
         \"segments_after\": {}, \"tiers_written\": {}, \"files_removed\": {}, \
         \"bytes_after\": {}, \"cold_full_scan_ms\": {compacted_cold_ms:.3}}},\n  \
         \"detect_in_memory_ms\": {detect_memory_ms:.3},\n  \
         \"detect_from_store_ms\": {detect_store_ms:.3},\n  \
         \"identical_detections\": {identical},\n  \
         \"detection_digest\": \"{detection_digest}\",\n  \
         \"verified_indexes\": {}\n}}",
        verify.bytes,
        blocks as f64 / (ingest_ms / 1e3),
        cold_stats.segments_read,
        warm_stats.segments_read,
        warm_stats.pruned_by_zone,
        bloom_stats.pruned_by_bloom,
        bloom_stats.bloom_false_positives,
        postings_stats.plan.as_str(),
        postings_page.entries.len(),
        postings_stats.postings_pages_read,
        postings_stats.data_frames_read,
        rollup_stats.plan.as_str(),
        rollup_rows.len(),
        rollup_stats.data_frames_read,
        compaction.segments_before,
        compaction.segments_after,
        compaction.tiers_written,
        compaction.files_removed,
        compacted_verify.bytes,
        verify.indexes,
    );
    assert!(identical, "store-backed and in-memory detections diverged");

    if let Some(path) = report_path {
        let report = mev_obs::report();
        assert!(report.counter("store.ingest.blocks").unwrap_or(0) > 0);
        assert!(report.counter("store.plan.postings").unwrap_or(0) > 0);
        assert!(report.counter("store.plan.rollup").unwrap_or(0) > 0);
        assert!(report.counter("store.mmap.maps").unwrap_or(0) > 0);
        assert!(
            report.counter("store.scan.bloom_probe_words").unwrap_or(0) > 0,
            "word-wise bloom probing must be visible in store.scan.*"
        );
        report
            .write_to(std::path::Path::new(&path))
            .expect("write RunReport");
        eprintln!("RunReport written to {path}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
