//! # mev-bench
//!
//! Criterion benchmark harnesses. `benches/experiments.rs` regenerates
//! every table and figure (printing paper-vs-measured on first run),
//! `benches/ablations.rs` covers the design-choice ablations DESIGN.md
//! calls out, and `benches/throughput.rs` measures the hot paths.

/// Shared helper: a lazily-initialised quick-scale lab for benches.
pub fn shared_lab() -> &'static mev_analysis::Lab {
    static LAB: std::sync::OnceLock<mev_analysis::Lab> = std::sync::OnceLock::new();
    LAB.get_or_init(|| mev_analysis::Lab::run(mev_sim::Scenario::quick()))
}
