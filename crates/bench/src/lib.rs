//! # mev-bench
//!
//! Criterion benchmark harnesses. `benches/experiments.rs` regenerates
//! every table and figure (printing paper-vs-measured on first run),
//! `benches/ablations.rs` covers the design-choice ablations DESIGN.md
//! calls out, and `benches/throughput.rs` measures the hot paths.

use mev_chain::ChainStore;
use mev_core::{Detection, MevDataset};
use mev_flashbots::BlocksApi;

/// Shared helper: a lazily-initialised quick-scale lab for benches.
pub fn shared_lab() -> &'static mev_analysis::Lab {
    static LAB: std::sync::OnceLock<mev_analysis::Lab> = std::sync::OnceLock::new();
    LAB.get_or_init(|| mev_analysis::Lab::run(mev_sim::Scenario::quick()))
}

/// The seed's detection strategy, kept as the before/after comparison
/// point for `BENCH_DETECTION.json`: fixed block chunks (one per thread,
/// no stealing), each chunk decoding its receipts per detector.
pub fn chunked_baseline(chain: &ChainStore, api: &BlocksApi) -> MevDataset {
    let prices = mev_core::price_feed_from_chain(chain);
    let pairs: Vec<_> = chain.iter().collect();
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let chunk = pairs.len().div_ceil(n_threads.max(1)).max(1);
    let mut detections: Vec<Detection> = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|blocks| {
                let prices = &prices;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (block, receipts) in blocks {
                        mev_core::detect::sandwich::detect_in_block(
                            block, receipts, api, prices, &mut out,
                        );
                        mev_core::detect::arbitrage::detect_in_block(
                            block, receipts, api, prices, &mut out,
                        );
                        mev_core::detect::liquidation::detect_in_block(
                            block, receipts, api, prices, &mut out,
                        );
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("detector thread panicked"))
            .collect()
    });
    detections.sort_by_key(|d| (d.block, d.tx_hashes.first().cloned()));
    MevDataset::from_parts(detections, prices)
}
