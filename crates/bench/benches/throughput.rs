//! Hot-path throughput: AMM quoting/swapping, sandwich planning, block
//! simulation, and full-chain detection.
//!
//! ```sh
//! cargo bench -p mev-bench --bench throughput
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mev_agents::strategies::sandwich::plan_sandwich;
use mev_bench::{chunked_baseline, shared_lab};
use mev_core::{BlockIndex, Inspector};
use mev_dex::pool::build;
use mev_types::{SwapCall, TokenId};
use std::sync::Arc;

const E18: u128 = 10u128.pow(18);

fn bench_amm(c: &mut Criterion) {
    let mut group = c.benchmark_group("amm");
    let pool = build::uniswap_v2(0, TokenId::WETH, TokenId(1), 1_000 * E18, 2_000 * E18);
    group.throughput(Throughput::Elements(1));
    group.bench_function("cp_quote", |b| {
        b.iter(|| {
            pool.quote(black_box(TokenId::WETH), black_box(3 * E18))
                .unwrap()
        })
    });
    let curve = build::curve(0, TokenId::WETH, TokenId(1), 10_000 * E18, 10_000 * E18);
    group.bench_function("stableswap_quote", |b| {
        b.iter(|| {
            curve
                .quote(black_box(TokenId::WETH), black_box(3 * E18))
                .unwrap()
        })
    });
    let balancer = build::balancer(0, TokenId::WETH, TokenId(1), 1_000 * E18, 2_000 * E18, 5000);
    group.bench_function("weighted_quote", |b| {
        b.iter(|| {
            balancer
                .quote(black_box(TokenId::WETH), black_box(3 * E18))
                .unwrap()
        })
    });
    group.bench_function("cp_swap_roundtrip", |b| {
        b.iter(|| {
            let mut p = pool.clone();
            let out = p.swap(TokenId::WETH, 3 * E18, 0).unwrap();
            p.swap(TokenId(1), out, 0).unwrap()
        })
    });
    group.finish();
}

fn bench_sandwich_planning(c: &mut Criterion) {
    let pool = build::uniswap_v2(0, TokenId::WETH, TokenId(1), 1_000 * E18, 2_000 * E18);
    let quote = pool.quote(TokenId::WETH, 20 * E18).unwrap();
    let victim = SwapCall {
        pool: pool.id,
        token_in: TokenId::WETH,
        token_out: TokenId(1),
        amount_in: 20 * E18,
        min_amount_out: quote * 97 / 100,
    };
    c.bench_function("sandwich_plan_binary_search", |b| {
        b.iter(|| plan_sandwich(black_box(&pool), black_box(&victim), 3_000 * E18).unwrap())
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let mut tiny = mev_sim::Scenario::quick();
    tiny.months = 6;
    tiny.blocks_per_month = 50;
    group.throughput(Throughput::Elements(tiny.total_blocks()));
    group.bench_function("engine_blocks", |b| {
        b.iter(|| mev_sim::Simulation::new(tiny.clone()).run())
    });
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let lab = shared_lab();
    let chain = &lab.out.chain;
    let api = &lab.out.blocks_api;
    let txs: u64 = chain.iter().map(|(b, _)| b.transactions.len() as u64).sum();
    let mut group = c.benchmark_group("detection");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txs));
    // Seed comparison point: the pre-index fixed-chunk strategy.
    group.bench_function("chunked_baseline", |b| {
        b.iter(|| chunked_baseline(chain, api))
    });
    group.bench_function("index_build", |b| b.iter(|| BlockIndex::build(chain)));
    group.bench_function("inspect_serial", |b| {
        b.iter(|| Inspector::new(chain, api).threads(1).run().unwrap())
    });
    group.bench_function("inspect_pool", |b| {
        b.iter(|| Inspector::new(chain, api).run().unwrap())
    });
    let index = Arc::new(BlockIndex::build(chain));
    group.bench_function("inspect_pool_prebuilt_index", |b| {
        b.iter(|| {
            Inspector::new(chain, api)
                .with_index(index.clone())
                .run()
                .unwrap()
        })
    });
    group.finish();
}

/// The v2 interned columnar build in isolation — the comparison point
/// BENCH_DETECTION.json pins against the PR 1 `index_build` group.
fn bench_index_v2_build(c: &mut Criterion) {
    let lab = shared_lab();
    let chain = &lab.out.chain;
    let txs: u64 = chain.iter().map(|(b, _)| b.transactions.len() as u64).sum();
    let mut group = c.benchmark_group("index_v2_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txs));
    group.bench_function("build", |b| b.iter(|| BlockIndex::build(chain)));
    group.finish();
}

/// Pooled detection over the v2 zero-copy views, cold (index built per
/// iteration) and with a shared prebuilt index (the steady-state shape
/// analyses actually run).
fn bench_inspect_pool_v2(c: &mut Criterion) {
    let lab = shared_lab();
    let chain = &lab.out.chain;
    let api = &lab.out.blocks_api;
    let txs: u64 = chain.iter().map(|(b, _)| b.transactions.len() as u64).sum();
    let mut group = c.benchmark_group("inspect_pool_v2");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txs));
    group.bench_function("cold", |b| {
        b.iter(|| Inspector::new(chain, api).run().unwrap())
    });
    let index = Arc::new(BlockIndex::build(chain));
    group.bench_function("prebuilt_index", |b| {
        b.iter(|| {
            Inspector::new(chain, api)
                .with_index(index.clone())
                .run()
                .unwrap()
        })
    });
    group.finish();
}

/// The pipelined store decode: segment read-ahead drain and the full
/// `build_from_store` path it feeds.
fn bench_store_prefetch(c: &mut Criterion) {
    let lab = shared_lab();
    let chain = &lab.out.chain;
    let dir = mev_store::testutil::scratch_dir("bench-store-prefetch");
    let mut w =
        mev_store::StoreWriter::create(&dir, chain.timeline().clone(), 64).expect("create store");
    w.ingest(chain).expect("ingest chain");
    let store = mev_store::StoreReader::open(&dir).expect("open store");
    let blocks: u64 = chain.iter().count() as u64;
    let mut group = c.benchmark_group("store_prefetch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(blocks));
    group.bench_function("stream_segments_drain", |b| {
        b.iter(|| {
            let mut n = 0u64;
            store
                .stream_segments(|_, entries| n += entries.len() as u64)
                .expect("stream segments");
            black_box(n)
        })
    });
    group.bench_function("build_from_store", |b| {
        b.iter(|| BlockIndex::build_from_store(&store).unwrap())
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    throughput,
    bench_amm,
    bench_sandwich_planning,
    bench_simulation,
    bench_detection,
    bench_index_v2_build,
    bench_inspect_pool_v2,
    bench_store_prefetch
);
criterion_main!(throughput);
