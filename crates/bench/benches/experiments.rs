//! One benchmark per table/figure: each regenerates its experiment from
//! the shared simulated run, prints the paper-comparable output once, and
//! times the measurement computation itself.
//!
//! ```sh
//! cargo bench -p mev-bench --bench experiments
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mev_analysis::experiments::{render_fig8, render_fig9, render_sec41, render_sec63};
use mev_bench::shared_lab;

fn print_once(tag: &str, body: impl FnOnce() -> String) {
    // Criterion runs each closure many times; print the regenerated
    // artifact exactly once per bench.
    static ONCE_GUARDS: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let mut seen = ONCE_GUARDS.lock().expect("poisoned");
    if !seen.iter().any(|s| s == tag) {
        seen.push(tag.to_string());
        println!("\n{}", body());
    }
}

fn bench_table1(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("table1", || lab.table1().render());
    c.bench_function("table1_mev_overview", |b| b.iter(|| lab.table1()));
}

fn bench_fig3(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("fig3", || lab.fig3().render());
    c.bench_function("fig3_block_ratio", |b| b.iter(|| lab.fig3()));
}

fn bench_fig4(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("fig4", || lab.fig4().render());
    c.bench_function("fig4_hashrate", |b| b.iter(|| lab.fig4()));
}

fn bench_fig5(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("fig5", || lab.fig5().render());
    c.bench_function("fig5_participation", |b| b.iter(|| lab.fig5()));
}

fn bench_fig6(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("fig6", || lab.fig6().render());
    c.bench_function("fig6_gas_sandwich", |b| b.iter(|| lab.fig6()));
}

fn bench_fig7(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("fig7", || lab.fig7().render());
    c.bench_function("fig7_mev_types", |b| b.iter(|| lab.fig7()));
}

fn bench_fig8(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("fig8", || render_fig8(&lab.fig8()));
    c.bench_function("fig8_profit", |b| b.iter(|| lab.fig8()));
}

fn bench_sec41(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("sec41", || render_sec41(&lab.sec41()));
    c.bench_function("sec41_bundles", |b| b.iter(|| lab.sec41()));
}

fn bench_sec52(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("sec52", || lab.sec52().render());
    c.bench_function("sec52_negative_profit", |b| b.iter(|| lab.sec52()));
}

fn bench_fig9(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("fig9", || render_fig9(&lab.fig9()));
    c.bench_function("fig9_private_split", |b| b.iter(|| lab.fig9()));
}

fn bench_sec63(c: &mut Criterion) {
    let lab = shared_lab();
    print_once("sec63", || render_sec63(lab.sec63()));
    c.bench_function("sec63_attribution", |b| {
        b.iter(|| {
            mev_core::attribution::attribute_private_sandwiches(
                &lab.dataset,
                &lab.out.observer,
                &lab.out.blocks_api,
                lab.window(),
            )
        })
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_fig3, bench_fig4, bench_fig5, bench_fig6,
              bench_fig7, bench_fig8, bench_sec41, bench_sec52, bench_fig9,
              bench_sec63
}
criterion_main!(experiments);
