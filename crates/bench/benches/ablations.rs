//! Ablations over the design choices the paper discusses:
//!
//! * `random_ordering` — §8.3's proposed countermeasure (randomise
//!   intra-block ordering). The paper predicts a 25 % residual sandwich
//!   success probability; we measure it empirically for several block
//!   sizes.
//! * `tip_share` — the sealed-bid overbidding level that drives Figure
//!   8's miner/searcher split.
//! * `observer_coverage` — how sensitive §6.1's private-transaction
//!   inference is to the measurement node's coverage.
//!
//! ```sh
//! cargo bench -p mev-bench --bench ablations
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Once;

/// Empirical survival probability of a sandwich under random intra-block
/// ordering: positions of (front, victim, back) after shuffling a block
/// of `n` transactions; success iff front < victim < back.
fn random_ordering_survival(n: usize, trials: u32, rng: &mut StdRng) -> f64 {
    assert!(n >= 3);
    let mut ok = 0u32;
    let mut idx: Vec<usize> = (0..n).collect();
    for _ in 0..trials {
        idx.shuffle(rng);
        // Transactions 0, 1, 2 are front, victim, back.
        let pos = |t: usize| idx.iter().position(|&x| x == t).expect("present");
        if pos(0) < pos(1) && pos(1) < pos(2) {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

fn bench_random_ordering(c: &mut Criterion) {
    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        let mut rng = StdRng::seed_from_u64(1);
        println!("\nablation: §8.3 random intra-block ordering — sandwich survival");
        for n in [3usize, 10, 50, 200] {
            let p = random_ordering_survival(n, 200_000, &mut rng);
            println!("  block size {n:>3}: survival {:.1} % (paper's estimate: 25 %, exact independent-position value: 16.7 %)", p * 100.0);
        }
        println!("  → randomisation leaves a substantial success rate; the paper deems it non-viable.");
    });
    c.bench_function("ablation_random_ordering", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| random_ordering_survival(50, 1_000, &mut rng))
    });
}

fn bench_tip_share(c: &mut Criterion) {
    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        println!("\nablation: sealed-bid tip share → Fig 8 profit split");
        for share in [0.5f64, 0.7, 0.85, 0.95] {
            let mut s = mev_sim::Scenario::quick();
            s.months = 14; // through early FB era: enough FB sandwiches
            s.searchers.tip_share_mean = share;
            s.searchers.tip_share_std = 0.02;
            let lab = mev_analysis::Lab::run(s);
            let f8 = lab.fig8();
            println!(
                "  tip {share:.2}: miner-FB {:.4} ETH, searcher-FB {:.4} ETH (n={})",
                f8.miners_flashbots.mean_eth,
                f8.searchers_flashbots.mean_eth,
                f8.searchers_flashbots.count
            );
        }
        println!("  → the miner/searcher split is a direct function of the sealed-bid overbid level (§8.2).");
    });
    // Time the cheap part: recomputing fig8 on the shared lab.
    let lab = mev_bench::shared_lab();
    c.bench_function("ablation_tip_share_fig8", |b| b.iter(|| lab.fig8()));
}

fn bench_observer_coverage(c: &mut Criterion) {
    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        println!("\nablation: observer coverage → §6.1 private inference");
        for miss in [0.0f64, 0.002, 0.02, 0.10] {
            let mut s = mev_sim::Scenario::quick();
            s.observer.miss_rate = miss;
            let lab = mev_analysis::Lab::run(s);
            let f9 = lab.fig9();
            println!(
                "  miss {:>5.1} %: {} sandwiches in window — FB {:.1} %, private non-FB {}, public {}",
                miss * 100.0,
                f9.total_sandwiches,
                f9.flashbots_share() * 100.0,
                f9.private_non_flashbots,
                f9.public,
            );
        }
        println!("  → misses cut both ways: an unseen victim disqualifies a genuinely private sandwich (the conservative §6.1 rule pushes it to \"public\"), while an unseen front would masquerade as private. Near-complete coverage keeps both biases small.");
    });
    let lab = mev_bench::shared_lab();
    c.bench_function("ablation_observer_coverage_fig9", |b| b.iter(|| lab.fig9()));
}

fn bench_ordering_policy(c: &mut Criterion) {
    static PRINT: Once = Once::new();
    PRINT.call_once(|| {
        println!("\nablation: public-section ordering policy → public sandwich viability");
        for (name, policy) in [
            ("fee-priority", mev_sim::OrderingPolicy::FeePriority),
            ("random (§8.3)", mev_sim::OrderingPolicy::Random),
            ("fcfs (§7 fair ordering)", mev_sim::OrderingPolicy::Fcfs),
        ] {
            let mut s = mev_sim::Scenario::quick();
            s.months = 9; // the pre-Flashbots era: public PGA extraction only
            s.ordering = policy;
            let lab = mev_analysis::Lab::run(s);
            let sandwiches = lab.table1().rows[0].total;
            println!("  {name:<24}: {sandwiches} completed public sandwiches");
        }
        println!("  → randomised/fair ordering break the deterministic t1<V<t2 placement that fee priority hands attackers; residual successes match the paper's §8.3 probability analysis.");
    });
    let lab = mev_bench::shared_lab();
    c.bench_function("ablation_ordering_policy_table1", |b| {
        b.iter(|| lab.table1())
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_random_ordering, bench_tip_share, bench_observer_coverage,
              bench_ordering_policy
}
criterion_main!(ablations);
