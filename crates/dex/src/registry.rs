//! Token metadata registry.
//!
//! All simulated tokens use 18 decimals (like the vast majority of ERC-20s
//! the paper's detectors encounter); the registry tracks symbols and a
//! deterministic per-token "contract" address for Transfer logs.

use mev_types::{Address, TokenId};

/// Metadata for one token.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TokenInfo {
    pub id: TokenId,
    pub symbol: String,
    pub address: Address,
    pub decimals: u8,
}

/// Registry of all simulated tokens. `TokenId::WETH` is always present.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TokenRegistry {
    tokens: Vec<TokenInfo>,
}

impl TokenRegistry {
    /// Create a registry with WETH plus `n` generic tokens TKN1..TKNn.
    pub fn with_tokens(n: u32) -> TokenRegistry {
        let mut tokens = vec![TokenInfo {
            id: TokenId::WETH,
            symbol: "WETH".into(),
            address: token_address(TokenId::WETH),
            decimals: 18,
        }];
        for i in 1..=n {
            let id = TokenId(i);
            tokens.push(TokenInfo {
                id,
                symbol: format!("TKN{i}"),
                address: token_address(id),
                decimals: 18,
            });
        }
        TokenRegistry { tokens }
    }

    pub fn get(&self, id: TokenId) -> Option<&TokenInfo> {
        self.tokens.get(id.0 as usize).filter(|t| t.id == id)
    }

    /// The token's "contract" address (emitter of its Transfer events).
    pub fn address_of(&self, id: TokenId) -> Address {
        token_address(id)
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// All non-WETH token ids.
    pub fn non_weth(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.tokens.iter().map(|t| t.id).filter(|t| !t.is_weth())
    }

    pub fn iter(&self) -> impl Iterator<Item = &TokenInfo> {
        self.tokens.iter()
    }
}

/// Deterministic token contract address, disjoint from agent and pool
/// address spaces.
pub fn token_address(id: TokenId) -> Address {
    Address::from_index(0x7000_0000_0000 + id.0 as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_weth_and_tokens() {
        let r = TokenRegistry::with_tokens(5);
        assert_eq!(r.len(), 6);
        assert_eq!(r.get(TokenId::WETH).unwrap().symbol, "WETH");
        assert_eq!(r.get(TokenId(3)).unwrap().symbol, "TKN3");
        assert_eq!(r.get(TokenId(6)), None);
        assert_eq!(r.non_weth().count(), 5);
    }

    #[test]
    fn token_addresses_distinct_from_each_other() {
        let r = TokenRegistry::with_tokens(10);
        let mut addrs: Vec<_> = r.iter().map(|t| t.address).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 11);
    }
}
