//! # mev-dex
//!
//! From-scratch implementations of the decentralized-exchange protocols the
//! paper's detectors cover (§3.1): constant-product AMMs (Uniswap V1/V2,
//! SushiSwap), a concentrated-liquidity approximation (Uniswap V3), a
//! StableSwap pool (Curve), a weighted pool (Balancer), a Bancor-style
//! converter, and a 0x-style order book.
//!
//! Pools are pure pricing engines: they own their reserves and expose
//! `quote` / `swap`. User token balances live in `mev-chain`'s state; the
//! execution engine moves balances and emits the `Swap` and `Transfer`
//! events that `mev-core`'s detectors consume.

pub mod engine;
pub mod math;
pub mod oracle;
pub mod pool;
pub mod registry;

pub use engine::{Engine, SwapError};
pub use oracle::PriceOracle;
pub use pool::{DexState, Pool};
pub use registry::TokenRegistry;
