//! Pools and the aggregate DEX state.

use crate::engine::{Engine, SwapError};
use mev_types::{Address, ExchangeId, PoolId, TokenId};
use std::collections::HashMap;

/// A liquidity pool: a pricing engine bound to a token pair and an
/// on-chain address (the address its events are emitted from).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Pool {
    pub id: PoolId,
    pub address: Address,
    pub token0: TokenId,
    pub token1: TokenId,
    pub engine: Engine,
}

impl Pool {
    /// Direction flag for swapping `token_in`; `None` if not in the pair.
    pub fn direction(&self, token_in: TokenId) -> Option<bool> {
        if token_in == self.token0 {
            Some(true)
        } else if token_in == self.token1 {
            Some(false)
        } else {
            None
        }
    }

    /// The pair partner of `token`, if `token` is in the pool.
    pub fn other(&self, token: TokenId) -> Option<TokenId> {
        if token == self.token0 {
            Some(self.token1)
        } else if token == self.token1 {
            Some(self.token0)
        } else {
            None
        }
    }

    /// Quote `amount_in` of `token_in` without mutating.
    pub fn quote(&self, token_in: TokenId, amount_in: u128) -> Result<u128, SwapError> {
        let dir = self.direction(token_in).ok_or(SwapError::WrongToken)?;
        self.engine.quote(dir, amount_in)
    }

    /// Execute a swap of `token_in`.
    pub fn swap(
        &mut self,
        token_in: TokenId,
        amount_in: u128,
        min_amount_out: u128,
    ) -> Result<u128, SwapError> {
        let dir = self.direction(token_in).ok_or(SwapError::WrongToken)?;
        self.engine.swap(dir, amount_in, min_amount_out)
    }

    /// Current reserve of `token`.
    pub fn reserve_of(&self, token: TokenId) -> Option<u128> {
        self.direction(token)
            .map(|d| self.engine.reserve(if d { 0 } else { 1 }))
    }

    /// Mid price of `quote_token` per `base_token`, scaled 1e18.
    pub fn price_e18(&self, base: TokenId, quote: TokenId) -> Option<u128> {
        let spot1per0 = self.engine.spot_price_e18()?;
        if base == self.token0 && quote == self.token1 {
            Some(spot1per0)
        } else if base == self.token1 && quote == self.token0 {
            if spot1per0 == 0 {
                return None;
            }
            mev_types::U256::from(10u128.pow(18))
                .mul_u128(10u128.pow(18))
                .div_u128(spot1per0)
                .checked_u128()
        } else {
            None
        }
    }
}

/// All pools across all exchanges, indexed for the lookups agents and the
/// execution engine need.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct DexState {
    pools: Vec<Pool>,
    #[serde(skip)]
    by_id: HashMap<PoolId, usize>,
    #[serde(skip)]
    by_pair: HashMap<(TokenId, TokenId), Vec<usize>>,
}

impl DexState {
    pub fn new() -> DexState {
        DexState::default()
    }

    /// Register a pool. Panics on duplicate `PoolId`.
    pub fn add_pool(&mut self, pool: Pool) {
        assert!(
            !self.by_id.contains_key(&pool.id),
            "duplicate pool id {:?}",
            pool.id
        );
        let idx = self.pools.len();
        self.by_id.insert(pool.id, idx);
        let key = pair_key(pool.token0, pool.token1);
        self.by_pair.entry(key).or_default().push(idx);
        self.pools.push(pool);
    }

    pub fn pool(&self, id: PoolId) -> Option<&Pool> {
        self.by_id.get(&id).map(|&i| &self.pools[i])
    }

    pub fn pool_mut(&mut self, id: PoolId) -> Option<&mut Pool> {
        self.by_id.get(&id).map(|&i| &mut self.pools[i])
    }

    /// All pools trading the (unordered) pair.
    pub fn pools_for_pair(&self, a: TokenId, b: TokenId) -> Vec<&Pool> {
        self.by_pair
            .get(&pair_key(a, b))
            .map(|v| v.iter().map(|&i| &self.pools[i]).collect())
            .unwrap_or_default()
    }

    /// Iterate all pools.
    pub fn pools(&self) -> impl Iterator<Item = &Pool> {
        self.pools.iter()
    }

    pub fn len(&self) -> usize {
        self.pools.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Rebuild lookup indices (needed after deserialisation).
    pub fn reindex(&mut self) {
        self.by_id.clear();
        self.by_pair.clear();
        for (i, p) in self.pools.iter().enumerate() {
            self.by_id.insert(p.id, i);
            self.by_pair
                .entry(pair_key(p.token0, p.token1))
                .or_default()
                .push(i);
        }
    }

    /// Update all order-book mids for a token repriced against WETH.
    ///
    /// Order books quote off the external oracle; AMMs only reprice through
    /// trades (which is exactly the imbalance arbitrageurs harvest).
    pub fn sync_orderbooks(&mut self, token: TokenId, price_wei: u128) {
        for p in self.pools.iter_mut() {
            if let Engine::OrderBook { mid_price_e18, .. } = &mut p.engine {
                if p.token0 == token && p.token1 == TokenId::WETH {
                    *mid_price_e18 = price_wei;
                } else if p.token1 == token && p.token0 == TokenId::WETH && price_wei > 0 {
                    *mid_price_e18 = mev_types::U256::from(10u128.pow(18))
                        .mul_u128(10u128.pow(18))
                        .div_u128(price_wei)
                        .as_u128();
                }
            }
        }
    }
}

impl DexState {
    /// Liquidity-provider price tether: pull every WETH-paired
    /// constant-product pool whose spot price has drifted more than
    /// `band_bps` from the oracle back to the oracle price, preserving the
    /// pool's invariant k.
    ///
    /// This stands in for the off-simulation forces that keep real pools
    /// near the wider market — informed LPs rebalancing inventory and the
    /// long tail of arbitrageurs beyond the agents we model explicitly.
    /// Without it, the trader flow's random walk can drain one side of a
    /// pool entirely, which never survives on mainnet. Returns the number
    /// of pools rebalanced.
    pub fn tether_to_oracle(
        &mut self,
        oracle: &crate::oracle::PriceOracle,
        band_bps: u32,
    ) -> usize {
        let e18 = 10u128.pow(18);
        let mut rebalanced = 0;
        for p in self.pools.iter_mut() {
            let Some(token) = p.other(TokenId::WETH) else {
                continue;
            };
            let Some(target) = oracle.price(token) else {
                continue;
            };
            let crate::engine::Engine::ConstantProduct {
                reserve0, reserve1, ..
            } = &mut p.engine
            else {
                continue;
            };
            // Normalise to (weth, tok) irrespective of pair order.
            let weth_is_0 = p.token0 == TokenId::WETH;
            let (weth, tok) = if weth_is_0 {
                (*reserve0, *reserve1)
            } else {
                (*reserve1, *reserve0)
            };
            if weth == 0 || tok == 0 {
                continue;
            }
            // Current price: wei of WETH per whole token.
            let current = mev_types::U256::from(weth)
                .mul_u128(e18)
                .div_u128(tok)
                .as_u128();
            let band = target / 10_000 * band_bps as u128;
            if current.abs_diff(target) <= band {
                continue;
            }
            // Preserve k: weth' = sqrt(k · target / 1e18), tok' = k / weth'.
            let k = mev_types::U256::mul_u128_u128(weth, tok);
            let weth_new = k.div_u128(e18).mul_u128(target).isqrt().as_u128().max(1);
            let tok_new = k.div_u128(weth_new).as_u128().max(1);
            if weth_is_0 {
                *reserve0 = weth_new;
                *reserve1 = tok_new;
            } else {
                *reserve0 = tok_new;
                *reserve1 = weth_new;
            }
            rebalanced += 1;
        }
        rebalanced
    }
}

fn pair_key(a: TokenId, b: TokenId) -> (TokenId, TokenId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Standard pool constructors used by scenario builders.
pub mod build {
    use super::*;

    /// Derive a deterministic pool address from its id.
    pub fn pool_address(id: PoolId) -> Address {
        // Offset well above agent address space (indices < 2^32).
        Address::from_index(
            0x5000_0000_0000 + (id.exchange as u64) * 0x1_0000_0000 + id.index as u64,
        )
    }

    /// A Uniswap-V2-style pool (0.30 % fee).
    pub fn uniswap_v2(index: u32, t0: TokenId, t1: TokenId, r0: u128, r1: u128) -> Pool {
        cp_pool(ExchangeId::UniswapV2, index, t0, t1, r0, r1, 30, 1)
    }

    /// A SushiSwap pool (identical engine to V2).
    pub fn sushiswap(index: u32, t0: TokenId, t1: TokenId, r0: u128, r1: u128) -> Pool {
        cp_pool(ExchangeId::SushiSwap, index, t0, t1, r0, r1, 30, 1)
    }

    /// A Uniswap-V1 pool — always WETH-paired (token0 = WETH).
    pub fn uniswap_v1(index: u32, token: TokenId, weth_reserve: u128, token_reserve: u128) -> Pool {
        cp_pool(
            ExchangeId::UniswapV1,
            index,
            TokenId::WETH,
            token,
            weth_reserve,
            token_reserve,
            30,
            1,
        )
    }

    /// A Uniswap-V3 pool: 0.05 % fee, concentrated liquidity emulated as a
    /// 6×-deeper constant-product curve.
    ///
    /// The engine's `concentration` knob (virtual-reserve quoting against
    /// real-reserve settlement) matches V3 for one-shot analysis, but under
    /// sustained one-directional flow it pays out real reserves faster than
    /// the price adjusts — real V3 positions exit the range instead. A
    /// deeper CP curve reproduces the property that matters for MEV
    /// measurement (lower price impact per trade) while staying stable
    /// across a 23-month simulation.
    pub fn uniswap_v3(index: u32, t0: TokenId, t1: TokenId, r0: u128, r1: u128) -> Pool {
        cp_pool(ExchangeId::UniswapV3, index, t0, t1, r0 * 6, r1 * 6, 5, 1)
    }

    /// A Bancor converter (constant product, 0.20 % fee).
    pub fn bancor(index: u32, t0: TokenId, t1: TokenId, r0: u128, r1: u128) -> Pool {
        cp_pool(ExchangeId::Bancor, index, t0, t1, r0, r1, 20, 1)
    }

    fn cp_pool(
        exchange: ExchangeId,
        index: u32,
        t0: TokenId,
        t1: TokenId,
        r0: u128,
        r1: u128,
        fee_bps: u32,
        concentration: u32,
    ) -> Pool {
        let id = PoolId { exchange, index };
        Pool {
            id,
            address: pool_address(id),
            token0: t0,
            token1: t1,
            engine: Engine::ConstantProduct {
                reserve0: r0,
                reserve1: r1,
                fee_bps,
                concentration,
            },
        }
    }

    /// A Curve stableswap pool (0.04 % fee, A = 200).
    pub fn curve(index: u32, t0: TokenId, t1: TokenId, r0: u128, r1: u128) -> Pool {
        let id = PoolId {
            exchange: ExchangeId::Curve,
            index,
        };
        Pool {
            id,
            address: pool_address(id),
            token0: t0,
            token1: t1,
            engine: Engine::StableSwap {
                reserve0: r0,
                reserve1: r1,
                amp: 200,
                fee_bps: 4,
            },
        }
    }

    /// A Balancer 80/20 pool (0.30 % fee).
    pub fn balancer(
        index: u32,
        t0: TokenId,
        t1: TokenId,
        b0: u128,
        b1: u128,
        weight0_bps: u32,
    ) -> Pool {
        let id = PoolId {
            exchange: ExchangeId::Balancer,
            index,
        };
        Pool {
            id,
            address: pool_address(id),
            token0: t0,
            token1: t1,
            engine: Engine::Weighted {
                balance0: b0,
                balance1: b1,
                weight0_bps,
                fee_bps: 30,
            },
        }
    }

    /// A 0x order book for `token` against WETH.
    pub fn zeroex(
        index: u32,
        token: TokenId,
        price_wei: u128,
        depth_token: u128,
        depth_weth: u128,
    ) -> Pool {
        let id = PoolId {
            exchange: ExchangeId::ZeroEx,
            index,
        };
        Pool {
            id,
            address: pool_address(id),
            token0: token,
            token1: TokenId::WETH,
            engine: Engine::OrderBook {
                mid_price_e18: price_wei,
                half_spread_bps: 20,
                depth0: depth_token,
                depth1: depth_weth,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E18: u128 = 10u128.pow(18);

    fn state() -> DexState {
        let mut s = DexState::new();
        s.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            1_000 * E18,
            2_000 * E18,
        ));
        s.add_pool(build::sushiswap(
            0,
            TokenId::WETH,
            TokenId(1),
            500 * E18,
            1_050 * E18,
        ));
        s.add_pool(build::curve(
            0,
            TokenId(1),
            TokenId(2),
            10_000 * E18,
            10_000 * E18,
        ));
        s
    }

    #[test]
    fn add_and_lookup() {
        let s = state();
        assert_eq!(s.len(), 3);
        let id = PoolId {
            exchange: ExchangeId::UniswapV2,
            index: 0,
        };
        assert!(s.pool(id).is_some());
        assert_eq!(s.pools_for_pair(TokenId::WETH, TokenId(1)).len(), 2);
        assert_eq!(
            s.pools_for_pair(TokenId(1), TokenId::WETH).len(),
            2,
            "pair key unordered"
        );
        assert_eq!(s.pools_for_pair(TokenId::WETH, TokenId(9)).len(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate pool id")]
    fn duplicate_pool_panics() {
        let mut s = state();
        s.add_pool(build::uniswap_v2(0, TokenId::WETH, TokenId(3), E18, E18));
    }

    #[test]
    fn pool_direction_and_other() {
        let s = state();
        let p = s.pools_for_pair(TokenId::WETH, TokenId(1))[0];
        assert_eq!(p.direction(TokenId::WETH), Some(true));
        assert_eq!(p.direction(TokenId(1)), Some(false));
        assert_eq!(p.direction(TokenId(5)), None);
        assert_eq!(p.other(TokenId::WETH), Some(TokenId(1)));
        assert_eq!(p.other(TokenId(5)), None);
    }

    #[test]
    fn swap_via_pool_moves_reserves() {
        let mut s = state();
        let id = PoolId {
            exchange: ExchangeId::UniswapV2,
            index: 0,
        };
        let before = s.pool(id).unwrap().reserve_of(TokenId(1)).unwrap();
        let out = s
            .pool_mut(id)
            .unwrap()
            .swap(TokenId::WETH, 10 * E18, 0)
            .unwrap();
        let after = s.pool(id).unwrap().reserve_of(TokenId(1)).unwrap();
        assert_eq!(before - after, out);
    }

    #[test]
    fn wrong_token_rejected() {
        let mut s = state();
        let id = PoolId {
            exchange: ExchangeId::UniswapV2,
            index: 0,
        };
        assert_eq!(
            s.pool_mut(id).unwrap().swap(TokenId(9), E18, 0),
            Err(SwapError::WrongToken)
        );
    }

    #[test]
    fn price_e18_both_directions() {
        let s = state();
        let id = PoolId {
            exchange: ExchangeId::UniswapV2,
            index: 0,
        };
        let p = s.pool(id).unwrap();
        // 2000 TKN1 per 1000 WETH ⇒ 2 TKN1/WETH.
        assert_eq!(p.price_e18(TokenId::WETH, TokenId(1)).unwrap(), 2 * E18);
        assert_eq!(p.price_e18(TokenId(1), TokenId::WETH).unwrap(), E18 / 2);
        assert_eq!(p.price_e18(TokenId(1), TokenId(9)), None);
    }

    #[test]
    fn reindex_after_clone_keeps_lookups() {
        let s = state();
        let json = serde_json::to_string(&s).unwrap();
        let mut back: DexState = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 3);
        back.reindex();
        assert_eq!(back.pools_for_pair(TokenId::WETH, TokenId(1)).len(), 2);
    }

    #[test]
    fn tether_rebalances_drifted_pools_preserving_k() {
        use crate::oracle::PriceOracle;
        let mut s = DexState::new();
        // Pool price: 0.1 WETH per TKN1 (100 WETH / 1000 TKN1).
        s.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            100 * E18,
            1_000 * E18,
        ));
        // Reversed pair order to exercise both orientations.
        s.add_pool(build::sushiswap(
            0,
            TokenId(1),
            TokenId::WETH,
            1_000 * E18,
            100 * E18,
        ));
        // A pool already at the oracle price must be untouched.
        s.add_pool(build::bancor(
            0,
            TokenId::WETH,
            TokenId(1),
            500 * E18,
            1_000 * E18,
        ));
        let mut oracle = PriceOracle::new();
        oracle.update(TokenId(1), 1, E18 / 2); // market says 0.5 WETH
        let uni = PoolId {
            exchange: ExchangeId::UniswapV2,
            index: 0,
        };
        let k_before = {
            let p = s.pool(uni).unwrap();
            mev_types::U256::mul_u128_u128(
                p.reserve_of(TokenId::WETH).unwrap(),
                p.reserve_of(TokenId(1)).unwrap(),
            )
        };
        let n = s.tether_to_oracle(&oracle, 500);
        assert_eq!(n, 2, "both drifted pools rebalanced, the aligned one not");
        let p = s.pool(uni).unwrap();
        let price = p.price_e18(TokenId(1), TokenId::WETH).unwrap();
        assert!(price.abs_diff(E18 / 2) < E18 / 100, "price ≈ 0.5: {price}");
        let k_after = mev_types::U256::mul_u128_u128(
            p.reserve_of(TokenId::WETH).unwrap(),
            p.reserve_of(TokenId(1)).unwrap(),
        );
        // k preserved within isqrt rounding.
        let (q, _) = k_after.div(mev_types::U256::from(10u64.pow(9)));
        let (qb, _) = k_before.div(mev_types::U256::from(10u64.pow(9)));
        let diff = if q >= qb { q.sub(qb) } else { qb.sub(q) };
        assert!(diff
            .checked_u128()
            .map(|d| d < 10u128.pow(22))
            .unwrap_or(false));
        // Within the band: no-op on second call.
        assert_eq!(s.tether_to_oracle(&oracle, 500), 0);
    }

    #[test]
    fn sync_orderbooks_updates_mid() {
        let mut s = DexState::new();
        s.add_pool(build::zeroex(
            0,
            TokenId(1),
            2 * E18,
            1_000 * E18,
            1_000 * E18,
        ));
        s.sync_orderbooks(TokenId(1), 3 * E18);
        let id = PoolId {
            exchange: ExchangeId::ZeroEx,
            index: 0,
        };
        match s.pool(id).unwrap().engine {
            Engine::OrderBook { mid_price_e18, .. } => assert_eq!(mid_price_e18, 3 * E18),
            _ => unreachable!(),
        }
    }
}
