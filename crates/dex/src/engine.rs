//! Pool pricing engines — one per DEX protocol family.

use crate::math;

/// Why a swap could not be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// Input token is not one of the pool's pair.
    WrongToken,
    /// Zero input or drained reserves.
    NoLiquidity,
    /// Quote fell below the caller's `min_amount_out` slippage guard.
    Slippage { quoted: u128, minimum: u128 },
    /// Order-book depth exhausted.
    InsufficientDepth,
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::WrongToken => write!(f, "token not in pool"),
            SwapError::NoLiquidity => write!(f, "no liquidity"),
            SwapError::Slippage { quoted, minimum } => {
                write!(f, "slippage: quoted {quoted} < min {minimum}")
            }
            SwapError::InsufficientDepth => write!(f, "order book depth exhausted"),
        }
    }
}

impl std::error::Error for SwapError {}

/// A pool's pricing engine. Direction is expressed as `zero_for_one`:
/// `true` trades token0 → token1.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Engine {
    /// Uniswap V1/V2, SushiSwap, Bancor: x·y = k with an LP fee.
    /// `concentration > 1` approximates Uniswap V3's concentrated liquidity
    /// by quoting against virtual reserves `c·R` (lower price impact) while
    /// settling against real reserves.
    ConstantProduct {
        reserve0: u128,
        reserve1: u128,
        fee_bps: u32,
        concentration: u32,
    },
    /// Curve: StableSwap invariant with amplification `amp`.
    StableSwap {
        reserve0: u128,
        reserve1: u128,
        amp: u64,
        fee_bps: u32,
    },
    /// Balancer: weighted product invariant; `weight0_bps + weight1_bps = 10000`.
    Weighted {
        balance0: u128,
        balance1: u128,
        weight0_bps: u32,
        fee_bps: u32,
    },
    /// 0x-style order book: quotes around `mid_price_e18` (token1 per token0,
    /// scaled 1e18) with a half-spread and finite depth per side.
    OrderBook {
        mid_price_e18: u128,
        half_spread_bps: u32,
        depth0: u128,
        depth1: u128,
    },
}

impl Engine {
    /// Quote the output for `amount_in` without mutating state.
    pub fn quote(&self, zero_for_one: bool, amount_in: u128) -> Result<u128, SwapError> {
        match *self {
            Engine::ConstantProduct {
                reserve0,
                reserve1,
                fee_bps,
                concentration,
            } => {
                let c = concentration.max(1) as u128;
                let (rin, rout, real_out) = if zero_for_one {
                    (reserve0 * c, reserve1 * c, reserve1)
                } else {
                    (reserve1 * c, reserve0 * c, reserve0)
                };
                let out = math::cp_amount_out(amount_in, rin, rout, fee_bps)
                    .ok_or(SwapError::NoLiquidity)?;
                if out >= real_out {
                    return Err(SwapError::NoLiquidity);
                }
                Ok(out)
            }
            Engine::StableSwap {
                reserve0,
                reserve1,
                amp,
                fee_bps,
            } => {
                if amount_in == 0 || reserve0 == 0 || reserve1 == 0 {
                    return Err(SwapError::NoLiquidity);
                }
                let (x, y) = if zero_for_one {
                    (reserve0, reserve1)
                } else {
                    (reserve1, reserve0)
                };
                let d = math::stableswap_d(x, y, amp);
                let y_new = math::stableswap_y(x + amount_in, d, amp);
                let gross = y.saturating_sub(y_new);
                let out = gross.saturating_sub(gross * fee_bps as u128 / math::BPS as u128);
                if out == 0 || out >= y {
                    return Err(SwapError::NoLiquidity);
                }
                Ok(out)
            }
            Engine::Weighted {
                balance0,
                balance1,
                weight0_bps,
                fee_bps,
            } => {
                let (bin, bout, win, wout) = if zero_for_one {
                    (balance0, balance1, weight0_bps, math::BPS - weight0_bps)
                } else {
                    (balance1, balance0, math::BPS - weight0_bps, weight0_bps)
                };
                math::weighted_amount_out(amount_in, bin, bout, win, wout, fee_bps)
                    .ok_or(SwapError::NoLiquidity)
            }
            Engine::OrderBook {
                mid_price_e18,
                half_spread_bps,
                depth0,
                depth1,
            } => {
                if amount_in == 0 || mid_price_e18 == 0 {
                    return Err(SwapError::NoLiquidity);
                }
                let e18 = 10u128.pow(18);
                // Taker crosses the spread: selling token0 receives
                // mid·(1−s); selling token1 receives 1/(mid·(1+s)).
                let (out, depth) = if zero_for_one {
                    let px =
                        mid_price_e18 * (math::BPS - half_spread_bps) as u128 / math::BPS as u128;
                    (
                        mev_types::U256::from(amount_in)
                            .mul_u128(px)
                            .div_u128(e18)
                            .as_u128(),
                        depth1,
                    )
                } else {
                    let px =
                        mid_price_e18 * (math::BPS + half_spread_bps) as u128 / math::BPS as u128;
                    (
                        mev_types::U256::from(amount_in)
                            .mul_u128(e18)
                            .div_u128(px)
                            .as_u128(),
                        depth0,
                    )
                };
                if out == 0 {
                    return Err(SwapError::NoLiquidity);
                }
                if out > depth {
                    return Err(SwapError::InsufficientDepth);
                }
                Ok(out)
            }
        }
    }

    /// Execute the swap, mutating reserves. Returns the output amount.
    pub fn swap(
        &mut self,
        zero_for_one: bool,
        amount_in: u128,
        min_amount_out: u128,
    ) -> Result<u128, SwapError> {
        let out = self.quote(zero_for_one, amount_in)?;
        if out < min_amount_out {
            return Err(SwapError::Slippage {
                quoted: out,
                minimum: min_amount_out,
            });
        }
        match self {
            Engine::ConstantProduct {
                reserve0, reserve1, ..
            }
            | Engine::StableSwap {
                reserve0, reserve1, ..
            } => {
                if zero_for_one {
                    *reserve0 += amount_in;
                    *reserve1 -= out;
                } else {
                    *reserve1 += amount_in;
                    *reserve0 -= out;
                }
            }
            Engine::Weighted {
                balance0, balance1, ..
            } => {
                if zero_for_one {
                    *balance0 += amount_in;
                    *balance1 -= out;
                } else {
                    *balance1 += amount_in;
                    *balance0 -= out;
                }
            }
            Engine::OrderBook { depth0, depth1, .. } => {
                // Maker inventory: taker consumes one side, replenishes the other.
                if zero_for_one {
                    *depth1 -= out;
                    *depth0 += amount_in;
                } else {
                    *depth0 -= out;
                    *depth1 += amount_in;
                }
            }
        }
        Ok(out)
    }

    /// Spot price of token1 in token0 units scaled 1e18 (mid price,
    /// fee-exclusive). Used by arbitrage scanners.
    pub fn spot_price_e18(&self) -> Option<u128> {
        match *self {
            Engine::ConstantProduct {
                reserve0, reserve1, ..
            }
            | Engine::StableSwap {
                reserve0, reserve1, ..
            } => {
                // token1 per token0 = reserve1 / reserve0.
                math::cp_spot_price_e18(reserve1, reserve0)
            }
            Engine::Weighted {
                balance0,
                balance1,
                weight0_bps,
                ..
            } => {
                // price1per0 = (b1/w1) / (b0/w0)
                let w0 = weight0_bps as u128;
                let w1 = (math::BPS - weight0_bps) as u128;
                if balance0 == 0 || w1 == 0 {
                    return None;
                }
                mev_types::U256::from(balance1)
                    .mul_u128(w0)
                    .mul_u128(10u128.pow(18))
                    .div_u128(balance0 * w1)
                    .checked_u128()
            }
            Engine::OrderBook { mid_price_e18, .. } => Some(mid_price_e18),
        }
    }

    /// Reserve of the given side (0 or 1).
    pub fn reserve(&self, side: u8) -> u128 {
        match *self {
            Engine::ConstantProduct {
                reserve0, reserve1, ..
            }
            | Engine::StableSwap {
                reserve0, reserve1, ..
            } => {
                if side == 0 {
                    reserve0
                } else {
                    reserve1
                }
            }
            Engine::Weighted {
                balance0, balance1, ..
            } => {
                if side == 0 {
                    balance0
                } else {
                    balance1
                }
            }
            Engine::OrderBook { depth0, depth1, .. } => {
                if side == 0 {
                    depth0
                } else {
                    depth1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const E18: u128 = 10u128.pow(18);

    fn cp(r0: u128, r1: u128) -> Engine {
        Engine::ConstantProduct {
            reserve0: r0,
            reserve1: r1,
            fee_bps: 30,
            concentration: 1,
        }
    }

    #[test]
    fn cp_swap_updates_reserves() {
        let mut e = cp(1_000 * E18, 1_000 * E18);
        let out = e.swap(true, 10 * E18, 0).unwrap();
        assert!(out > 0 && out < 10 * E18);
        assert_eq!(e.reserve(0), 1_010 * E18);
        assert_eq!(e.reserve(1), 1_000 * E18 - out);
    }

    #[test]
    fn slippage_guard_enforced() {
        let mut e = cp(1_000 * E18, 1_000 * E18);
        let quoted = e.quote(true, 10 * E18).unwrap();
        let err = e.swap(true, 10 * E18, quoted + 1).unwrap_err();
        assert!(matches!(err, SwapError::Slippage { .. }));
        // Reserves untouched on failure.
        assert_eq!(e.reserve(0), 1_000 * E18);
    }

    #[test]
    fn concentration_lowers_impact() {
        let v2 = cp(1_000 * E18, 1_000 * E18);
        let v3 = Engine::ConstantProduct {
            reserve0: 1_000 * E18,
            reserve1: 1_000 * E18,
            fee_bps: 30,
            concentration: 8,
        };
        let big = 100 * E18;
        assert!(v3.quote(true, big).unwrap() > v2.quote(true, big).unwrap());
    }

    #[test]
    fn concentration_cannot_overdraw_real_reserve() {
        let v3 = Engine::ConstantProduct {
            reserve0: 10 * E18,
            reserve1: 10 * E18,
            fee_bps: 30,
            concentration: 100,
        };
        // A huge trade quoted on virtual reserves would exceed real ones.
        assert_eq!(v3.quote(true, 1_000 * E18), Err(SwapError::NoLiquidity));
    }

    #[test]
    fn stableswap_swap_and_back() {
        let mut e = Engine::StableSwap {
            reserve0: 1_000_000 * E18,
            reserve1: 1_000_000 * E18,
            amp: 100,
            fee_bps: 4,
        };
        let out = e.swap(true, 10_000 * E18, 0).unwrap();
        // Near 1:1 for a stable pair.
        assert!(out > 9_900 * E18 && out < 10_000 * E18);
    }

    #[test]
    fn orderbook_quotes_cross_spread() {
        let e = Engine::OrderBook {
            mid_price_e18: 2 * E18, // token1 per token0
            half_spread_bps: 50,
            depth0: 1_000 * E18,
            depth1: 1_000 * E18,
        };
        let sell0 = e.quote(true, 10 * E18).unwrap();
        assert_eq!(sell0, 10 * E18 * 2 * 9950 / 10_000);
        let sell1 = e.quote(false, 10 * E18).unwrap();
        // 10 token1 at price 2·1.005 ⇒ ~4.975 token0.
        assert!(sell1 < 5 * E18 && sell1 > 49 * E18 / 10);
    }

    #[test]
    fn orderbook_depth_exhaustion() {
        let e = Engine::OrderBook {
            mid_price_e18: E18,
            half_spread_bps: 10,
            depth0: E18,
            depth1: E18,
        };
        assert_eq!(e.quote(true, 100 * E18), Err(SwapError::InsufficientDepth));
    }

    #[test]
    fn spot_prices() {
        assert_eq!(cp(10 * E18, 20 * E18).spot_price_e18().unwrap(), 2 * E18);
        let w = Engine::Weighted {
            balance0: 10 * E18,
            balance1: 20 * E18,
            weight0_bps: 5000,
            fee_bps: 30,
        };
        assert_eq!(w.spot_price_e18().unwrap(), 2 * E18);
        // 80/20 pool: price1per0 = (b1·w0)/(b0·w1) = 20·0.8/(10·0.2) = 8.
        let w82 = Engine::Weighted {
            balance0: 10 * E18,
            balance1: 20 * E18,
            weight0_bps: 8000,
            fee_bps: 30,
        };
        assert_eq!(w82.spot_price_e18().unwrap(), 8 * E18);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every engine's executed swap equals its quote, and reserves move
        /// by exactly (in, −out).
        #[test]
        fn prop_swap_matches_quote(
            r0 in 10u128.pow(20)..=10u128.pow(26),
            r1 in 10u128.pow(20)..=10u128.pow(26),
            input in 10u128.pow(15)..=10u128.pow(23),
            dir in any::<bool>(),
        ) {
            for mut e in [
                cp(r0, r1),
                Engine::StableSwap { reserve0: r0, reserve1: r1, amp: 100, fee_bps: 4 },
                Engine::Weighted { balance0: r0, balance1: r1, weight0_bps: 5000, fee_bps: 30 },
            ] {
                let q = e.quote(dir, input);
                let (b0, b1) = (e.reserve(0), e.reserve(1));
                match (q, e.swap(dir, input, 0)) {
                    (Ok(q), Ok(s)) => {
                        prop_assert_eq!(q, s);
                        let (a0, a1) = (e.reserve(0), e.reserve(1));
                        if dir {
                            prop_assert_eq!(a0, b0 + input);
                            prop_assert_eq!(a1, b1 - s);
                        } else {
                            prop_assert_eq!(a1, b1 + input);
                            prop_assert_eq!(a0, b0 - s);
                        }
                    }
                    (Err(qe), Err(se)) => prop_assert_eq!(qe, se),
                    (q, s) => prop_assert!(false, "quote {:?} vs swap {:?}", q, s),
                }
            }
        }
    }
}
