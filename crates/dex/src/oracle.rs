//! Historical token→WETH price oracle.
//!
//! Plays two roles the paper fills with external services:
//! 1. the CoinGecko API used to convert token-denominated profits into ETH
//!    (§3.1.2, §3.1.3) — via [`PriceOracle::price_at`];
//! 2. the on-chain price feeds lending platforms use for collateral health
//!    (Chainlink-style) — via [`PriceOracle::price`].

use mev_types::{TokenId, U256};
use std::collections::{BTreeMap, HashMap};

/// Price history per token: wei of WETH per one whole token (10¹⁸ base
/// units), keyed by the block at which the price was posted.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct PriceOracle {
    history: HashMap<TokenId, BTreeMap<u64, u128>>,
}

impl PriceOracle {
    pub fn new() -> PriceOracle {
        PriceOracle::default()
    }

    /// Post a new price observation at `block`.
    pub fn update(&mut self, token: TokenId, block: u64, price_wei: u128) {
        self.history
            .entry(token)
            .or_default()
            .insert(block, price_wei);
    }

    /// Latest price at or before `block`. WETH is always 1e18 by identity.
    pub fn price_at(&self, token: TokenId, block: u64) -> Option<u128> {
        if token.is_weth() {
            return Some(10u128.pow(18));
        }
        self.history
            .get(&token)?
            .range(..=block)
            .next_back()
            .map(|(_, &p)| p)
    }

    /// Current (latest known) price.
    pub fn price(&self, token: TokenId) -> Option<u128> {
        if token.is_weth() {
            return Some(10u128.pow(18));
        }
        self.history.get(&token)?.values().last().copied()
    }

    /// Convert a token amount (base units) to wei at the block's price.
    pub fn to_wei_at(&self, token: TokenId, amount: u128, block: u64) -> Option<u128> {
        let p = self.price_at(token, block)?;
        U256::from(amount)
            .mul_u128(p)
            .div_u128(10u128.pow(18))
            .checked_u128()
    }

    /// Convert a token amount to wei at the current price.
    pub fn to_wei(&self, token: TokenId, amount: u128) -> Option<u128> {
        let p = self.price(token)?;
        U256::from(amount)
            .mul_u128(p)
            .div_u128(10u128.pow(18))
            .checked_u128()
    }

    /// Tokens with at least one observation.
    pub fn tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.history.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E18: u128 = 10u128.pow(18);

    #[test]
    fn weth_is_identity() {
        let o = PriceOracle::new();
        assert_eq!(o.price(TokenId::WETH), Some(E18));
        assert_eq!(o.price_at(TokenId::WETH, 0), Some(E18));
        assert_eq!(o.to_wei(TokenId::WETH, 42 * E18), Some(42 * E18));
    }

    #[test]
    fn unknown_token_is_none() {
        let o = PriceOracle::new();
        assert_eq!(o.price(TokenId(5)), None);
        assert_eq!(o.to_wei(TokenId(5), E18), None);
    }

    #[test]
    fn history_lookup_takes_latest_at_or_before() {
        let mut o = PriceOracle::new();
        o.update(TokenId(1), 100, 2 * E18);
        o.update(TokenId(1), 200, 3 * E18);
        assert_eq!(o.price_at(TokenId(1), 99), None);
        assert_eq!(o.price_at(TokenId(1), 100), Some(2 * E18));
        assert_eq!(o.price_at(TokenId(1), 150), Some(2 * E18));
        assert_eq!(o.price_at(TokenId(1), 200), Some(3 * E18));
        assert_eq!(o.price_at(TokenId(1), 9999), Some(3 * E18));
        assert_eq!(o.price(TokenId(1)), Some(3 * E18));
    }

    #[test]
    fn conversion_scales_by_price() {
        let mut o = PriceOracle::new();
        o.update(TokenId(1), 1, E18 / 2); // one token = 0.5 WETH
        assert_eq!(o.to_wei_at(TokenId(1), 10 * E18, 5), Some(5 * E18));
        // Half a token.
        assert_eq!(o.to_wei_at(TokenId(1), E18 / 2, 5), Some(E18 / 4));
    }

    #[test]
    fn tokens_iterates_known() {
        let mut o = PriceOracle::new();
        o.update(TokenId(1), 1, E18);
        o.update(TokenId(2), 1, E18);
        let mut toks: Vec<_> = o.tokens().collect();
        toks.sort();
        assert_eq!(toks, vec![TokenId(1), TokenId(2)]);
    }
}
