//! Shared AMM math: constant-product quoting and StableSwap invariants,
//! all overflow-free via 256-bit intermediates.

use mev_types::U256;

/// Basis-point denominator.
pub const BPS: u32 = 10_000;

/// Constant-product output amount with an LP fee in basis points:
/// `out = (in·(1-fee)·R_out) / (R_in + in·(1-fee))`.
///
/// Returns `None` on zero reserves or zero input.
pub fn cp_amount_out(
    amount_in: u128,
    reserve_in: u128,
    reserve_out: u128,
    fee_bps: u32,
) -> Option<u128> {
    if amount_in == 0 || reserve_in == 0 || reserve_out == 0 {
        return None;
    }
    debug_assert!(fee_bps < BPS);
    let in_with_fee = U256::from(amount_in).mul_u128((BPS - fee_bps) as u128);
    let numerator = {
        // in_with_fee * reserve_out — may exceed 256 bits for absurd inputs;
        // reserves in this simulation stay ≤ 2^100 so this is safe.
        in_with_fee.mul_u128(reserve_out)
    };
    let denominator = U256::from(reserve_in)
        .mul_u128(BPS as u128)
        .add(in_with_fee);
    let (q, _) = numerator.div(denominator);
    q.checked_u128()
}

/// Constant-product *input* required to receive `amount_out`:
/// the inverse of [`cp_amount_out`], rounded up.
pub fn cp_amount_in(
    amount_out: u128,
    reserve_in: u128,
    reserve_out: u128,
    fee_bps: u32,
) -> Option<u128> {
    if amount_out == 0 || reserve_in == 0 || amount_out >= reserve_out {
        return None;
    }
    let numerator = U256::from(reserve_in)
        .mul_u128(amount_out)
        .mul_u128(BPS as u128);
    // lint:allow(wei-math: amount_out >= reserve_out returns None above, so the difference cannot underflow)
    let denominator = U256::from(reserve_out - amount_out).mul_u128((BPS - fee_bps) as u128);
    let (q, r) = numerator.div(denominator);
    let mut v = q.checked_u128()?;
    if r != U256::ZERO {
        v = v.checked_add(1)?;
    }
    Some(v)
}

/// Spot price of the output token in input-token units, scaled by 1e18:
/// `price = R_in·1e18 / R_out` (how much input one unit of output costs,
/// ignoring fees and slippage).
pub fn cp_spot_price_e18(reserve_in: u128, reserve_out: u128) -> Option<u128> {
    if reserve_out == 0 {
        return None;
    }
    U256::from(reserve_in)
        .mul_u128(10u128.pow(18))
        .div_u128(reserve_out)
        .checked_u128()
}

/// StableSwap invariant `D` for a 2-coin pool with amplification `amp`
/// (already multiplied by n^(n-1) as in Curve's `Ann` convention is *not*
/// applied here — pass the raw A; we compute Ann = A·n^n internally).
///
/// Newton iteration: converges in < 64 rounds for realistic balances.
pub fn stableswap_d(x: u128, y: u128, amp: u64) -> u128 {
    let n: u128 = 2;
    let ann: u128 = amp as u128 * n * n;
    // lint:allow(panic: explicit checked_add invariant — a sum past u128::MAX means corrupted pool state, not a math edge case)
    let s = x.checked_add(y).expect("stableswap balance overflow");
    if s == 0 {
        return 0;
    }
    let mut d = s;
    for _ in 0..64 {
        // d_p = d^3 / (n^n · x · y)
        let d_p = U256::from(d)
            .mul_u128(d)
            .div_u128(x.max(1) * n)
            .mul_u128(d)
            .div_u128(y.max(1) * n)
            .as_u128();
        let d_prev = d;
        // d = (ann·s + n·d_p) · d / ((ann-1)·d + (n+1)·d_p)
        let num = U256::from(ann * s + n * d_p).mul_u128(d);
        let den = (ann - 1) * d + (n + 1) * d_p;
        d = num.div_u128(den).as_u128();
        if d.abs_diff(d_prev) <= 1 {
            break;
        }
    }
    d
}

/// Given new balance `x_new` of the input coin, solve for the output-coin
/// balance `y` that preserves the StableSwap invariant `d`.
pub fn stableswap_y(x_new: u128, d: u128, amp: u64) -> u128 {
    let n: u128 = 2;
    let ann: u128 = amp as u128 * n * n;
    // c = d^3 / (n^2 · x_new · ann)  (2-coin specialisation).
    // Kept as U256: for large D and small x_new it exceeds u128.
    let c = U256::from(d)
        .mul_u128(d)
        .div_u128(x_new.max(1) * n)
        .mul_u128(d)
        .div_u128(ann * n);
    let b = x_new + d / ann; // b - d is the linear term
    let mut y = d;
    for _ in 0..64 {
        let y_prev = y;
        // y = (y² + c) / (2y + b − d); the denominator stays positive while
        // converging from above but is clamped defensively.
        let num = U256::from(y).mul_u128(y).add(c);
        let den = (2 * y + b).saturating_sub(d).max(1);
        y = num.div_u128(den).as_u128();
        if y.abs_diff(y_prev) <= 1 {
            break;
        }
    }
    y
}

/// Weighted-pool (Balancer) output:
/// `out = B_out · (1 − (B_in / (B_in + in·(1−fee)))^(w_in/w_out))`.
///
/// Uses `f64` for the fractional power — deterministic under IEEE-754 and
/// accurate to ~1e-12 relative, far below LP-fee magnitude.
pub fn weighted_amount_out(
    amount_in: u128,
    balance_in: u128,
    balance_out: u128,
    weight_in_bps: u32,
    weight_out_bps: u32,
    fee_bps: u32,
) -> Option<u128> {
    if amount_in == 0 || balance_in == 0 || balance_out == 0 || weight_out_bps == 0 {
        return None;
    }
    let in_fee = amount_in as f64 * (BPS - fee_bps) as f64 / BPS as f64;
    let base = balance_in as f64 / (balance_in as f64 + in_fee);
    let exp = weight_in_bps as f64 / weight_out_bps as f64;
    let out = balance_out as f64 * (1.0 - base.powf(exp));
    if !out.is_finite() || out < 0.0 {
        return None;
    }
    let out = out as u128;
    (out < balance_out).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const E18: u128 = 10u128.pow(18);

    #[test]
    fn cp_small_trade_near_spot() {
        // Balanced pool, tiny trade: out ≈ in minus fee.
        let out = cp_amount_out(E18, 1_000_000 * E18, 1_000_000 * E18, 30).unwrap();
        let expected = E18 * 9970 / 10_000;
        assert!(
            out.abs_diff(expected) < E18 / 1000,
            "out={out} expected≈{expected}"
        );
    }

    #[test]
    fn cp_round_trip_never_profits() {
        let (r0, r1) = (500_000 * E18, 2_000_000 * E18);
        let input = 10_000 * E18;
        let got = cp_amount_out(input, r0, r1, 30).unwrap();
        // Swap back on the updated reserves.
        let back = cp_amount_out(got, r1 - got, r0 + input, 30).unwrap();
        assert!(back < input, "round trip must lose to fees+impact");
    }

    #[test]
    fn cp_amount_in_inverts_amount_out() {
        let (r0, r1) = (700_000 * E18, 300_000 * E18);
        let want_out = 1234 * E18;
        let need_in = cp_amount_in(want_out, r0, r1, 30).unwrap();
        let got_out = cp_amount_out(need_in, r0, r1, 30).unwrap();
        assert!(got_out >= want_out);
        // And not grossly more (within rounding of one base unit input).
        let less = cp_amount_out(need_in - 1, r0, r1, 30).unwrap();
        assert!(less <= want_out);
    }

    #[test]
    fn cp_edge_cases() {
        assert_eq!(cp_amount_out(0, 100, 100, 30), None);
        assert_eq!(cp_amount_out(10, 0, 100, 30), None);
        assert_eq!(cp_amount_out(10, 100, 0, 30), None);
        assert_eq!(cp_amount_in(100, 100, 100, 30), None); // out >= reserve
        assert_eq!(cp_amount_in(0, 100, 100, 30), None);
    }

    #[test]
    fn spot_price_balanced_pool_is_one() {
        assert_eq!(cp_spot_price_e18(E18 * 5, E18 * 5).unwrap(), E18);
        assert_eq!(cp_spot_price_e18(E18 * 10, E18 * 5).unwrap(), 2 * E18);
    }

    #[test]
    fn stableswap_d_balanced() {
        // Balanced pool: D = sum of balances.
        let d = stableswap_d(1_000_000 * E18, 1_000_000 * E18, 100);
        assert!(d.abs_diff(2_000_000 * E18) <= 2);
    }

    #[test]
    fn stableswap_low_slippage_vs_cp() {
        let (x, y) = (1_000_000 * E18, 1_000_000 * E18);
        let amount = 100_000 * E18; // 10% of reserves
        let d = stableswap_d(x, y, 200);
        let y_new = stableswap_y(x + amount, d, 200);
        let ss_out = y - y_new;
        let cp_out = cp_amount_out(amount, x, y, 0).unwrap();
        assert!(
            ss_out > cp_out,
            "stableswap should beat cp for like-priced assets"
        );
        assert!(
            ss_out < amount,
            "but can never give more than 1:1 when balanced"
        );
    }

    #[test]
    fn weighted_5050_matches_cp_shape() {
        let out_w =
            weighted_amount_out(1000 * E18, 1_000_000 * E18, 1_000_000 * E18, 5000, 5000, 30)
                .unwrap();
        let out_cp = cp_amount_out(1000 * E18, 1_000_000 * E18, 1_000_000 * E18, 30).unwrap();
        // 50/50 weighted equals constant product (up to f64 rounding).
        let diff = out_w.abs_diff(out_cp) as f64 / out_cp as f64;
        assert!(diff < 1e-9, "relative diff {diff}");
    }

    #[test]
    fn weighted_edge_cases() {
        assert_eq!(weighted_amount_out(0, 100, 100, 5000, 5000, 30), None);
        assert_eq!(weighted_amount_out(10, 0, 100, 5000, 5000, 30), None);
        assert_eq!(weighted_amount_out(10, 100, 100, 5000, 0, 30), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// k = R_in·R_out never decreases across a fee-charging swap.
        #[test]
        fn prop_cp_k_never_decreases(
            r0 in 1_000u128..=10u128.pow(30),
            r1 in 1_000u128..=10u128.pow(30),
            input in 1u128..=10u128.pow(28),
        ) {
            if let Some(out) = cp_amount_out(input, r0, r1, 30) {
                prop_assert!(out < r1);
                let k_before = U256::mul_u128_u128(r0, r1);
                let k_after = U256::mul_u128_u128(r0 + input, r1 - out);
                prop_assert!(k_after >= k_before);
            }
        }

        /// Output is monotone in input.
        #[test]
        fn prop_cp_monotone(
            r0 in 10u128.pow(6)..=10u128.pow(27),
            r1 in 10u128.pow(6)..=10u128.pow(27),
            a in 1u128..=10u128.pow(26),
            b in 1u128..=10u128.pow(26),
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let out_lo = cp_amount_out(lo, r0, r1, 30).unwrap();
            let out_hi = cp_amount_out(hi, r0, r1, 30).unwrap();
            prop_assert!(out_lo <= out_hi);
        }

        /// StableSwap invariant is preserved (within Newton tolerance) by get_y.
        #[test]
        fn prop_stableswap_invariant_preserved(
            x in 10u128.pow(20)..=10u128.pow(26),
            y in 10u128.pow(20)..=10u128.pow(26),
            dx in 10u128.pow(18)..=10u128.pow(24),
            amp in 10u64..=500,
        ) {
            let d0 = stableswap_d(x, y, amp);
            let y_new = stableswap_y(x + dx, d0, amp);
            prop_assert!(y_new <= y, "input increases, output balance must not");
            let d1 = stableswap_d(x + dx, y_new, amp);
            // Tolerance: Newton converges to ±few parts in 1e9.
            let tol = d0 / 1_000_000 + 10;
            prop_assert!(d0.abs_diff(d1) <= tol, "D drift {} vs tol {}", d0.abs_diff(d1), tol);
        }

        /// Weighted pool never emits more than its out-balance and is
        /// monotone in input.
        #[test]
        fn prop_weighted_bounded_monotone(
            b0 in 10u128.pow(18)..=10u128.pow(27),
            b1 in 10u128.pow(18)..=10u128.pow(27),
            a in 1u128..=10u128.pow(25),
            w in 2000u32..=8000,
        ) {
            if let Some(out) = weighted_amount_out(a, b0, b1, w, BPS - w, 30) {
                prop_assert!(out < b1);
                if let Some(out2) = weighted_amount_out(a * 2, b0, b1, w, BPS - w, 30) {
                    prop_assert!(out2 + 1 >= out); // +1 for f64 rounding slack
                }
            }
        }
    }
}
