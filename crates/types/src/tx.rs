//! Transactions and the action payloads the simulated "contracts" execute.
//!
//! Real Ethereum transactions carry opaque calldata; the detectors in
//! `mev-core` never look at calldata, only at receipts and event logs.
//! We therefore represent payloads as a typed [`Action`] enum that the
//! execution engine in `mev-chain` interprets natively, charging gas and
//! emitting the same logs the real contracts would.

use crate::ids::{LendingPlatformId, PoolId, TokenId};
use crate::primitives::{Address, Digest, H256};
use crate::units::{Gas, Wei};

/// A transaction hash.
pub type TxHash = H256;

/// Fee terms: legacy fixed gas price, or EIP-1559 after the London fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TxFee {
    /// Pre-London: a single gas price, paid in full to the miner.
    Legacy { gas_price: Wei },
    /// Post-London: the base fee is burned, the priority fee (capped by
    /// `max_fee - base_fee`) goes to the miner.
    Eip1559 { max_fee: Wei, max_priority: Wei },
}

impl TxFee {
    /// The price per gas actually charged to the sender given `base_fee`.
    pub fn effective_gas_price(&self, base_fee: Wei) -> Wei {
        match *self {
            TxFee::Legacy { gas_price } => gas_price,
            TxFee::Eip1559 {
                max_fee,
                max_priority,
            } => (base_fee + max_priority).min(max_fee),
        }
    }

    /// The per-gas amount the miner receives given `base_fee`.
    pub fn miner_tip_per_gas(&self, base_fee: Wei) -> Wei {
        self.effective_gas_price(base_fee)
            .saturating_sub(match *self {
                TxFee::Legacy { .. } => Wei::ZERO,
                TxFee::Eip1559 { .. } => base_fee,
            })
    }

    /// The maximum per-gas price the sender is willing to pay — the mempool
    /// ordering key miners sort by.
    pub fn bid_per_gas(&self) -> Wei {
        match *self {
            TxFee::Legacy { gas_price } => gas_price,
            TxFee::Eip1559 { max_fee, .. } => max_fee,
        }
    }

    /// True if the transaction can be included under `base_fee`.
    pub fn is_includable(&self, base_fee: Wei) -> bool {
        self.bid_per_gas() >= base_fee
    }
}

/// One swap leg on a specific pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SwapCall {
    pub pool: PoolId,
    pub token_in: TokenId,
    pub token_out: TokenId,
    /// Input amount in token base units.
    pub amount_in: u128,
    /// Slippage guard: revert if the output is below this.
    pub min_amount_out: u128,
}

/// Typed payloads executed natively by `mev-chain`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Action {
    /// Plain value transfer.
    Transfer { to: Address, value: Wei },
    /// Single swap on a DEX pool.
    Swap(SwapCall),
    /// Atomic multi-hop route (the shape of an arbitrage transaction):
    /// every leg must succeed or the whole transaction reverts.
    Route(Vec<SwapCall>),
    /// Deposit collateral into a lending platform.
    Deposit {
        platform: LendingPlatformId,
        token: TokenId,
        amount: u128,
    },
    /// Borrow against deposited collateral.
    Borrow {
        platform: LendingPlatformId,
        token: TokenId,
        amount: u128,
    },
    /// Repay borrowed funds.
    Repay {
        platform: LendingPlatformId,
        token: TokenId,
        amount: u128,
    },
    /// Fixed-spread liquidation of an unhealthy loan.
    Liquidate {
        platform: LendingPlatformId,
        borrower: Address,
        debt_token: TokenId,
        /// Debt to repay, in debt-token base units.
        repay_amount: u128,
    },
    /// Privileged oracle price update: new WETH value of one whole token
    /// (10¹⁸ base units), expressed in wei.
    OracleUpdate { token: TokenId, price_wei: u128 },
    /// Flash loan: borrow, run the inner actions, repay plus fee — or
    /// revert everything (§2.3).
    FlashLoan {
        platform: LendingPlatformId,
        token: TokenId,
        amount: u128,
        inner: Vec<Action>,
    },
    /// Mining-pool payout batch (the paper's `miner payout` bundle type).
    Payout { recipients: Vec<(Address, Wei)> },
    /// Opaque non-DeFi activity: consumes gas, emits nothing.
    Other { gas: Gas },
}

impl Action {
    /// Swap legs contained in this action (including inside flash loans).
    pub fn swap_legs(&self) -> Vec<SwapCall> {
        match self {
            Action::Swap(s) => vec![*s],
            Action::Route(legs) => legs.clone(),
            Action::FlashLoan { inner, .. } => inner.iter().flat_map(|a| a.swap_legs()).collect(),
            _ => vec![],
        }
    }
}

/// Ground-truth label attached by the *generating agent*, used only to
/// validate detector precision/recall. Detectors must never read this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GroundTruth {
    SandwichFront,
    SandwichBack,
    SandwichVictim,
    Arbitrage,
    Liquidation,
    OrdinaryTrade,
    Payout,
    Background,
}

/// A simulated transaction. Signatures are elided: `from` is authoritative.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Transaction {
    pub from: Address,
    pub nonce: u64,
    pub fee: TxFee,
    pub gas_limit: Gas,
    pub action: Action,
    /// Direct transfer to the block's coinbase on success — the Flashbots
    /// "coinbase transfer" tip channel (§3.1.1).
    pub coinbase_tip: Wei,
    /// Ground truth for detector validation; not visible to detectors.
    pub ground_truth: Option<GroundTruth>,
    /// Cached content hash.
    hash: TxHash,
}

impl Transaction {
    /// Build a transaction, computing its content hash.
    pub fn new(
        from: Address,
        nonce: u64,
        fee: TxFee,
        gas_limit: Gas,
        action: Action,
        coinbase_tip: Wei,
        ground_truth: Option<GroundTruth>,
    ) -> Transaction {
        let mut d = Digest::new("tx");
        d.update(from.as_bytes());
        d.update_u64(nonce);
        match fee {
            TxFee::Legacy { gas_price } => {
                d.update_u64(0);
                d.update_u128(gas_price.0);
            }
            TxFee::Eip1559 {
                max_fee,
                max_priority,
            } => {
                d.update_u64(1);
                d.update_u128(max_fee.0);
                d.update_u128(max_priority.0);
            }
        }
        d.update_u64(gas_limit.0);
        d.update_u128(coinbase_tip.0);
        // Debug formatting is deterministic and structurally complete.
        d.update(format!("{action:?}").as_bytes());
        let hash = d.finish();
        Transaction {
            from,
            nonce,
            fee,
            gas_limit,
            action,
            coinbase_tip,
            ground_truth,
            hash,
        }
    }

    /// Content hash.
    pub fn hash(&self) -> TxHash {
        self.hash
    }

    /// Mempool ordering key.
    pub fn bid_per_gas(&self) -> Wei {
        self.fee.bid_per_gas()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ExchangeId;
    use crate::units::{eth, gwei};

    fn swap() -> Action {
        Action::Swap(SwapCall {
            pool: PoolId {
                exchange: ExchangeId::UniswapV2,
                index: 0,
            },
            token_in: TokenId::WETH,
            token_out: TokenId(1),
            amount_in: 100,
            min_amount_out: 90,
        })
    }

    fn tx(nonce: u64, price: Wei) -> Transaction {
        Transaction::new(
            Address::from_index(1),
            nonce,
            TxFee::Legacy { gas_price: price },
            Gas(100_000),
            swap(),
            Wei::ZERO,
            None,
        )
    }

    #[test]
    fn hash_distinguishes_nonce_and_fee() {
        assert_ne!(tx(1, gwei(50)).hash(), tx(2, gwei(50)).hash());
        assert_ne!(tx(1, gwei(50)).hash(), tx(1, gwei(51)).hash());
        assert_eq!(tx(1, gwei(50)).hash(), tx(1, gwei(50)).hash());
    }

    #[test]
    fn legacy_fee_semantics() {
        let fee = TxFee::Legacy {
            gas_price: gwei(80),
        };
        assert_eq!(fee.effective_gas_price(gwei(30)), gwei(80));
        // Legacy: the whole price goes to the miner.
        assert_eq!(fee.miner_tip_per_gas(gwei(30)), gwei(80));
        assert_eq!(fee.bid_per_gas(), gwei(80));
        assert!(fee.is_includable(gwei(80)));
        assert!(!fee.is_includable(gwei(81)));
    }

    #[test]
    fn eip1559_fee_semantics() {
        let fee = TxFee::Eip1559 {
            max_fee: gwei(100),
            max_priority: gwei(2),
        };
        // base + priority below cap.
        assert_eq!(fee.effective_gas_price(gwei(30)), gwei(32));
        assert_eq!(fee.miner_tip_per_gas(gwei(30)), gwei(2));
        // cap binds: priority squeezed.
        assert_eq!(fee.effective_gas_price(gwei(99)), gwei(100));
        assert_eq!(fee.miner_tip_per_gas(gwei(99)), gwei(1));
        // base above cap: not includable.
        assert!(!fee.is_includable(gwei(101)));
    }

    #[test]
    fn swap_legs_sees_through_flash_loans() {
        let fl = Action::FlashLoan {
            platform: LendingPlatformId::AaveV2,
            token: TokenId::WETH,
            amount: eth(100).0,
            inner: vec![swap(), swap()],
        };
        assert_eq!(fl.swap_legs().len(), 2);
        assert_eq!(
            Action::Transfer {
                to: Address::ZERO,
                value: eth(1)
            }
            .swap_legs()
            .len(),
            0
        );
        assert_eq!(Action::Route(vec![]).swap_legs().len(), 0);
    }
}
