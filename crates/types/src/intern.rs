//! Hand-rolled, zero-dependency string-table-style interner for the hot
//! decode path: maps every `Address` / `TxHash` seen while building the
//! block index to a dense `u32` id, so detectors group and compare by
//! integer instead of hashing raw 20/32-byte keys per event.
//!
//! Design constraints:
//! - deterministic: ids are assigned in first-intern order, so two
//!   interners fed the same key sequence are bit-identical (the index
//!   equality and golden tests rely on this);
//! - open addressing with linear probing over a power-of-two slot table
//!   (no `std::collections::HashMap` — the probe order of the slot table
//!   is never exposed, iteration goes through [`Interner::keys_in_order`]);
//! - ids are typed ([`InternId<K>`]) so an address id cannot be used to
//!   resolve a tx hash.

use crate::primitives::{Address, H256};
use std::marker::PhantomData;

/// Sentinel for an empty probe slot.
const EMPTY: u32 = u32::MAX;

/// Initial slot-table capacity (must be a power of two).
const INITIAL_SLOTS: usize = 16;

/// A key that can be interned: cheap to copy, comparable, and hashable
/// to a deterministic 64-bit value (no `RandomState` — runs must be
/// reproducible across processes).
pub trait InternKey: Copy + Eq {
    fn hash64(&self) -> u64;
}

/// SplitMix64-style fold over little-endian 8-byte chunks. Deterministic
/// and byte-order independent across platforms we target.
fn fold_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h.wrapping_mul(0x94D0_49BB_1331_11EB) ^ (h >> 31)
}

impl InternKey for Address {
    fn hash64(&self) -> u64 {
        fold_bytes(&self.0)
    }
}

impl InternKey for H256 {
    fn hash64(&self) -> u64 {
        fold_bytes(&self.0)
    }
}

/// Dense id for an interned key. `u32`-sized, `Copy`, and typed by the
/// key it came from. Ids are only meaningful against the interner (or
/// index) that issued them.
pub struct InternId<K> {
    raw: u32,
    _key: PhantomData<fn() -> K>,
}

impl<K> InternId<K> {
    fn new(raw: u32) -> InternId<K> {
        InternId {
            raw,
            _key: PhantomData,
        }
    }

    /// The dense id, suitable for indexing side tables sized by
    /// [`Interner::len`].
    pub fn raw(self) -> u32 {
        self.raw
    }
}

// Manual impls: derives would put unnecessary bounds on `K`.
impl<K> Clone for InternId<K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K> Copy for InternId<K> {}
impl<K> PartialEq for InternId<K> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<K> Eq for InternId<K> {}
impl<K> PartialOrd for InternId<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for InternId<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<K> std::hash::Hash for InternId<K> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<K> std::fmt::Debug for InternId<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InternId({})", self.raw)
    }
}

/// Id type for interned [`Address`]es.
pub type AddrId = InternId<Address>;
/// Id type for interned [`crate::TxHash`]es.
pub type HashId = InternId<H256>;

/// Deduplicating key → dense-`u32`-id table.
///
/// Insertion order is the id order: the first distinct key interned gets
/// id 0, the next id 1, and so on — which makes any table indexed by
/// `InternId::raw()` deterministic given a deterministic key stream.
#[derive(Debug, Clone)]
pub struct Interner<K> {
    /// Keys in id order; `keys[id]` is the key behind `InternId(id)`.
    keys: Vec<K>,
    /// Open-addressing probe table of ids (power-of-two length,
    /// `EMPTY`-filled). Probe order is an implementation detail — never
    /// iterate this table.
    slots: Vec<u32>,
}

impl<K: InternKey> Interner<K> {
    pub fn new() -> Interner<K> {
        Interner {
            keys: Vec::new(),
            slots: vec![EMPTY; INITIAL_SLOTS],
        }
    }

    pub fn with_capacity(keys: usize) -> Interner<K> {
        let slots = (keys * 2).next_power_of_two().max(INITIAL_SLOTS);
        Interner {
            keys: Vec::with_capacity(keys),
            slots: vec![EMPTY; slots],
        }
    }

    /// Number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Intern `key`, returning its dense id. Re-interning an existing key
    /// returns the id assigned the first time.
    pub fn intern(&mut self, key: K) -> InternId<K> {
        // Grow before the probe so the load factor stays below 7/8 and
        // linear probing terminates quickly.
        if (self.keys.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (key.hash64() as usize) & mask;
        loop {
            let id = self.slots[i];
            if id == EMPTY {
                let new_id = self.keys.len() as u32;
                self.slots[i] = new_id;
                self.keys.push(key);
                return InternId::new(new_id);
            }
            if self.keys[id as usize] == key {
                return InternId::new(id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Look up a key without inserting.
    pub fn lookup(&self, key: &K) -> Option<InternId<K>> {
        let mask = self.slots.len() - 1;
        let mut i = (key.hash64() as usize) & mask;
        loop {
            let id = self.slots[i];
            if id == EMPTY {
                return None;
            }
            if self.keys[id as usize] == *key {
                return Some(InternId::new(id));
            }
            i = (i + 1) & mask;
        }
    }

    /// Resolve an id back to its key. Ids must come from this interner;
    /// a foreign id resolves to an arbitrary key or panics on bounds.
    pub fn resolve(&self, id: InternId<K>) -> K {
        self.keys[id.raw as usize]
    }

    /// The sanctioned iteration surface: keys in id (= first-intern)
    /// order. The probe table's slot order is never exposed.
    pub fn keys_in_order(&self) -> &[K] {
        &self.keys
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<K>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![EMPTY; new_len];
        for (id, key) in self.keys.iter().enumerate() {
            let mut i = (key.hash64() as usize) & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = id as u32;
        }
        self.slots = slots;
    }
}

impl<K: InternKey> Default for Interner<K> {
    fn default() -> Self {
        Interner::new()
    }
}

// Equality is id-table equality: two interners are equal iff they saw
// the same distinct-key sequence (slot layout is then identical too, so
// comparing `keys` alone is sufficient and cheaper).
impl<K: InternKey> PartialEq for Interner<K> {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys
    }
}
impl<K: InternKey> Eq for Interner<K> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_id() {
        let mut it: Interner<Address> = Interner::new();
        let a = it.intern(Address::from_index(1));
        let b = it.intern(Address::from_index(2));
        let a2 = it.intern(Address::from_index(1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn ids_are_first_intern_order_and_resolve_roundtrips() {
        let mut it: Interner<Address> = Interner::new();
        for i in 0..10u64 {
            let id = it.intern(Address::from_index(i));
            assert_eq!(id.raw(), i as u32);
        }
        for i in 0..10u64 {
            let id = it.lookup(&Address::from_index(i)).expect("present");
            assert_eq!(it.resolve(id), Address::from_index(i));
        }
        let in_order: Vec<Address> = (0..10u64).map(Address::from_index).collect();
        assert_eq!(it.keys_in_order(), &in_order[..]);
    }

    fn h(i: u64) -> H256 {
        let mut b = [0u8; 32];
        b[..8].copy_from_slice(&i.to_le_bytes());
        H256(b)
    }

    #[test]
    fn growth_preserves_ids() {
        let mut it: Interner<H256> = Interner::with_capacity(4);
        let n = 10_000u64;
        let ids: Vec<HashId> = (0..n).map(|i| it.intern(h(i))).collect();
        assert_eq!(it.len(), n as usize);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.raw(), i as u32);
            assert_eq!(it.resolve(*id), h(i as u64));
            assert_eq!(it.lookup(&h(i as u64)), Some(*id));
        }
    }

    #[test]
    fn lookup_of_absent_key_is_none() {
        let mut it: Interner<Address> = Interner::new();
        it.intern(Address::from_index(7));
        assert_eq!(it.lookup(&Address::from_index(8)), None);
    }

    #[test]
    fn interners_with_same_key_stream_are_equal() {
        let mut a: Interner<Address> = Interner::new();
        let mut b: Interner<Address> = Interner::with_capacity(100);
        for i in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            a.intern(Address::from_index(i));
            b.intern(Address::from_index(i));
        }
        assert_eq!(a, b);
        let mut c: Interner<Address> = Interner::new();
        c.intern(Address::from_index(1));
        assert_ne!(a, c);
    }

    #[test]
    fn typed_ids_do_not_cross() {
        // Compile-time property, exercised by using both aliases side by
        // side; `AddrId` and `HashId` are distinct types.
        let mut addrs: Interner<Address> = Interner::new();
        let mut hashes: Interner<H256> = Interner::new();
        let a: AddrId = addrs.intern(Address::from_index(1));
        let h: HashId = hashes.intern(h(1));
        assert_eq!(a.raw(), 0);
        assert_eq!(h.raw(), 0);
    }
}
