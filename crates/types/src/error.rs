//! Error types shared across the workspace.

use std::fmt;

/// Errors arising from primitive-type operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Arithmetic overflow in an amount computation.
    Overflow(&'static str),
    /// A value failed validation (e.g. month out of range).
    Invalid(&'static str),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Overflow(ctx) => write!(f, "arithmetic overflow: {ctx}"),
            TypeError::Invalid(ctx) => write!(f, "invalid value: {ctx}"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        assert!(TypeError::Overflow("reserve mul")
            .to_string()
            .contains("reserve mul"));
        assert!(TypeError::Invalid("month").to_string().contains("month"));
    }
}
