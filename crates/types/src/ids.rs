//! Identifiers for tokens, exchanges, liquidity pools, and lending platforms.
//!
//! The paper's detectors distinguish *which* exchange or platform emitted an
//! event (sandwiches are per-pool, arbitrage is cross-exchange, liquidations
//! are per-platform), so these identifiers appear in every event log.

use std::fmt;

/// A fungible token. `TokenId(0)` is reserved for wrapped ether (WETH).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct TokenId(pub u32);

impl TokenId {
    /// Wrapped ether — the numéraire all profits are converted into,
    /// mirroring the paper's CoinGecko token→ETH conversion.
    pub const WETH: TokenId = TokenId(0);

    pub fn is_weth(&self) -> bool {
        *self == TokenId::WETH
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_weth() {
            write!(f, "WETH")
        } else {
            write!(f, "TKN{}", self.0)
        }
    }
}

/// The DEX protocols the paper's detectors cover (§3.1.1–§3.1.2).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub enum ExchangeId {
    UniswapV1,
    UniswapV2,
    UniswapV3,
    SushiSwap,
    Bancor,
    Curve,
    Balancer,
    ZeroEx,
}

impl ExchangeId {
    /// All supported exchanges, in a stable order.
    pub const ALL: [ExchangeId; 8] = [
        ExchangeId::UniswapV1,
        ExchangeId::UniswapV2,
        ExchangeId::UniswapV3,
        ExchangeId::SushiSwap,
        ExchangeId::Bancor,
        ExchangeId::Curve,
        ExchangeId::Balancer,
        ExchangeId::ZeroEx,
    ];

    /// Exchanges the sandwich detector covers (§3.1.1: Bancor, SushiSwap,
    /// Uniswap V1/V2/V3).
    pub fn sandwich_covered(&self) -> bool {
        matches!(
            self,
            ExchangeId::Bancor
                | ExchangeId::SushiSwap
                | ExchangeId::UniswapV1
                | ExchangeId::UniswapV2
                | ExchangeId::UniswapV3
        )
    }

    /// Exchanges the arbitrage detector covers (§3.1.2: 0x, Balancer, Bancor,
    /// Curve, SushiSwap, Uniswap V2/V3).
    pub fn arbitrage_covered(&self) -> bool {
        !matches!(self, ExchangeId::UniswapV1)
    }
}

impl fmt::Display for ExchangeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExchangeId::UniswapV1 => "UniswapV1",
            ExchangeId::UniswapV2 => "UniswapV2",
            ExchangeId::UniswapV3 => "UniswapV3",
            ExchangeId::SushiSwap => "SushiSwap",
            ExchangeId::Bancor => "Bancor",
            ExchangeId::Curve => "Curve",
            ExchangeId::Balancer => "Balancer",
            ExchangeId::ZeroEx => "0x",
        };
        write!(f, "{s}")
    }
}

/// A liquidity pool within an exchange (one trading pair / pool contract).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct PoolId {
    pub exchange: ExchangeId,
    /// Index of the pool within its exchange.
    pub index: u32,
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.exchange, self.index)
    }
}

/// Lending platforms the liquidation and flash-loan detectors cover
/// (§3.1.3: Aave V1/V2, Compound; §3.4: Aave, dYdX).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub enum LendingPlatformId {
    AaveV1,
    AaveV2,
    Compound,
    DyDx,
}

impl LendingPlatformId {
    pub const ALL: [LendingPlatformId; 4] = [
        LendingPlatformId::AaveV1,
        LendingPlatformId::AaveV2,
        LendingPlatformId::Compound,
        LendingPlatformId::DyDx,
    ];

    /// Platforms offering flash loans (§3.4).
    pub fn offers_flash_loans(&self) -> bool {
        matches!(
            self,
            LendingPlatformId::AaveV1 | LendingPlatformId::AaveV2 | LendingPlatformId::DyDx
        )
    }

    /// Platforms with fixed-spread liquidations (all modelled platforms;
    /// auction liquidation exists in `mev-lending` for completeness but the
    /// paper's detector targets fixed-spread).
    pub fn fixed_spread(&self) -> bool {
        !matches!(self, LendingPlatformId::DyDx)
    }
}

impl fmt::Display for LendingPlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LendingPlatformId::AaveV1 => "AaveV1",
            LendingPlatformId::AaveV2 => "AaveV2",
            LendingPlatformId::Compound => "Compound",
            LendingPlatformId::DyDx => "dYdX",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weth_is_token_zero() {
        assert!(TokenId::WETH.is_weth());
        assert!(!TokenId(1).is_weth());
        assert_eq!(TokenId::WETH.to_string(), "WETH");
        assert_eq!(TokenId(3).to_string(), "TKN3");
    }

    #[test]
    fn sandwich_coverage_matches_paper() {
        let covered: Vec<_> = ExchangeId::ALL
            .iter()
            .filter(|e| e.sandwich_covered())
            .collect();
        assert_eq!(covered.len(), 5);
        assert!(!ExchangeId::Curve.sandwich_covered());
        assert!(!ExchangeId::ZeroEx.sandwich_covered());
    }

    #[test]
    fn arbitrage_coverage_matches_paper() {
        assert!(!ExchangeId::UniswapV1.arbitrage_covered());
        assert_eq!(
            ExchangeId::ALL
                .iter()
                .filter(|e| e.arbitrage_covered())
                .count(),
            7
        );
    }

    #[test]
    fn flash_loan_platforms() {
        assert!(LendingPlatformId::AaveV2.offers_flash_loans());
        assert!(LendingPlatformId::DyDx.offers_flash_loans());
        assert!(!LendingPlatformId::Compound.offers_flash_loans());
    }

    #[test]
    fn pool_display() {
        let p = PoolId {
            exchange: ExchangeId::UniswapV2,
            index: 7,
        };
        assert_eq!(p.to_string(), "UniswapV2#7");
    }
}
