//! Block-number ↔ wall-clock mapping and calendar bucketing.
//!
//! The paper buckets every measurement by calendar month (Figures 3–5, 7)
//! or day (Figure 6) over the range block 10,000,000 (May 4th 2020) to
//! 14,444,725 (March 23rd 2022). The simulation compresses that range by a
//! configurable scale factor but keeps the same calendar span, so a
//! [`Timeline`] maps simulated block numbers onto real dates.

use std::fmt;

/// Average Ethereum block interval in seconds (pre-merge).
pub const SECONDS_PER_BLOCK: u64 = 13;

const DAYS_PER_MONTH: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A calendar month, counted as `year * 12 + (month - 1)`.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Month(pub u32);

impl Month {
    /// Construct from calendar year and 1-based month.
    pub fn new(year: u32, month: u32) -> Month {
        assert!((1..=12).contains(&month), "month out of range");
        Month(year * 12 + (month - 1))
    }

    pub fn year(&self) -> u32 {
        self.0 / 12
    }

    /// 1-based month within the year.
    pub fn month(&self) -> u32 {
        self.0 % 12 + 1
    }

    /// The next calendar month.
    pub fn next(&self) -> Month {
        Month(self.0 + 1)
    }

    /// Unix timestamp of 00:00 UTC on the first day of the month — the
    /// boundary streaming decoders cache to avoid re-deriving the civil
    /// date per block.
    pub fn start_timestamp(&self) -> u64 {
        timestamp_of_ymd(self.year() as u64, self.month() as u64, 1)
    }

    /// Months from `self` up to and including `end`.
    pub fn range_inclusive(self, end: Month) -> impl Iterator<Item = Month> {
        (self.0..=end.0).map(Month)
    }
}

impl fmt::Debug for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year(), self.month())
    }
}

/// A calendar day, counted as days since 1970-01-01.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Day(pub u64);

impl Day {
    /// The day containing a unix timestamp.
    pub fn from_timestamp(ts: u64) -> Day {
        Day(ts / 86_400)
    }

    /// Unix timestamp at 00:00 UTC of this day.
    pub fn start_timestamp(&self) -> u64 {
        self.0 * 86_400
    }

    /// The month containing this day.
    pub fn month(&self) -> Month {
        month_of_timestamp(self.start_timestamp())
    }
}

impl fmt::Debug for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = ymd_of_timestamp(self.start_timestamp());
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

fn is_leap(year: u64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: u64) -> u64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

/// Civil (year, month, day) of a unix timestamp. Valid for 1970..2400.
fn ymd_of_timestamp(ts: u64) -> (u64, u64, u64) {
    let mut days = ts / 86_400;
    let mut year = 1970u64;
    while days >= days_in_year(year) {
        days -= days_in_year(year);
        year += 1;
    }
    let mut month = 0usize;
    loop {
        let mut len = DAYS_PER_MONTH[month];
        if month == 1 && is_leap(year) {
            len += 1;
        }
        if days < len {
            break;
        }
        days -= len;
        month += 1;
    }
    (year, month as u64 + 1, days + 1)
}

/// The calendar month of a unix timestamp.
pub fn month_of_timestamp(ts: u64) -> Month {
    let (y, m, _) = ymd_of_timestamp(ts);
    Month::new(y as u32, m as u32)
}

/// Unix timestamp at 00:00 UTC on a civil date.
pub fn timestamp_of_ymd(year: u64, month: u64, day: u64) -> u64 {
    assert!((1..=12).contains(&month) && day >= 1);
    let mut days = 0u64;
    for y in 1970..year {
        days += days_in_year(y);
    }
    for m in 0..(month as usize - 1) {
        days += DAYS_PER_MONTH[m];
        if m == 1 && is_leap(year) {
            days += 1;
        }
    }
    (days + day - 1) * 86_400
}

/// A point in simulated chain time.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct BlockTime {
    pub number: u64,
    pub timestamp: u64,
}

impl BlockTime {
    pub fn day(&self) -> Day {
        Day::from_timestamp(self.timestamp)
    }

    pub fn month(&self) -> Month {
        month_of_timestamp(self.timestamp)
    }
}

/// Maps simulated block numbers onto the paper's calendar span.
///
/// The real study covers 4.44 M blocks at ~13 s each. A `Timeline` with
/// `seconds_per_block > 13` compresses the same calendar range into fewer
/// simulated blocks while preserving month/day bucketing.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Timeline {
    /// Block number of the first simulated block.
    pub genesis_number: u64,
    /// Unix timestamp of the first simulated block.
    pub genesis_timestamp: u64,
    /// Simulated seconds elapsed per block.
    pub seconds_per_block: u64,
}

impl Timeline {
    /// The paper's span: genesis anchored at block 10,000,000 on
    /// May 4th 2020, with `blocks_per_month` controlling compression.
    pub fn paper_span(blocks_per_month: u64) -> Timeline {
        assert!(blocks_per_month > 0);
        // ~30.44 days per month on average.
        let seconds_per_month = 2_629_800u64;
        Timeline {
            genesis_number: 10_000_000,
            genesis_timestamp: timestamp_of_ymd(2020, 5, 4),
            seconds_per_block: (seconds_per_month / blocks_per_month).max(1),
        }
    }

    /// Wall-clock timestamp of a block number.
    pub fn timestamp_of(&self, number: u64) -> u64 {
        assert!(number >= self.genesis_number, "block before genesis");
        self.genesis_timestamp + (number - self.genesis_number) * self.seconds_per_block
    }

    /// Full time coordinates of a block number.
    pub fn at(&self, number: u64) -> BlockTime {
        BlockTime {
            number,
            timestamp: self.timestamp_of(number),
        }
    }

    /// First block number whose timestamp falls in `month`, if the month
    /// starts at or after genesis.
    pub fn first_block_of_month(&self, month: Month) -> u64 {
        let target = timestamp_of_ymd(month.year() as u64, month.month() as u64, 1);
        if target <= self.genesis_timestamp {
            return self.genesis_number;
        }
        let delta = target - self.genesis_timestamp;
        self.genesis_number + delta.div_ceil(self.seconds_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_construction() {
        let m = Month::new(2021, 7);
        assert_eq!(m.year(), 2021);
        assert_eq!(m.month(), 7);
        assert_eq!(m.to_string(), "2021-07");
        assert_eq!(m.next(), Month::new(2021, 8));
        assert_eq!(Month::new(2021, 12).next(), Month::new(2022, 1));
    }

    #[test]
    fn month_range() {
        let months: Vec<_> = Month::new(2020, 11)
            .range_inclusive(Month::new(2021, 2))
            .collect();
        assert_eq!(months.len(), 4);
        assert_eq!(months[0], Month::new(2020, 11));
        assert_eq!(months[3], Month::new(2021, 2));
    }

    #[test]
    fn known_dates() {
        // 2020-05-04 is a known anchor from the paper.
        let ts = timestamp_of_ymd(2020, 5, 4);
        assert_eq!(ymd_of_timestamp(ts), (2020, 5, 4));
        assert_eq!(month_of_timestamp(ts), Month::new(2020, 5));
        // Unix epoch.
        assert_eq!(ymd_of_timestamp(0), (1970, 1, 1));
        // Leap day.
        let leap = timestamp_of_ymd(2020, 2, 29);
        assert_eq!(ymd_of_timestamp(leap), (2020, 2, 29));
        assert_eq!(ymd_of_timestamp(leap + 86_400), (2020, 3, 1));
    }

    #[test]
    fn day_of_timestamp() {
        let ts = timestamp_of_ymd(2021, 11, 8) + 3600;
        let d = Day::from_timestamp(ts);
        assert_eq!(format!("{d}"), "2021-11-08");
        assert_eq!(d.month(), Month::new(2021, 11));
    }

    #[test]
    fn timeline_spans_paper_range() {
        let tl = Timeline::paper_span(2000);
        let genesis = tl.at(10_000_000);
        assert_eq!(genesis.month(), Month::new(2020, 5));
        // 23 months later at 2000 blocks/month ≈ block 10,046,000.
        let late = tl.at(10_000_000 + 2000 * 22);
        assert_eq!(late.month(), Month::new(2022, 3));
    }

    #[test]
    fn first_block_of_month_monotone() {
        let tl = Timeline::paper_span(1000);
        let mut prev = 0;
        for m in Month::new(2020, 5).range_inclusive(Month::new(2022, 3)) {
            let b = tl.first_block_of_month(m);
            assert!(b >= prev);
            prev = b;
            if m > Month::new(2020, 5) {
                assert_eq!(month_of_timestamp(tl.timestamp_of(b)), m);
            }
        }
    }

    #[test]
    #[should_panic(expected = "block before genesis")]
    fn timestamp_before_genesis_panics() {
        Timeline::paper_span(1000).timestamp_of(9_999_999);
    }
}
