//! # mev-types
//!
//! Primitive types shared by every crate in the `flashpan` workspace:
//! addresses, hashes, wei/gas units, a minimal 256-bit unsigned integer for
//! AMM math, transactions, blocks, receipts and typed event logs, and the
//! block-number ↔ wall-clock mapping used to bucket measurements by day and
//! month, mirroring the paper's measurement windows.
//!
//! The types are deliberately simulation-grade rather than consensus-grade:
//! hashes are deterministic 256-bit digests of the structural content (not
//! Keccak), signatures are elided (a transaction's `from` field is
//! authoritative), and amounts use `u128` wei with `U256` intermediates for
//! overflow-free constant-product math.

pub mod error;
pub mod ids;
pub mod intern;
pub mod log;
pub mod primitives;
pub mod receipt;
pub mod time;
pub mod tx;
pub mod u256;
pub mod units;

pub use error::TypeError;
pub use ids::{ExchangeId, LendingPlatformId, PoolId, TokenId};
pub use intern::{AddrId, HashId, InternId, InternKey, Interner};
pub use log::{Log, LogEvent};
pub use primitives::{Address, H256};
pub use receipt::{ExecOutcome, Receipt};
pub use time::{BlockTime, Day, Month, Timeline, SECONDS_PER_BLOCK};
pub use tx::{Action, GroundTruth, SwapCall, Transaction, TxFee, TxHash};
pub use u256::U256;
pub use units::{
    add_ratio, bump_pct, eth, gwei, signed_delta, wei_i128, Gas, SignedWei, Wei, ETH, GWEI,
};

/// Block header plus ordered transaction list.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Block {
    pub header: BlockHeader,
    pub transactions: Vec<Transaction>,
}

/// Minimal Ethereum-like block header.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockHeader {
    /// Height of this block.
    pub number: u64,
    /// Digest of the parent header.
    pub parent_hash: H256,
    /// Coinbase: the miner credited with fees and issuance.
    pub miner: Address,
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// Total gas consumed by the block's transactions.
    pub gas_used: Gas,
    /// Protocol gas limit at this height.
    pub gas_limit: Gas,
    /// EIP-1559 base fee; `Wei::ZERO` before the London fork.
    pub base_fee: Wei,
}

impl Block {
    /// Deterministic digest of the header contents.
    pub fn hash(&self) -> H256 {
        self.header.hash()
    }
}

impl BlockHeader {
    /// Deterministic digest of the header contents.
    pub fn hash(&self) -> H256 {
        let mut h = primitives::Digest::new("blockheader");
        h.update_u64(self.number);
        h.update(self.parent_hash.as_bytes());
        h.update(self.miner.as_bytes());
        h.update_u64(self.timestamp);
        h.update_u64(self.gas_used.0);
        h.update_u64(self.gas_limit.0);
        h.update_u128(self.base_fee.0);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(n: u64) -> BlockHeader {
        BlockHeader {
            number: n,
            parent_hash: H256::zero(),
            miner: Address::from_index(7),
            timestamp: 1_600_000_000 + n * 13,
            gas_used: Gas(21_000),
            gas_limit: Gas(30_000_000),
            base_fee: gwei(30),
        }
    }

    #[test]
    fn header_hash_changes_with_number() {
        assert_ne!(header(1).hash(), header(2).hash());
    }

    #[test]
    fn header_hash_is_deterministic() {
        assert_eq!(header(5).hash(), header(5).hash());
    }

    #[test]
    fn block_hash_matches_header_hash() {
        let b = Block {
            header: header(3),
            transactions: vec![],
        };
        assert_eq!(b.hash(), b.header.hash());
    }
}
