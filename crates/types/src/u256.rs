//! A minimal 256-bit unsigned integer.
//!
//! Constant-product AMM math multiplies two reserves that can each approach
//! 10²⁷ base units; the product (10⁵⁴) exceeds `u128`. This module provides
//! just enough 256-bit arithmetic — add, sub, widening mul, division by
//! `u128`, full division, comparison — for exact pool math, implemented over
//! four 64-bit limbs (little-endian).

use std::cmp::Ordering;
use std::fmt;

/// 256-bit unsigned integer over four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    pub const ZERO: U256 = U256([0; 4]);
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Widening product of two `u128`s.
    pub fn mul_u128_u128(a: u128, b: u128) -> U256 {
        U256::from(a).mul_u128(b)
    }

    /// True if the value fits in a `u128`.
    pub fn fits_u128(&self) -> bool {
        self.0[2] == 0 && self.0[3] == 0
    }

    /// Truncate to `u128`; panics on overflow.
    pub fn as_u128(&self) -> u128 {
        assert!(self.fits_u128(), "U256 does not fit in u128");
        (self.0[1] as u128) << 64 | self.0[0] as u128
    }

    /// Checked conversion to `u128`.
    pub fn checked_u128(&self) -> Option<u128> {
        self.fits_u128().then(|| self.as_u128())
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (carry == 0).then_some(U256(out))
    }

    /// Addition; panics on overflow.
    pub fn add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).expect("U256 add overflow")
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (borrow == 0).then_some(U256(out))
    }

    /// Subtraction; panics on underflow.
    pub fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).expect("U256 sub underflow")
    }

    /// Multiply by a `u128`; panics if the result exceeds 256 bits.
    pub fn mul_u128(self, rhs: u128) -> U256 {
        let rl = [(rhs & u64::MAX as u128) as u64, (rhs >> 64) as u64];
        let mut acc = [0u128; 6];
        for (i, &a) in self.0.iter().enumerate() {
            for (j, &b) in rl.iter().enumerate() {
                acc[i + j] += a as u128 * b as u128;
                // Normalise eagerly so limb sums never overflow u128.
                if acc[i + j] >> 64 > 0 {
                    acc[i + j + 1] += acc[i + j] >> 64;
                    acc[i + j] &= u64::MAX as u128;
                }
            }
        }
        // Final carry propagation.
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for i in 0..6 {
            let v = acc[i] + carry;
            if i < 4 {
                out[i] = (v & u64::MAX as u128) as u64;
            } else {
                assert!(v & u64::MAX as u128 == 0, "U256 mul overflow");
            }
            carry = v >> 64;
        }
        assert!(carry == 0, "U256 mul overflow");
        U256(out)
    }

    /// Divide by a `u128`, truncating. Panics on division by zero.
    pub fn div_u128(self, rhs: u128) -> U256 {
        assert!(rhs != 0, "U256 division by zero");
        // Long division over 64-bit limbs with a 128-bit remainder window
        // only works when rhs fits in 64 bits; otherwise fall back to the
        // general shift-subtract divider.
        if rhs <= u64::MAX as u128 {
            let d = rhs as u64;
            let mut out = [0u64; 4];
            let mut rem = 0u128;
            for i in (0..4).rev() {
                let cur = (rem << 64) | self.0[i] as u128;
                out[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            U256(out)
        } else {
            self.div(U256::from(rhs)).0
        }
    }

    /// Full division: returns `(quotient, remainder)`.
    pub fn div(self, rhs: U256) -> (U256, U256) {
        assert!(rhs != U256::ZERO, "U256 division by zero");
        if self < rhs {
            return (U256::ZERO, self);
        }
        let shift = rhs.leading_zeros() - self.leading_zeros();
        let mut divisor = rhs.shl(shift);
        let mut quotient = U256::ZERO;
        let mut rem = self;
        for s in (0..=shift).rev() {
            if rem >= divisor {
                rem = rem.sub(divisor);
                quotient = quotient.set_bit(s);
            }
            divisor = divisor.shr1();
        }
        (quotient, rem)
    }

    /// Count of leading zero bits.
    pub fn leading_zeros(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (3 - i as u32) * 64 + self.0[i].leading_zeros();
            }
        }
        256
    }

    fn shl(self, n: u32) -> U256 {
        if n == 0 {
            return self;
        }
        let limb = (n / 64) as usize;
        let bit = n % 64;
        let mut out = [0u64; 4];
        for i in (limb..4).rev() {
            out[i] = self.0[i - limb] << bit;
            if bit > 0 && i > limb {
                out[i] |= self.0[i - limb - 1] >> (64 - bit);
            }
        }
        U256(out)
    }

    fn shr1(self) -> U256 {
        let mut out = [0u64; 4];
        for i in 0..4 {
            out[i] = self.0[i] >> 1;
            if i < 3 {
                out[i] |= self.0[i + 1] << 63;
            }
        }
        U256(out)
    }

    fn set_bit(mut self, n: u32) -> U256 {
        self.0[(n / 64) as usize] |= 1 << (n % 64);
        self
    }

    /// Integer square root (Newton's method), used by stableswap seeding.
    pub fn isqrt(self) -> U256 {
        if self == U256::ZERO {
            return U256::ZERO;
        }
        // Initial guess: 2^(ceil(bits/2)).
        let bits = 256 - self.leading_zeros();
        let mut x = U256::ONE.shl(bits.div_ceil(2));
        loop {
            let (q, _) = self.div(x);
            let next = x.add(q).shr1();
            if next >= x {
                return x;
            }
            x = next;
        }
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> U256 {
        U256([(v & u64::MAX as u128) as u64, (v >> 64) as u64, 0, 0])
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> U256 {
        U256([v, 0, 0, 0])
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &U256) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &U256) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fits_u128() {
            write!(f, "U256({})", self.as_u128())
        } else {
            write!(
                f,
                "U256(0x{:016x}{:016x}{:016x}{:016x})",
                self.0[3], self.0[2], self.0[1], self.0[0]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_u128_roundtrip() {
        for v in [0u128, 1, u64::MAX as u128, u128::MAX] {
            assert_eq!(U256::from(v).as_u128(), v);
        }
    }

    #[test]
    fn widening_mul_max() {
        let p = U256::mul_u128_u128(u128::MAX, u128::MAX);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        assert!(!p.fits_u128());
        let (q, r) = p.div(U256::from(u128::MAX));
        assert_eq!(q.as_u128(), u128::MAX);
        assert_eq!(r, U256::ZERO);
    }

    #[test]
    fn div_small_divisor() {
        let x = U256::mul_u128_u128(1u128 << 100, 1u128 << 100);
        let y = x.div_u128(1u128 << 100);
        assert_eq!(y.as_u128(), 1u128 << 100);
    }

    #[test]
    fn div_large_divisor() {
        let x = U256::mul_u128_u128(u128::MAX, 3);
        let y = x.div_u128(u128::MAX);
        assert_eq!(y.as_u128(), 3);
    }

    #[test]
    fn div_rem_identity_simple() {
        let a = U256::mul_u128_u128(987_654_321, 123_456_789);
        let (q, r) = a.div(U256::from(1000u64));
        assert_eq!(
            q.as_u128() * 1000 + r.as_u128(),
            987_654_321u128 * 123_456_789
        );
    }

    #[test]
    fn isqrt_exact_squares() {
        for v in [0u128, 1, 4, 9, 1 << 60, 10u128.pow(30)] {
            let sq = U256::mul_u128_u128(v, v);
            assert_eq!(sq.isqrt().as_u128(), v, "isqrt of {v}^2");
        }
    }

    #[test]
    fn leading_zeros_cases() {
        assert_eq!(U256::ZERO.leading_zeros(), 256);
        assert_eq!(U256::ONE.leading_zeros(), 255);
        assert_eq!(U256::from(u128::MAX).leading_zeros(), 128);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = U256::ONE.div(U256::ZERO);
    }

    proptest! {
        #[test]
        fn prop_mul_div_roundtrip(a in any::<u128>(), b in 1..=u128::MAX) {
            let p = U256::mul_u128_u128(a, b);
            let (q, r) = p.div(U256::from(b));
            prop_assert_eq!(q.as_u128(), a);
            prop_assert_eq!(r, U256::ZERO);
        }

        #[test]
        fn prop_div_rem_identity(a in any::<u128>(), b in any::<u128>(), d in 1..=u128::MAX) {
            let x = U256::mul_u128_u128(a, b);
            let (q, r) = x.div(U256::from(d));
            prop_assert!(r < U256::from(d));
            let back = q.mul_u128(d).add(r);
            prop_assert_eq!(back, x);
        }

        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let s = U256::from(a).add(U256::from(b));
            prop_assert_eq!(s.sub(U256::from(b)), U256::from(a));
        }

        #[test]
        fn prop_isqrt_bounds(a in any::<u128>()) {
            let x = U256::from(a);
            let s = x.isqrt();
            let s128 = s.as_u128();
            prop_assert!(U256::mul_u128_u128(s128, s128) <= x);
            let s1 = s128 + 1;
            prop_assert!(U256::mul_u128_u128(s1, s1) > x);
        }

        #[test]
        fn prop_ordering_consistent(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(U256::from(a).cmp(&U256::from(b)), a.cmp(&b));
        }
    }
}
