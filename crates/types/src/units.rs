//! Monetary and gas units.
//!
//! `Wei` is a `u128` newtype (Ethereum's total supply ≈ 1.2 × 10²⁶ wei fits
//! comfortably); `SignedWei` is its `i128` counterpart used for profit
//! accounting, which the paper needs because Flashbots searchers can and do
//! realise *negative* profit (§5.2).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// One ether in wei.
pub const ETH: u128 = 1_000_000_000_000_000_000;
/// One gigawei in wei.
pub const GWEI: u128 = 1_000_000_000;

/// Construct `n` whole ether as [`Wei`].
pub const fn eth(n: u128) -> Wei {
    Wei(n * ETH)
}

/// Construct `n` gwei as [`Wei`].
pub const fn gwei(n: u128) -> Wei {
    Wei(n * GWEI)
}

/// Saturating `u128` → `i128` conversion for profit accounting.
///
/// Wei amounts above `i128::MAX` (≈ 1.7 × 10²⁰ ETH — far beyond total
/// supply) clamp instead of wrapping negative, so a corrupt or
/// adversarial amount can never flip the sign of a profit figure.
pub const fn wei_i128(v: u128) -> i128 {
    if v > i128::MAX as u128 {
        i128::MAX
    } else {
        v as i128
    }
}

/// Saturating signed difference `a - b` for profit accounting.
///
/// Both operands widen through [`wei_i128`], so amounts beyond
/// `i128::MAX` clamp rather than wrapping the sign of the result.
pub const fn signed_delta(a: u128, b: u128) -> i128 {
    wei_i128(a).saturating_sub(wei_i128(b))
}

/// `v + v·pct/100 + 1`: raise `v` by `pct` percent and one extra unit
/// to strictly outbid, with a 256-bit intermediate product and
/// saturation instead of overflow.
pub fn bump_pct(v: u128, pct: u128) -> u128 {
    let raise = crate::u256::U256::from(v)
        .mul_u128(pct)
        .div_u128(100)
        .checked_u128()
        .unwrap_or(u128::MAX);
    v.saturating_add(raise).saturating_add(1)
}

/// `v + v·num/den`: add a rational share of `v` to itself with a
/// 256-bit intermediate product and saturation instead of overflow.
/// Panics on a zero denominator, like [`Wei::mul_ratio`].
pub fn add_ratio(v: u128, num: u128, den: u128) -> u128 {
    assert!(den != 0, "add_ratio by zero denominator");
    let share = crate::u256::U256::from(v)
        .mul_u128(num)
        .div_u128(den)
        .checked_u128()
        .unwrap_or(u128::MAX);
    v.saturating_add(share)
}

/// An unsigned wei amount.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Wei(pub u128);

impl Wei {
    pub const ZERO: Wei = Wei(0);

    /// Construct from a floating ether amount (test/scenario convenience).
    pub fn from_eth_f64(v: f64) -> Wei {
        assert!(v >= 0.0, "Wei::from_eth_f64 on negative value");
        Wei((v * ETH as f64) as u128)
    }

    /// Value in ether as `f64` (for reporting only; lossy above 2⁵³ wei-ether).
    pub fn as_eth_f64(&self) -> f64 {
        self.0 as f64 / ETH as f64
    }

    /// Value in gwei as `f64`.
    pub fn as_gwei_f64(&self) -> f64 {
        self.0 as f64 / GWEI as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_sub(rhs.0).map(Wei)
    }

    /// Convert to a signed amount; panics if it exceeds `i128::MAX`.
    pub fn signed(self) -> SignedWei {
        SignedWei(i128::try_from(self.0).expect("wei amount exceeds i128"))
    }

    /// Multiply by a rational `num/den` using 256-bit intermediates.
    pub fn mul_ratio(self, num: u128, den: u128) -> Wei {
        assert!(den != 0, "mul_ratio by zero denominator");
        Wei(crate::u256::U256::from(self.0)
            .mul_u128(num)
            .div_u128(den)
            .as_u128())
    }

    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    pub fn min(self, other: Wei) -> Wei {
        Wei(self.0.min(other.0))
    }

    pub fn max(self, other: Wei) -> Wei {
        Wei(self.0.max(other.0))
    }
}

impl Add for Wei {
    type Output = Wei;
    fn add(self, rhs: Wei) -> Wei {
        Wei(self.0.checked_add(rhs.0).expect("wei overflow"))
    }
}

impl AddAssign for Wei {
    fn add_assign(&mut self, rhs: Wei) {
        *self = *self + rhs;
    }
}

impl Sub for Wei {
    type Output = Wei;
    fn sub(self, rhs: Wei) -> Wei {
        Wei(self.0.checked_sub(rhs.0).expect("wei underflow"))
    }
}

impl SubAssign for Wei {
    fn sub_assign(&mut self, rhs: Wei) {
        *self = *self - rhs;
    }
}

impl Mul<u128> for Wei {
    type Output = Wei;
    fn mul(self, rhs: u128) -> Wei {
        Wei(self.0.checked_mul(rhs).expect("wei mul overflow"))
    }
}

impl Div<u128> for Wei {
    type Output = Wei;
    fn div(self, rhs: u128) -> Wei {
        Wei(self.0 / rhs)
    }
}

impl Sum for Wei {
    fn sum<I: Iterator<Item = Wei>>(iter: I) -> Wei {
        iter.fold(Wei::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= ETH / 1000 {
            write!(f, "{:.4} ETH", self.as_eth_f64())
        } else if self.0 >= GWEI {
            write!(f, "{:.2} gwei", self.as_gwei_f64())
        } else {
            write!(f, "{} wei", self.0)
        }
    }
}

/// A signed wei amount, for profit/loss accounting.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SignedWei(pub i128);

impl SignedWei {
    pub const ZERO: SignedWei = SignedWei(0);

    /// Value in ether as `f64`.
    pub fn as_eth_f64(&self) -> f64 {
        self.0 as f64 / ETH as f64
    }

    pub fn is_negative(&self) -> bool {
        self.0 < 0
    }

    /// Absolute value as unsigned wei.
    pub fn abs_wei(&self) -> Wei {
        Wei(self.0.unsigned_abs())
    }
}

impl Add for SignedWei {
    type Output = SignedWei;
    fn add(self, rhs: SignedWei) -> SignedWei {
        SignedWei(self.0.checked_add(rhs.0).expect("signed wei overflow"))
    }
}

impl AddAssign for SignedWei {
    fn add_assign(&mut self, rhs: SignedWei) {
        *self = *self + rhs;
    }
}

impl Sub for SignedWei {
    type Output = SignedWei;
    fn sub(self, rhs: SignedWei) -> SignedWei {
        SignedWei(self.0.checked_sub(rhs.0).expect("signed wei underflow"))
    }
}

impl Neg for SignedWei {
    type Output = SignedWei;
    fn neg(self) -> SignedWei {
        SignedWei(-self.0)
    }
}

impl Sum for SignedWei {
    fn sum<I: Iterator<Item = SignedWei>>(iter: I) -> SignedWei {
        iter.fold(SignedWei::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SignedWei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} ETH", self.as_eth_f64())
    }
}

/// Gas units.
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Default,
    Debug,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Gas(pub u64);

impl Gas {
    pub const ZERO: Gas = Gas(0);
    /// Intrinsic cost of a plain value transfer.
    pub const TRANSFER: Gas = Gas(21_000);

    /// Total fee at a given gas price.
    pub fn cost(self, price: Wei) -> Wei {
        Wei((self.0 as u128)
            .checked_mul(price.0)
            .expect("gas cost overflow"))
    }
}

impl Add for Gas {
    type Output = Gas;
    fn add(self, rhs: Gas) -> Gas {
        Gas(self.0.checked_add(rhs.0).expect("gas overflow"))
    }
}

impl AddAssign for Gas {
    fn add_assign(&mut self, rhs: Gas) {
        *self = *self + rhs;
    }
}

impl Sub for Gas {
    type Output = Gas;
    fn sub(self, rhs: Gas) -> Gas {
        Gas(self.0.checked_sub(rhs.0).expect("gas underflow"))
    }
}

impl Sum for Gas {
    fn sum<I: Iterator<Item = Gas>>(iter: I) -> Gas {
        iter.fold(Gas::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eth_gwei_constructors() {
        assert_eq!(eth(2).0, 2 * ETH);
        assert_eq!(gwei(50).0, 50 * GWEI);
        assert_eq!(eth(1), gwei(1_000_000_000));
    }

    #[test]
    fn wei_arithmetic() {
        assert_eq!(eth(1) + eth(2), eth(3));
        assert_eq!(eth(3) - eth(1), eth(2));
        assert_eq!(eth(2) * 3, eth(6));
        assert_eq!(eth(6) / 2, eth(3));
        assert_eq!(Wei(5).saturating_sub(Wei(9)), Wei::ZERO);
        assert_eq!(Wei(5).checked_sub(Wei(9)), None);
    }

    #[test]
    #[should_panic(expected = "wei underflow")]
    fn wei_sub_underflow_panics() {
        let _ = Wei(1) - Wei(2);
    }

    #[test]
    fn mul_ratio_avoids_overflow() {
        // 10^26 * 10^13 would overflow u128 without 256-bit intermediates.
        let big = Wei(100_000_000 * ETH);
        assert_eq!(big.mul_ratio(10_000_000_000_000, 10_000_000_000_000), big);
        assert_eq!(eth(10).mul_ratio(3, 10), eth(3));
    }

    #[test]
    fn signed_profit_accounting() {
        let gain = eth(1).signed();
        let cost = eth(3).signed();
        let profit = gain - cost;
        assert!(profit.is_negative());
        assert_eq!(profit.abs_wei(), eth(2));
        assert_eq!(-profit, eth(2).signed());
    }

    #[test]
    fn gas_cost() {
        assert_eq!(Gas::TRANSFER.cost(gwei(100)), Wei(21_000 * 100 * GWEI));
    }

    #[test]
    fn wei_sum() {
        let total: Wei = [eth(1), eth(2), eth(3)].into_iter().sum();
        assert_eq!(total, eth(6));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert!(eth(1).to_string().contains("ETH"));
        assert!(gwei(42).to_string().contains("gwei"));
        assert!(Wei(7).to_string().contains("wei"));
    }

    #[test]
    fn eth_f64_roundtrip_reasonable() {
        let w = Wei::from_eth_f64(1.5);
        assert!((w.as_eth_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wei_i128_is_exact_below_saturation() {
        assert_eq!(wei_i128(0), 0);
        assert_eq!(wei_i128(ETH), ETH as i128);
        assert_eq!(wei_i128(i128::MAX as u128), i128::MAX);
    }

    #[test]
    fn wei_i128_saturates_instead_of_wrapping() {
        assert_eq!(wei_i128(u128::MAX), i128::MAX);
        assert_eq!(wei_i128(i128::MAX as u128 + 1), i128::MAX);
    }

    #[test]
    fn signed_delta_matches_plain_subtraction_in_range() {
        assert_eq!(signed_delta(10, 3), 7);
        assert_eq!(signed_delta(3, 10), -7);
        assert_eq!(signed_delta(ETH, ETH), 0);
    }

    #[test]
    fn signed_delta_saturates_at_extremes() {
        assert_eq!(signed_delta(u128::MAX, 0), i128::MAX);
        assert_eq!(signed_delta(0, u128::MAX), i128::MIN + 1);
        // a - b with both above i128::MAX clamps both sides first.
        assert_eq!(signed_delta(u128::MAX, u128::MAX - 1), 0);
    }

    #[test]
    fn bump_pct_matches_naive_formula_in_range() {
        // naive: v + v * pct / 100 + 1
        assert_eq!(bump_pct(1000, 12), 1000 + 120 + 1);
        assert_eq!(bump_pct(0, 50), 1);
        assert_eq!(bump_pct(99, 1), 99 + 0 + 1);
        assert_eq!(bump_pct(50 * GWEI, 10), 55 * GWEI + 1);
    }

    #[test]
    fn bump_pct_saturates_instead_of_overflowing() {
        // naive v * pct overflows u128 here; widened form saturates.
        assert_eq!(bump_pct(u128::MAX, 10), u128::MAX);
        assert_eq!(bump_pct(u128::MAX / 2, 300), u128::MAX);
    }

    #[test]
    fn add_ratio_matches_naive_formula_in_range() {
        // naive: v + v * num / den
        assert_eq!(add_ratio(10_000, 500, 10_000), 10_500);
        assert_eq!(add_ratio(1, 1, 2), 1);
        assert_eq!(add_ratio(ETH, 0, 10_000), ETH);
    }

    #[test]
    fn add_ratio_saturates_instead_of_overflowing() {
        assert_eq!(add_ratio(u128::MAX, 1, 1), u128::MAX);
        assert_eq!(add_ratio(u128::MAX / 2, 30_000, 10_000), u128::MAX);
    }

    #[test]
    #[should_panic(expected = "add_ratio by zero denominator")]
    fn add_ratio_zero_denominator_panics() {
        let _ = add_ratio(1, 1, 0);
    }

    #[test]
    fn wei_saturating_add() {
        assert_eq!(eth(1).saturating_add(eth(2)), eth(3));
        assert_eq!(Wei(u128::MAX).saturating_add(Wei(1)), Wei(u128::MAX));
    }
}
