//! Transaction receipts — the execution record the detectors consume.

use crate::log::Log;
use crate::primitives::Address;
use crate::tx::TxHash;
use crate::units::{Gas, Wei};

/// Outcome of executing a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecOutcome {
    /// All effects applied.
    Success,
    /// Reverted: effects rolled back, gas still charged (§2.1 — "if a
    /// contract runs out of gas, the miner gets to keep the gas fees, but
    /// rolls back any side-effects").
    Reverted,
}

impl ExecOutcome {
    pub fn is_success(&self) -> bool {
        matches!(self, ExecOutcome::Success)
    }
}

/// Receipt of a transaction included in a block.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Receipt {
    pub tx_hash: TxHash,
    /// Position within the block — ordering is the essence of MEV.
    pub index: u32,
    pub from: Address,
    pub outcome: ExecOutcome,
    pub gas_used: Gas,
    /// Price per gas actually charged.
    pub effective_gas_price: Wei,
    /// Portion of the fee credited to the miner (post-London: priority only).
    pub miner_fee: Wei,
    /// Direct coinbase transfer paid on success (Flashbots tip channel).
    pub coinbase_transfer: Wei,
    /// Events emitted (empty if reverted).
    pub logs: Vec<Log>,
}

impl Receipt {
    /// Total transaction fee charged to the sender (excluding coinbase tip).
    pub fn total_fee(&self) -> Wei {
        self.gas_used.cost(self.effective_gas_price)
    }

    /// Everything the sender paid: fee plus coinbase tip.
    pub fn total_cost(&self) -> Wei {
        self.total_fee() + self.coinbase_transfer
    }

    /// Everything the miner earned from this transaction.
    pub fn miner_revenue(&self) -> Wei {
        self.miner_fee + self.coinbase_transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::H256;
    use crate::units::gwei;

    fn receipt() -> Receipt {
        Receipt {
            tx_hash: H256::zero(),
            index: 0,
            from: Address::from_index(1),
            outcome: ExecOutcome::Success,
            gas_used: Gas(100_000),
            effective_gas_price: gwei(50),
            miner_fee: Gas(100_000).cost(gwei(2)),
            coinbase_transfer: gwei(1_000_000),
            logs: vec![],
        }
    }

    #[test]
    fn fee_accounting() {
        let r = receipt();
        assert_eq!(r.total_fee(), Gas(100_000).cost(gwei(50)));
        assert_eq!(r.total_cost(), r.total_fee() + gwei(1_000_000));
        assert_eq!(
            r.miner_revenue(),
            Gas(100_000).cost(gwei(2)) + gwei(1_000_000)
        );
    }

    #[test]
    fn outcome_predicate() {
        assert!(ExecOutcome::Success.is_success());
        assert!(!ExecOutcome::Reverted.is_success());
    }
}
