//! Typed event logs.
//!
//! Every measurement in the paper keys off on-chain *events*: token transfer
//! events for sandwich detection (§3.1.1), swap events for arbitrage
//! (§3.1.2), liquidation events (§3.1.3), and flash-loan events (§3.4).
//! Real detectors match `topic0` signature hashes; ours match enum variants,
//! which carries the same information with the parsing already done.

use crate::ids::{LendingPlatformId, PoolId, TokenId};
use crate::primitives::Address;
use crate::units::Wei;

/// The decoded body of an event log.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LogEvent {
    /// ERC-20 `Transfer(from, to, amount)`.
    Transfer {
        token: TokenId,
        from: Address,
        to: Address,
        amount: u128,
    },
    /// DEX `Swap(sender, token_in, amount_in, token_out, amount_out)`.
    Swap {
        pool: PoolId,
        sender: Address,
        token_in: TokenId,
        amount_in: u128,
        token_out: TokenId,
        amount_out: u128,
    },
    /// Lending `Deposit`.
    Deposit {
        platform: LendingPlatformId,
        user: Address,
        token: TokenId,
        amount: u128,
    },
    /// Lending `Borrow`.
    Borrow {
        platform: LendingPlatformId,
        user: Address,
        token: TokenId,
        amount: u128,
    },
    /// Lending `Repay`.
    Repay {
        platform: LendingPlatformId,
        user: Address,
        token: TokenId,
        amount: u128,
    },
    /// Fixed-spread `LiquidationCall` — the event the liquidation detector crawls.
    Liquidation {
        platform: LendingPlatformId,
        liquidator: Address,
        borrower: Address,
        debt_token: TokenId,
        debt_repaid: u128,
        collateral_token: TokenId,
        collateral_seized: u128,
    },
    /// `FlashLoan(initiator, token, amount, fee)` — the event Wang et al.'s
    /// technique crawls.
    FlashLoan {
        platform: LendingPlatformId,
        initiator: Address,
        token: TokenId,
        amount: u128,
        fee: u128,
    },
    /// Oracle posted a new WETH price for `token`.
    OracleUpdate { token: TokenId, price_wei: u128 },
    /// Mining-pool payout batch summary.
    Payout {
        payer: Address,
        recipients: u32,
        total: Wei,
    },
}

impl LogEvent {
    /// The event signature name — the analogue of `topic0`.
    pub fn signature(&self) -> &'static str {
        match self {
            LogEvent::Transfer { .. } => "Transfer(address,address,uint256)",
            LogEvent::Swap { .. } => "Swap(address,uint256,uint256,uint256,uint256)",
            LogEvent::Deposit { .. } => "Deposit(address,uint256)",
            LogEvent::Borrow { .. } => "Borrow(address,uint256)",
            LogEvent::Repay { .. } => "Repay(address,uint256)",
            LogEvent::Liquidation { .. } => {
                "LiquidationCall(address,address,address,uint256,uint256)"
            }
            LogEvent::FlashLoan { .. } => "FlashLoan(address,address,uint256,uint256)",
            LogEvent::OracleUpdate { .. } => "AnswerUpdated(int256,uint256)",
            LogEvent::Payout { .. } => "Payout(address,uint256)",
        }
    }
}

/// An emitted log: the emitting "contract" address plus decoded event.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Log {
    /// Address of the emitting contract (pool, lending platform, token).
    pub address: Address,
    pub event: LogEvent,
}

impl Log {
    pub fn new(address: Address, event: LogEvent) -> Log {
        Log { address, event }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ExchangeId;

    #[test]
    fn signatures_are_distinct_per_variant() {
        let a = LogEvent::Transfer {
            token: TokenId::WETH,
            from: Address::ZERO,
            to: Address::ZERO,
            amount: 0,
        };
        let b = LogEvent::Swap {
            pool: PoolId {
                exchange: ExchangeId::Curve,
                index: 0,
            },
            sender: Address::ZERO,
            token_in: TokenId::WETH,
            amount_in: 0,
            token_out: TokenId(1),
            amount_out: 0,
        };
        assert_ne!(a.signature(), b.signature());
        assert!(a.signature().starts_with("Transfer"));
    }

    #[test]
    fn log_serde_roundtrip() {
        let log = Log::new(
            Address::from_index(9),
            LogEvent::FlashLoan {
                platform: LendingPlatformId::DyDx,
                initiator: Address::from_index(3),
                token: TokenId(2),
                amount: 1_000_000,
                fee: 900,
            },
        );
        let json = serde_json::to_string(&log).unwrap();
        let back: Log = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
