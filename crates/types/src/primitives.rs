//! 160-bit addresses, 256-bit hashes, and the deterministic digest used to
//! derive transaction and block hashes.
//!
//! The digest is a 4-lane SplitMix64 sponge — not cryptographic, but
//! collision-free in practice for simulation-scale inputs and, crucially,
//! fully deterministic across runs and platforms, which every experiment
//! in this repository depends on.

use std::fmt;

/// A 20-byte account address, displayed as `0x`-prefixed hex like Ethereum's.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (used for issuance / burns).
    pub const ZERO: Address = Address([0u8; 20]);

    /// Deterministically derive the `i`-th simulation address.
    ///
    /// The index is diffused through SplitMix64 so addresses are visually
    /// distinct, then the index itself is stored in the trailing bytes so
    /// tests can recover it via [`Address::index`].
    pub fn from_index(i: u64) -> Address {
        let mut b = [0u8; 20];
        let diffused = splitmix64(i ^ 0xADD2E55);
        b[..8].copy_from_slice(&diffused.to_be_bytes());
        b[12..20].copy_from_slice(&i.to_be_bytes());
        Address(b)
    }

    /// Recover the index passed to [`Address::from_index`].
    pub fn index(&self) -> u64 {
        let mut x = [0u8; 8];
        x.copy_from_slice(&self.0[12..20]);
        u64::from_be_bytes(x)
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Short display form (first 4 bytes) for dense tables.
    pub fn short(&self) -> String {
        format!(
            "0x{:02x}{:02x}{:02x}{:02x}…",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Parse error for hex-encoded primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseHexError;

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid hex-encoded value")
    }
}

impl std::error::Error for ParseHexError {}

fn parse_hex_bytes(s: &str, out: &mut [u8]) -> Result<(), ParseHexError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if s.len() != out.len() * 2 {
        return Err(ParseHexError);
    }
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16).ok_or(ParseHexError)?;
        let lo = (chunk[1] as char).to_digit(16).ok_or(ParseHexError)?;
        out[i] = (hi * 16 + lo) as u8;
    }
    Ok(())
}

impl std::str::FromStr for Address {
    type Err = ParseHexError;

    /// Parse a `0x`-prefixed (or bare) 40-digit hex address — the format
    /// [`fmt::Display`] produces, so exports round-trip.
    fn from_str(s: &str) -> Result<Address, ParseHexError> {
        let mut b = [0u8; 20];
        parse_hex_bytes(s, &mut b)?;
        Ok(Address(b))
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A 32-byte digest.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero digest.
    pub fn zero() -> H256 {
        H256([0u8; 32])
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Interpret the first 8 bytes as a big-endian integer (for sampling).
    pub fn prefix_u64(&self) -> u64 {
        let mut x = [0u8; 8];
        x.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(x)
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

/// SplitMix64 diffusion step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Incremental, deterministic 256-bit digest builder.
///
/// Four independent SplitMix64 lanes absorb the input stream; finalisation
/// cross-mixes the lanes so every output bit depends on every input byte.
pub struct Digest {
    lanes: [u64; 4],
    counter: u64,
}

impl Digest {
    /// Create a digest with a domain-separation tag.
    pub fn new(domain: &str) -> Digest {
        let mut d = Digest {
            lanes: [0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a],
            counter: 0,
        };
        d.update(domain.as_bytes());
        d
    }

    /// Absorb raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let w = u64::from_le_bytes(word) ^ splitmix64(self.counter);
            self.counter = self.counter.wrapping_add(1);
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                *lane = splitmix64(lane.wrapping_add(w).wrapping_add(i as u64));
            }
        }
    }

    /// Absorb a `u64`.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorb a `u128`.
    pub fn update_u128(&mut self, v: u128) {
        self.update(&v.to_le_bytes());
    }

    /// Finalise into a 32-byte digest.
    pub fn finish(mut self) -> H256 {
        // Cross-mix lanes so short inputs still diffuse into every byte.
        for round in 0..2u64 {
            let mixed: u64 = self.lanes.iter().fold(round, |a, l| splitmix64(a ^ l));
            for lane in self.lanes.iter_mut() {
                *lane = splitmix64(*lane ^ mixed);
            }
        }
        let mut out = [0u8; 32];
        for (i, lane) in self.lanes.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&lane.to_be_bytes());
        }
        H256(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn address_index_roundtrip() {
        for i in [0u64, 1, 42, u32::MAX as u64, 999_999_999] {
            assert_eq!(Address::from_index(i).index(), i);
        }
    }

    #[test]
    fn addresses_are_distinct() {
        let set: HashSet<_> = (0..10_000).map(Address::from_index).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn digest_is_deterministic() {
        let mk = || {
            let mut d = Digest::new("t");
            d.update(b"hello world");
            d.update_u64(7);
            d.finish()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn digest_domain_separation() {
        let a = Digest::new("a").finish();
        let b = Digest::new("b").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn digest_order_sensitivity() {
        let mut d1 = Digest::new("t");
        d1.update_u64(1);
        d1.update_u64(2);
        let mut d2 = Digest::new("t");
        d2.update_u64(2);
        d2.update_u64(1);
        assert_ne!(d1.finish(), d2.finish());
    }

    #[test]
    fn digest_no_trivial_collisions() {
        let set: HashSet<_> = (0..50_000u64)
            .map(|i| {
                let mut d = Digest::new("c");
                d.update_u64(i);
                d.finish()
            })
            .collect();
        assert_eq!(set.len(), 50_000);
    }

    #[test]
    fn address_parses_its_own_display() {
        use std::str::FromStr;
        for i in [0u64, 1, 42, 999_999] {
            let a = Address::from_index(i);
            assert_eq!(Address::from_str(&a.to_string()).unwrap(), a);
        }
        // Bare hex (no prefix) accepted too.
        let a = Address::from_index(7);
        assert_eq!(
            Address::from_str(a.to_string().trim_start_matches("0x")).unwrap(),
            a
        );
        // Rejections.
        assert!(Address::from_str("0x1234").is_err(), "too short");
        assert!(
            Address::from_str(&("0x".to_string() + &"zz".repeat(20))).is_err(),
            "non-hex"
        );
    }

    #[test]
    fn display_forms() {
        let a = Address::from_index(1);
        assert!(a.to_string().starts_with("0x"));
        assert_eq!(a.to_string().len(), 42);
        assert!(a.short().starts_with("0x"));
        let h = H256::zero();
        assert!(h.to_string().starts_with("0x"));
    }
}
