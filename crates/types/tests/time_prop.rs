//! Property tests over the calendar timeline: the block↔date mapping the
//! measurement bucketing depends on must be monotone, gap-free, and
//! consistent between day- and month-granularity.

use mev_types::{time, Day, Month, Timeline};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Timestamps are strictly monotone in block number and months never
    /// decrease.
    #[test]
    fn timeline_monotone(
        bpm in 10u64..=200_000,
        offsets in proptest::collection::vec(0u64..2_000_000, 2..20),
    ) {
        let tl = Timeline::paper_span(bpm);
        let mut sorted = offsets;
        sorted.sort_unstable();
        let mut prev_ts = None;
        let mut prev_month = None;
        for &o in &sorted {
            let n = tl.genesis_number + o;
            let ts = tl.timestamp_of(n);
            if let Some(p) = prev_ts {
                prop_assert!(ts >= p);
            }
            let m = tl.at(n).month();
            if let Some(pm) = prev_month {
                prop_assert!(m >= pm);
            }
            prev_ts = Some(ts);
            prev_month = Some(m);
        }
    }

    /// `first_block_of_month` is the true boundary: the block before it
    /// (if after genesis) belongs to an earlier month, the block itself
    /// to the month or later.
    #[test]
    fn month_boundaries_are_tight(bpm in 10u64..=50_000, months_ahead in 1u32..30) {
        let tl = Timeline::paper_span(bpm);
        let mut m = tl.at(tl.genesis_number).month();
        for _ in 0..months_ahead {
            m = m.next();
        }
        let b = tl.first_block_of_month(m);
        prop_assert!(tl.at(b).month() >= m);
        if b > tl.genesis_number {
            prop_assert!(tl.at(b - 1).month() < m);
        }
    }

    /// Day and month bucketing agree: the month of a block's day equals
    /// the block's month.
    #[test]
    fn day_and_month_agree(bpm in 10u64..=200_000, offset in 0u64..2_000_000) {
        let tl = Timeline::paper_span(bpm);
        let bt = tl.at(tl.genesis_number + offset);
        prop_assert_eq!(bt.day().month(), bt.month());
    }

    /// Civil-date round trip: timestamp_of_ymd inverts month_of_timestamp
    /// at month granularity for the simulation's whole era.
    #[test]
    fn ymd_roundtrip(year in 1970u64..2300, month in 1u64..=12, day in 1u64..=28) {
        let ts = time::timestamp_of_ymd(year, month, day);
        let m = time::month_of_timestamp(ts);
        prop_assert_eq!(m, Month::new(year as u32, month as u32));
        // And day bucketing is exact.
        let d = Day::from_timestamp(ts);
        prop_assert_eq!(d.start_timestamp(), ts);
    }

    /// Consecutive days differ by exactly 86,400 seconds of timestamps.
    #[test]
    fn days_are_contiguous(day_index in 0u64..200_000) {
        let d = Day(day_index);
        let next = Day(day_index + 1);
        prop_assert_eq!(next.start_timestamp() - d.start_timestamp(), 86_400);
        prop_assert!(next.month() >= d.month());
    }
}
