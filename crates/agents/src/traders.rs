//! Ordinary traders — the liquidity-demanding population whose large,
//! loosely-guarded swaps are the raw material of sandwich MEV (§2.2).
//!
//! Trade sizes are log-normal (heavy tail: most swaps are small, a few
//! are whales), and slippage tolerance is a mixture — most users accept
//! the default ~0.5–1 %, some set it tight, and some set it recklessly
//! loose. Only the large-and-loose corner is sandwichable, which is what
//! keeps sandwich counts a small fraction of total swaps, as in the paper.

use mev_dex::DexState;
use mev_types::{Address, PoolId, SwapCall, TokenId};
use rand::rngs::StdRng;
use rand::Rng;

const E18: u128 = 10u128.pow(18);

/// One generated trade intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TradeIntent {
    pub trader: Address,
    pub call: SwapCall,
    /// Slippage tolerance the trader applied, bps.
    pub slippage_bps: u32,
}

/// Address-space offset for trader addresses.
pub const TRADER_ADDRESS_BASE: u64 = 0x1000_0000_0000;

/// The trader population.
#[derive(Debug, Clone)]
pub struct TraderPool {
    pub n_traders: u64,
    /// Mean of ln(size in ETH).
    pub ln_size_mu: f64,
    /// Std-dev of ln(size in ETH).
    pub ln_size_sigma: f64,
    /// Cap on a single trade, in WETH base units.
    pub max_trade: u128,
}

impl Default for TraderPool {
    fn default() -> Self {
        // exp(N(-0.3, 1.4)): median ~0.75 ETH, p95 ~7.5 ETH, rare whales.
        TraderPool {
            n_traders: 2_000,
            ln_size_mu: -0.3,
            ln_size_sigma: 1.4,
            max_trade: 200 * E18,
        }
    }
}

impl TraderPool {
    /// The address of trader `i`.
    pub fn trader_address(&self, i: u64) -> Address {
        Address::from_index(TRADER_ADDRESS_BASE + (i % self.n_traders))
    }

    /// Sample a log-normal trade size in WETH base units.
    fn sample_size(&self, rng: &mut StdRng) -> u128 {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let eth = (self.ln_size_mu + self.ln_size_sigma * z).exp();
        ((eth * E18 as f64) as u128).clamp(E18 / 100, self.max_trade)
    }

    /// Sample a slippage tolerance (bps) from the user mixture.
    fn sample_slippage(&self, rng: &mut StdRng) -> u32 {
        let x: f64 = rng.gen();
        if x < 0.25 {
            rng.gen_range(5..=30) // tight: MEV-aware users
        } else if x < 0.80 {
            rng.gen_range(50..=100) // the common default
        } else {
            rng.gen_range(100..=300) // loose: sandwich bait
        }
    }

    /// Generate `count` trade intents against WETH-paired pools on
    /// sandwich-covered exchanges. Sellers of tokens and buyers of tokens
    /// are both generated.
    pub fn generate(&self, dex: &DexState, count: usize, rng: &mut StdRng) -> Vec<TradeIntent> {
        let weth_pools: Vec<(PoolId, TokenId)> = dex
            .pools()
            .filter_map(|p| {
                let other = p.other(TokenId::WETH)?;
                Some((p.id, other))
            })
            .collect();
        if weth_pools.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let trader = self.trader_address(rng.gen_range(0..self.n_traders));
            let &(pool_id, token) = &weth_pools[rng.gen_range(0..weth_pools.len())];
            let pool = dex.pool(pool_id).expect("listed above");
            let buy_token = rng.gen_bool(0.5);
            let size_weth = self.sample_size(rng);
            let (token_in, token_out, amount_in) = if buy_token {
                // Buys are also depth-capped: nobody market-buys a double-
                // digit share of a pool in one shot.
                let cap = pool.reserve_of(TokenId::WETH).unwrap_or(size_weth) / 20;
                (TokenId::WETH, token, size_weth.min(cap.max(1)))
            } else {
                // Sell tokens of roughly the same WETH value, capped at a
                // twentieth of the pool's token depth.
                let px = pool.price_e18(TokenId::WETH, token).unwrap_or(E18);
                let amount = mev_types::U256::from(size_weth)
                    .mul_u128(px)
                    .div_u128(E18)
                    .checked_u128()
                    .unwrap_or(size_weth);
                let cap = pool.reserve_of(token).unwrap_or(amount) / 20;
                (token, TokenId::WETH, amount.min(cap).max(1))
            };
            let slippage_bps = self.sample_slippage(rng);
            let Ok(quote) = pool.quote(token_in, amount_in) else {
                continue;
            };
            let min_amount_out = quote * (10_000 - slippage_bps as u128) / 10_000;
            out.push(TradeIntent {
                trader,
                call: SwapCall {
                    pool: pool_id,
                    token_in,
                    token_out,
                    amount_in,
                    min_amount_out,
                },
                slippage_bps,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_dex::pool::build;
    use rand::SeedableRng;

    fn dex() -> DexState {
        let mut d = DexState::new();
        d.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            5_000 * E18,
            10_000 * E18,
        ));
        d.add_pool(build::sushiswap(
            0,
            TokenId::WETH,
            TokenId(2),
            3_000 * E18,
            9_000 * E18,
        ));
        // A non-WETH pool that must never be selected.
        d.add_pool(build::curve(
            0,
            TokenId(1),
            TokenId(2),
            10_000 * E18,
            10_000 * E18,
        ));
        d
    }

    #[test]
    fn generates_weth_paired_trades_only() {
        let d = dex();
        let pool = TraderPool::default();
        let mut rng = StdRng::seed_from_u64(3);
        let trades = pool.generate(&d, 500, &mut rng);
        assert!(trades.len() >= 490, "almost all intents should quote fine");
        for t in &trades {
            assert!(
                t.call.token_in == TokenId::WETH || t.call.token_out == TokenId::WETH,
                "always one WETH side"
            );
            assert!(t.call.min_amount_out > 0);
        }
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let d = dex();
        let pool = TraderPool::default();
        let mut rng = StdRng::seed_from_u64(4);
        let trades = pool.generate(&d, 2_000, &mut rng);
        let weth_ins: Vec<u128> = trades
            .iter()
            .filter(|t| t.call.token_in == TokenId::WETH)
            .map(|t| t.call.amount_in)
            .collect();
        let mut sorted = weth_ins.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let p99 = sorted[sorted.len() * 99 / 100];
        assert!(median < 3 * E18, "median {median}");
        assert!(p99 > 10 * E18, "p99 {p99}");
        assert!(*sorted.last().unwrap() <= pool.max_trade);
    }

    #[test]
    fn slippage_mixture_has_three_modes() {
        let d = dex();
        let pool = TraderPool::default();
        let mut rng = StdRng::seed_from_u64(5);
        let trades = pool.generate(&d, 2_000, &mut rng);
        let tight = trades.iter().filter(|t| t.slippage_bps <= 30).count() as f64;
        let loose = trades.iter().filter(|t| t.slippage_bps > 100).count() as f64;
        let n = trades.len() as f64;
        assert!(
            (0.15..0.35).contains(&(tight / n)),
            "tight share {}",
            tight / n
        );
        assert!(
            (0.10..0.30).contains(&(loose / n)),
            "loose share {}",
            loose / n
        );
    }

    #[test]
    fn trader_addresses_cycle_within_population() {
        let pool = TraderPool {
            n_traders: 10,
            ..Default::default()
        };
        assert_eq!(pool.trader_address(3), pool.trader_address(13));
        assert_ne!(pool.trader_address(3), pool.trader_address(4));
    }

    #[test]
    fn empty_dex_generates_nothing() {
        let pool = TraderPool::default();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(pool.generate(&DexState::new(), 10, &mut rng).is_empty());
    }
}
