//! The miner population: power-law hashrate, proof-of-work winner
//! sampling, and the Flashbots adoption schedule that produces the
//! paper's Figure 4 ramp (0 % in January 2021 → 61.7 % by March →
//! 97.6 % by May → ~99.9 % in 2022).

use mev_types::{Address, Month};
use rand::rngs::StdRng;
use rand::Rng;

/// One mining pool / solo miner.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MinerAgent {
    pub address: Address,
    /// Relative hashrate weight (arbitrary units).
    pub weight: f64,
    /// First block at which this miner runs MEV-geth; `None` = never joins.
    pub flashbots_join_block: Option<u64>,
    /// Does this miner extract MEV for itself (rogue bundles / §6.3
    /// self-channels)?
    pub self_mev: bool,
    /// Indices of the non-Flashbots private channels this miner belongs to.
    pub channel_memberships: Vec<usize>,
}

impl MinerAgent {
    /// Is the miner a Flashbots participant at `block`?
    pub fn in_flashbots(&self, block: u64) -> bool {
        self.flashbots_join_block.is_some_and(|j| block >= j)
    }
}

/// The full miner set with cumulative weights for O(log n) sampling.
#[derive(Debug, Clone)]
pub struct MinerSet {
    miners: Vec<MinerAgent>,
    cumulative: Vec<f64>,
}

/// Address-space offset for miner addresses (disjoint from traders,
/// searchers, tokens, pools, platforms).
pub const MINER_ADDRESS_BASE: u64 = 0x4000_0000_0000;

/// Deterministic address of the rank-`i` miner.
pub fn miner_address(rank: u64) -> Address {
    Address::from_index(MINER_ADDRESS_BASE + rank)
}

impl MinerSet {
    /// Build a set of `n` miners with Zipf(`alpha`) hashrate weights and a
    /// rank-staggered Flashbots adoption schedule:
    ///
    /// * ranks 0–1 (the two dominant pools) join in Feb/Mar 2021,
    /// * ranks 2–5 in April, 6–15 in May,
    /// * the tail joins month by month through 2021,
    /// * the bottom `never_join` miners never participate.
    ///
    /// `block_of_month` maps a calendar month to its first block.
    pub fn zipf_with_adoption(
        n: usize,
        alpha: f64,
        never_join: usize,
        block_of_month: impl Fn(Month) -> u64,
    ) -> MinerSet {
        assert!(n >= 2 && never_join < n);
        let mut miners = Vec::with_capacity(n);
        for rank in 0..n {
            let weight = 1.0 / ((rank + 1) as f64).powf(alpha);
            let join_month = if rank >= n - never_join {
                None
            } else {
                Some(match rank {
                    0 => Month::new(2021, 2),
                    1 => Month::new(2021, 3),
                    2..=5 => Month::new(2021, 4),
                    6..=15 => Month::new(2021, 5),
                    r => {
                        // Tail joins June..December 2021, round-robin.
                        let m = 6 + ((r - 16) % 7) as u32;
                        Month::new(2021, m)
                    }
                })
            };
            miners.push(MinerAgent {
                address: miner_address(rank as u64),
                weight,
                flashbots_join_block: join_month.map(&block_of_month),
                // The two dominant pools also run self-extraction (§6.3:
                // Flexpool and F2Pool mine their own private sandwiches).
                self_mev: rank < 2,
                channel_memberships: Vec::new(),
            });
        }
        MinerSet::from_miners(miners)
    }

    /// Build from an explicit miner list.
    pub fn from_miners(miners: Vec<MinerAgent>) -> MinerSet {
        assert!(!miners.is_empty());
        let mut cumulative = Vec::with_capacity(miners.len());
        let mut acc = 0.0;
        for m in &miners {
            assert!(m.weight > 0.0, "non-positive hashrate weight");
            acc += m.weight;
            cumulative.push(acc);
        }
        MinerSet { miners, cumulative }
    }

    pub fn len(&self) -> usize {
        self.miners.len()
    }

    pub fn is_empty(&self) -> bool {
        self.miners.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &MinerAgent> {
        self.miners.iter()
    }

    pub fn get(&self, idx: usize) -> &MinerAgent {
        &self.miners[idx]
    }

    pub fn get_mut(&mut self, idx: usize) -> &mut MinerAgent {
        &mut self.miners[idx]
    }

    /// Find a miner by address.
    pub fn by_address(&self, addr: Address) -> Option<&MinerAgent> {
        self.miners.iter().find(|m| m.address == addr)
    }

    /// Sample the proof-of-work winner, hashrate-weighted.
    pub fn pick(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.miners.len() - 1)
    }

    /// Fraction of total hashrate held by Flashbots participants at `block`
    /// — the ground truth behind the Figure 4 estimate.
    pub fn flashbots_hashrate_share(&self, block: u64) -> f64 {
        let total: f64 = self.miners.iter().map(|m| m.weight).sum();
        let fb: f64 = self
            .miners
            .iter()
            .filter(|m| m.in_flashbots(block))
            .map(|m| m.weight)
            .sum();
        fb / total
    }

    /// Combined hashrate share of the top `k` miners.
    pub fn top_k_share(&self, k: usize) -> f64 {
        let total: f64 = self.miners.iter().map(|m| m.weight).sum();
        let mut weights: Vec<f64> = self.miners.iter().map(|m| m.weight).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        weights.iter().take(k).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::Timeline;
    use rand::SeedableRng;

    fn set() -> MinerSet {
        let tl = Timeline::paper_span(1000);
        MinerSet::zipf_with_adoption(55, 1.4, 5, |m| tl.first_block_of_month(m))
    }

    #[test]
    fn weights_are_zipf_and_sampling_respects_them() {
        let s = set();
        assert_eq!(s.len(), 55);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; s.len()];
        for _ in 0..200_000 {
            counts[s.pick(&mut rng)] += 1;
        }
        // Rank 0 wins ~2.6× rank 1 at alpha=1.4.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.0..3.5).contains(&ratio), "ratio {ratio}");
        // Long tail: rank 0 dwarfs rank 40.
        assert!(counts[0] > counts[40] * 20);
    }

    #[test]
    fn adoption_ramps_like_figure_4() {
        let s = set();
        let tl = Timeline::paper_span(1000);
        let b = |y, m| tl.first_block_of_month(Month::new(y, m));
        assert_eq!(s.flashbots_hashrate_share(b(2021, 1)), 0.0, "before launch");
        let march = s.flashbots_hashrate_share(b(2021, 3) + 1);
        assert!(march > 0.4 && march < 0.9, "march share {march}");
        let may = s.flashbots_hashrate_share(b(2021, 5) + 1);
        assert!(may > march, "monotone ramp");
        let late = s.flashbots_hashrate_share(b(2022, 2));
        assert!(late > 0.97, "late share {late}");
        assert!(late < 1.0, "never-joiners keep it below 100 %");
    }

    #[test]
    fn top_two_dominate() {
        let s = set();
        let share = s.top_k_share(2);
        assert!(share > 0.4, "top-2 share {share}");
        assert!(s.top_k_share(55) > 0.999);
    }

    #[test]
    fn dominant_miners_do_self_mev() {
        let s = set();
        assert!(s.get(0).self_mev);
        assert!(s.get(1).self_mev);
        assert!(!s.get(10).self_mev);
    }

    #[test]
    fn by_address_roundtrip() {
        let s = set();
        let addr = s.get(3).address;
        assert_eq!(s.by_address(addr).unwrap().address, addr);
        assert!(s.by_address(Address::ZERO).is_none());
    }

    #[test]
    fn in_flashbots_respects_join_block() {
        let m = MinerAgent {
            address: miner_address(0),
            weight: 1.0,
            flashbots_join_block: Some(100),
            self_mev: false,
            channel_memberships: vec![],
        };
        assert!(!m.in_flashbots(99));
        assert!(m.in_flashbots(100));
        let never = MinerAgent {
            flashbots_join_block: None,
            ..m
        };
        assert!(!never.in_flashbots(u64::MAX));
    }

    #[test]
    fn deterministic_sampling() {
        let s = set();
        let seq1: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| s.pick(&mut rng)).collect()
        };
        let seq2: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| s.pick(&mut rng)).collect()
        };
        assert_eq!(seq1, seq2);
    }
}
