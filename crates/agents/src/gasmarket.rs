//! The public gas-price market.
//!
//! Pre-Flashbots, MEV extractors fight priority gas auctions (PGAs) in the
//! open mempool, dragging the whole market's gas price up (§8.2: "two
//! different gas price auctions are occurring ... competition on one pool
//! does not impact the other"). When Flashbots absorbs that competition,
//! the public price collapses — the April-2021 cliff of Figure 6.
//!
//! The model: an AR(1) price level whose target is
//! `base · (1 + pga_coefficient · public_mev_intensity)`, plus log-normal
//! per-transaction noise and an escalation ladder for active PGA bidders.

use mev_types::{Wei, GWEI};
use rand::rngs::StdRng;
use rand::Rng;

/// The evolving public gas-price level.
#[derive(Debug, Clone)]
pub struct GasMarket {
    /// Organic demand floor, gwei.
    pub base_gwei: f64,
    /// How strongly public MEV competition inflates the market (multiplier
    /// at full intensity).
    pub pga_coefficient: f64,
    /// AR(1) smoothing toward the target level (0 < a ≤ 1: higher = faster).
    pub adjustment_rate: f64,
    /// Current level, gwei.
    level_gwei: f64,
}

impl GasMarket {
    pub fn new(base_gwei: f64, pga_coefficient: f64) -> GasMarket {
        assert!(base_gwei > 0.0 && pga_coefficient >= 0.0);
        GasMarket {
            base_gwei,
            pga_coefficient,
            adjustment_rate: 0.08,
            level_gwei: base_gwei * (1.0 + pga_coefficient),
        }
    }

    /// Advance one block. `public_mev_intensity ∈ [0,1]` is the share of
    /// MEV competition still happening in the public mempool.
    pub fn step(&mut self, public_mev_intensity: f64) {
        let intensity = public_mev_intensity.clamp(0.0, 1.0);
        let target = self.base_gwei * (1.0 + self.pga_coefficient * intensity);
        self.level_gwei += self.adjustment_rate * (target - self.level_gwei);
    }

    /// Current market level.
    pub fn level(&self) -> Wei {
        Wei((self.level_gwei * GWEI as f64) as u128)
    }

    /// Sample an ordinary user's gas price: level × log-normal(0, 0.25).
    pub fn sample_user_price(&self, rng: &mut StdRng) -> Wei {
        let noise = lognormal(rng, 0.25);
        Wei(((self.level_gwei * noise).max(1.0) * GWEI as f64) as u128)
    }

    /// Sample a PGA bidder's price at escalation `round` (each round
    /// multiplies the bid ~1.6×, the observed PGA escalation shape).
    pub fn sample_pga_price(&self, rng: &mut StdRng, round: u32) -> Wei {
        let escalation = 1.6f64.powi(round as i32);
        let noise = lognormal(rng, 0.15);
        Wei(((self.level_gwei * escalation * noise).max(1.0) * GWEI as f64) as u128)
    }
}

fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::gwei;
    use rand::SeedableRng;

    #[test]
    fn level_converges_down_when_mev_leaves_public_pool() {
        let mut m = GasMarket::new(20.0, 4.0);
        let high = m.level();
        // Flashbots absorbs everything: intensity 0.
        for _ in 0..200 {
            m.step(0.0);
        }
        let low = m.level();
        assert!(low < high / 3, "cliff: {high} -> {low}");
        assert!(low >= gwei(19), "floor holds");
    }

    #[test]
    fn level_recovers_when_competition_returns() {
        let mut m = GasMarket::new(20.0, 4.0);
        for _ in 0..200 {
            m.step(0.0);
        }
        let low = m.level();
        for _ in 0..200 {
            m.step(0.7);
        }
        assert!(m.level() > low * 2, "uptick when PGAs resume");
    }

    #[test]
    fn user_prices_scatter_around_level() {
        let m = GasMarket::new(20.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..2_000)
            .map(|_| m.sample_user_price(&mut rng).as_gwei_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 20.0).abs() < 2.0, "mean {mean}");
        assert!(samples.iter().all(|&s| s > 5.0 && s < 100.0));
    }

    #[test]
    fn pga_rounds_escalate() {
        let m = GasMarket::new(20.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let r0 = m.sample_pga_price(&mut rng, 0);
        let r3 = m.sample_pga_price(&mut rng, 3);
        assert!(r3 > r0 * 2, "round 3 ≫ round 0: {r0} vs {r3}");
    }

    #[test]
    fn intensity_is_clamped() {
        let mut m = GasMarket::new(20.0, 4.0);
        m.step(7.5); // clamped to 1.0
        let capped = m.level();
        let mut m2 = GasMarket::new(20.0, 4.0);
        m2.step(1.0);
        assert_eq!(capped, m2.level());
    }
}
