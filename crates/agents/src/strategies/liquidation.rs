//! Liquidation planning (§2.2.2, Definition 3).
//!
//! *Passive*: scan lending state for unhealthy fixed-spread positions and
//! rank by expected bonus. *Proactive*: watch the pending stream for an
//! oracle price update that will render positions unhealthy and plan the
//! liquidation that backruns it. Flash-loan variants borrow the repay
//! capital inside the same transaction (§2.3).

use mev_dex::PriceOracle;
use mev_lending::{LendingState, UnhealthyLoan};
use mev_types::{add_ratio, signed_delta, Action, Transaction, U256};

const E18: u128 = 10u128.pow(18);

/// A planned liquidation with its expected economics.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LiquidationPlan {
    pub loan: UnhealthyLoan,
    /// Debt-token amount to repay.
    pub repay_amount: u128,
    /// Expected collateral value received, in wei.
    pub expected_seize_wei: u128,
    /// Expected gross profit (`seize − repay`), in wei.
    pub gross_profit_wei: i128,
}

impl LiquidationPlan {
    /// The plain liquidation action.
    pub fn action(&self) -> Action {
        Action::Liquidate {
            platform: self.loan.platform,
            borrower: self.loan.borrower,
            debt_token: self.loan.debt_token,
            repay_amount: self.repay_amount,
        }
    }

    /// The flash-loan-funded variant: borrow the repay capital, liquidate,
    /// and (the caller appends) sell collateral to repay.
    pub fn flash_action(&self, flash_platform: mev_types::LendingPlatformId) -> Action {
        Action::FlashLoan {
            platform: flash_platform,
            token: self.loan.debt_token,
            amount: self.repay_amount,
            inner: vec![self.action()],
        }
    }
}

/// Rank every open liquidation opportunity by expected gross profit.
pub fn plan_liquidations(lending: &LendingState, oracle: &PriceOracle) -> Vec<LiquidationPlan> {
    let mut plans: Vec<LiquidationPlan> = lending
        .unhealthy_positions(oracle)
        .into_iter()
        .filter_map(|loan| {
            let repay_amount = loan.max_repay;
            if repay_amount == 0 {
                return None;
            }
            let repay_wei = oracle.to_wei(loan.debt_token, repay_amount)?;
            let bonus_bps = lending.platform(loan.platform).config.liquidation_bonus_bps as u128;
            let seize_wei = add_ratio(repay_wei, bonus_bps, 10_000);
            Some(LiquidationPlan {
                loan,
                repay_amount,
                expected_seize_wei: seize_wei,
                gross_profit_wei: signed_delta(seize_wei, repay_wei),
            })
        })
        .collect();
    plans.sort_by_key(|p| std::cmp::Reverse(p.gross_profit_wei));
    plans
}

/// Proactive scan: if `pending` is an oracle update, compute which
/// positions *will become* liquidatable once it lands, by evaluating
/// lending health under the hypothetical price. Returns the plans to
/// backrun the update with.
pub fn plan_backrun_of_oracle_update(
    lending: &LendingState,
    oracle: &PriceOracle,
    pending: &Transaction,
) -> Vec<LiquidationPlan> {
    let Action::OracleUpdate { token, price_wei } = pending.action else {
        return Vec::new();
    };
    // Hypothetical oracle with the pending price applied "now".
    let mut hypo = oracle.clone();
    let future_block = u64::MAX; // strictly after everything recorded
    hypo.update(token, future_block, price_wei);
    // Only *newly* unhealthy loans are backrun opportunities; already
    // unhealthy ones are plain passive targets.
    let already: std::collections::HashSet<_> = lending
        .unhealthy_positions(oracle)
        .into_iter()
        .map(|l| (l.platform, l.borrower))
        .collect();
    plan_liquidations(lending, &hypo)
        .into_iter()
        .filter(|p| !already.contains(&(p.loan.platform, p.loan.borrower)))
        .collect()
}

/// Convert a token amount to wei at a given price (helper for sizing the
/// collateral dump after a flash-loan liquidation).
pub fn token_to_wei(amount: u128, price_wei: u128) -> u128 {
    U256::from(amount)
        .mul_u128(price_wei)
        .div_u128(E18)
        .as_u128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{gwei, Address, Gas, LendingPlatformId, TokenId, TxFee, Wei};

    fn setup() -> (LendingState, PriceOracle) {
        let mut lending = LendingState::new();
        let mut oracle = PriceOracle::new();
        oracle.update(TokenId(1), 0, 2 * E18);
        let p = lending.platform_mut(LendingPlatformId::AaveV2);
        p.seed_liquidity(TokenId::WETH, 1_000_000 * E18);
        // Two borrowers, one riskier than the other.
        for (i, borrow) in [(1u64, 100 * E18), (2, 140 * E18)] {
            let u = Address::from_index(i);
            p.deposit(u, TokenId(1), 100 * E18);
            p.borrow(u, TokenId::WETH, borrow, &oracle).unwrap();
        }
        (lending, oracle)
    }

    #[test]
    fn no_plans_while_healthy() {
        let (lending, oracle) = setup();
        assert!(plan_liquidations(&lending, &oracle).is_empty());
    }

    #[test]
    fn plans_after_crash_ranked_by_profit() {
        let (lending, mut oracle) = setup();
        oracle.update(TokenId(1), 10, E18); // halves collateral value
        let plans = plan_liquidations(&lending, &oracle);
        assert_eq!(plans.len(), 2);
        // Bigger debt ⇒ bigger max repay ⇒ bigger bonus profit, first.
        assert_eq!(plans[0].loan.borrower, Address::from_index(2));
        assert!(plans[0].gross_profit_wei > plans[1].gross_profit_wei);
        // Bonus is 5 % of repay value.
        let repay_wei = plans[0].repay_amount; // WETH debt: 1:1 with wei
        assert_eq!(plans[0].gross_profit_wei as u128, repay_wei * 500 / 10_000);
    }

    #[test]
    fn seize_formula_matches_naive_bonus_at_market_scale() {
        // Decision pin: the widened bonus is bit-identical to the old
        // `repay + repay * bps / 10_000` at realistic repay sizes.
        let (lending, mut oracle) = setup();
        oracle.update(TokenId(1), 10, E18);
        let plans = plan_liquidations(&lending, &oracle);
        for p in &plans {
            let repay_wei = oracle.to_wei(p.loan.debt_token, p.repay_amount).unwrap();
            assert_eq!(
                p.expected_seize_wei,
                repay_wei + repay_wei * 500 / 10_000,
                "5 % bonus on {repay_wei}"
            );
            assert_eq!(
                p.gross_profit_wei,
                (p.expected_seize_wei - repay_wei) as i128
            );
        }
    }

    #[test]
    fn backrun_finds_newly_unhealthy_only() {
        let (lending, oracle) = setup();
        // Pending oracle update that crashes the collateral.
        let update = Transaction::new(
            Address::from_index(50),
            0,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(45_000),
            Action::OracleUpdate {
                token: TokenId(1),
                price_wei: E18,
            },
            Wei::ZERO,
            None,
        );
        let plans = plan_backrun_of_oracle_update(&lending, &oracle, &update);
        assert_eq!(plans.len(), 2, "both become unhealthy at the new price");
        // A non-oracle pending tx yields nothing.
        let noise = Transaction::new(
            Address::from_index(50),
            1,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(21_000),
            Action::Transfer {
                to: Address::ZERO,
                value: Wei(1),
            },
            Wei::ZERO,
            None,
        );
        assert!(plan_backrun_of_oracle_update(&lending, &oracle, &noise).is_empty());
        // An update that *raises* the price finds nothing either.
        let pump = Transaction::new(
            Address::from_index(50),
            2,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(45_000),
            Action::OracleUpdate {
                token: TokenId(1),
                price_wei: 4 * E18,
            },
            Wei::ZERO,
            None,
        );
        assert!(plan_backrun_of_oracle_update(&lending, &oracle, &pump).is_empty());
    }

    #[test]
    fn backrun_excludes_already_unhealthy() {
        let (lending, mut oracle) = setup();
        // Crash once: both already unhealthy.
        oracle.update(TokenId(1), 10, E18);
        let update = Transaction::new(
            Address::from_index(50),
            0,
            TxFee::Legacy {
                gas_price: gwei(50),
            },
            Gas(45_000),
            Action::OracleUpdate {
                token: TokenId(1),
                price_wei: E18 / 2,
            },
            Wei::ZERO,
            None,
        );
        assert!(plan_backrun_of_oracle_update(&lending, &oracle, &update).is_empty());
    }

    #[test]
    fn actions_built_correctly() {
        let (lending, mut oracle) = setup();
        oracle.update(TokenId(1), 10, E18);
        let plan = &plan_liquidations(&lending, &oracle)[0];
        match plan.action() {
            Action::Liquidate {
                platform,
                borrower,
                debt_token,
                repay_amount,
            } => {
                assert_eq!(platform, LendingPlatformId::AaveV2);
                assert_eq!(borrower, plan.loan.borrower);
                assert_eq!(debt_token, TokenId::WETH);
                assert_eq!(repay_amount, plan.repay_amount);
            }
            _ => panic!("wrong action"),
        }
        match plan.flash_action(LendingPlatformId::DyDx) {
            Action::FlashLoan {
                platform,
                token,
                amount,
                inner,
            } => {
                assert_eq!(platform, LendingPlatformId::DyDx);
                assert_eq!(token, TokenId::WETH);
                assert_eq!(amount, plan.repay_amount);
                assert_eq!(inner.len(), 1);
            }
            _ => panic!("wrong action"),
        }
    }

    #[test]
    fn token_to_wei_scales() {
        assert_eq!(token_to_wei(10 * E18, 2 * E18), 20 * E18);
        assert_eq!(token_to_wei(E18 / 2, E18), E18 / 2);
    }
}
