//! Arbitrage planning (§2.2.2, Definition 2).
//!
//! The *passive* strategy scans current pool state for the same pair priced
//! differently on two exchanges and sizes the round trip by ternary search
//! on the (unimodal) profit curve. The *proactive* strategy — copying a
//! pending arbitrage with a higher fee — is a transaction-level transform
//! provided by [`copy_with_higher_fee`].

use mev_dex::{DexState, Pool};
use mev_types::{
    bump_pct, signed_delta, wei_i128, Action, PoolId, SwapCall, TokenId, Transaction, TxFee, Wei,
};

/// A planned two-leg arbitrage: buy `token` on `buy_pool`, sell on
/// `sell_pool`, both against `base` (WETH in practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbPlan {
    pub base: TokenId,
    pub token: TokenId,
    pub buy_pool: PoolId,
    pub sell_pool: PoolId,
    /// Input in base-token units.
    pub amount_in: u128,
    /// Expected intermediate token amount.
    pub mid_amount: u128,
    /// Expected proceeds in base-token units.
    pub amount_out: u128,
    /// `amount_out − amount_in` (gross, before fees).
    pub gross_profit: i128,
}

impl ArbPlan {
    /// The route legs this plan executes.
    pub fn legs(&self) -> Vec<SwapCall> {
        vec![
            SwapCall {
                pool: self.buy_pool,
                token_in: self.base,
                token_out: self.token,
                amount_in: self.amount_in,
                min_amount_out: 0,
            },
            SwapCall {
                pool: self.sell_pool,
                token_in: self.token,
                token_out: self.base,
                amount_in: self.mid_amount,
                min_amount_out: 0,
            },
        ]
    }
}

/// Round-trip proceeds of `x` base tokens through buy then sell.
fn round_trip(
    buy: &Pool,
    sell: &Pool,
    base: TokenId,
    token: TokenId,
    x: u128,
) -> Option<(u128, u128)> {
    let mid = buy.quote(base, x).ok()?;
    if buy.other(base) != Some(token) {
        return None;
    }
    let out = sell.quote(token, mid).ok()?;
    Some((mid, out))
}

/// Size the arbitrage between two specific pools by ternary search.
pub fn size_arbitrage(
    buy: &Pool,
    sell: &Pool,
    base: TokenId,
    token: TokenId,
    max_capital: u128,
) -> Option<ArbPlan> {
    if max_capital == 0 {
        return None;
    }
    let profit = |x: u128| -> i128 {
        match round_trip(buy, sell, base, token, x) {
            Some((_, out)) => out as i128 - x as i128,
            None => i128::MIN,
        }
    };
    // Ternary search to full convergence: the interval shrinks by ~1/3
    // per round, so even a 2¹²⁸ range needs < 250 rounds.
    let (mut lo, mut hi) = (1u128, max_capital);
    while hi - lo > 2 {
        let m1 = lo + (hi - lo) / 3;
        let m2 = hi - (hi - lo) / 3;
        if profit(m1) < profit(m2) {
            lo = m1 + 1;
        } else {
            hi = m2 - 1;
        }
    }
    let best_x = (lo..=hi).max_by_key(|&x| profit(x))?;
    let (mid, out) = round_trip(buy, sell, base, token, best_x)?;
    let plan = ArbPlan {
        base,
        token,
        buy_pool: buy.id,
        sell_pool: sell.id,
        amount_in: best_x,
        mid_amount: mid,
        amount_out: out,
        gross_profit: signed_delta(out, best_x),
    };
    (plan.gross_profit > 0).then_some(plan)
}

/// Passive scan (§2.2.2): for each token, compare every ordered pair of
/// arbitrage-covered pools trading (base, token) and return the best plan
/// above `min_profit`.
pub fn find_arbitrage(
    dex: &DexState,
    base: TokenId,
    tokens: &[TokenId],
    max_capital: u128,
    min_profit: u128,
) -> Option<ArbPlan> {
    let mut best: Option<ArbPlan> = None;
    for &token in tokens {
        let pools: Vec<&Pool> = dex
            .pools_for_pair(base, token)
            .into_iter()
            .filter(|p| p.id.exchange.arbitrage_covered())
            .collect();
        for &buy in &pools {
            for &sell in &pools {
                if buy.id == sell.id {
                    continue;
                }
                // Quick spot-price filter: the token must be cheaper on
                // `buy` by more than the two LP fees, or sizing cannot
                // possibly clear them — this prunes the vast majority of
                // pairs before the expensive search.
                let (Some(pb), Some(ps)) =
                    (buy.price_e18(base, token), sell.price_e18(base, token))
                else {
                    continue;
                };
                if pb <= ps + ps / 120 {
                    continue; // spread under ~0.83 % (2 × 30 bps + margin)
                }
                // The binding depth is the *output* side: the base tokens
                // the sell pool can pay out. Bounding the search range by
                // it keeps the ternary search short without excluding the
                // optimum.
                let depth_cap = sell.reserve_of(base).unwrap_or(max_capital) / 2;
                let cap = max_capital.min(depth_cap.max(1));
                if let Some(plan) = size_arbitrage(buy, sell, base, token, cap) {
                    if plan.gross_profit >= wei_i128(min_profit)
                        && best.map_or(true, |b| plan.gross_profit > b.gross_profit)
                    {
                        best = Some(plan);
                    }
                }
            }
        }
    }
    best
}

/// A three-leg triangular plan: base → mid (pool a), mid → other (pool b),
/// other → base (pool c). Exercises the detector's multi-hop cycle path
/// and harvests divergences a two-leg scan cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrianglePlan {
    pub base: TokenId,
    pub legs: [SwapCall; 3],
    pub amount_in: u128,
    pub amount_out: u128,
    pub gross_profit: i128,
}

/// Scan for a profitable triangle `base → t1 → t2 → base` across covered
/// exchanges, sizing by the same ternary search as the two-leg case.
pub fn find_triangle_arbitrage(
    dex: &DexState,
    base: TokenId,
    tokens: &[TokenId],
    max_capital: u128,
    min_profit: u128,
) -> Option<TrianglePlan> {
    let covered = |p: &&Pool| p.id.exchange.arbitrage_covered();
    let mut best: Option<TrianglePlan> = None;
    for (i, &t1) in tokens.iter().enumerate() {
        for &t2 in tokens.iter().skip(i + 1) {
            // Need a direct t1↔t2 pool and base legs on both ends.
            let mids: Vec<&Pool> = dex
                .pools_for_pair(t1, t2)
                .into_iter()
                .filter(covered)
                .collect();
            if mids.is_empty() {
                continue;
            }
            let firsts: Vec<&Pool> = dex
                .pools_for_pair(base, t1)
                .into_iter()
                .filter(covered)
                .collect();
            let lasts: Vec<&Pool> = dex
                .pools_for_pair(t2, base)
                .into_iter()
                .filter(covered)
                .collect();
            for &a in &firsts {
                for &m in &mids {
                    for &c in &lasts {
                        if a.id == c.id {
                            continue;
                        }
                        let round = |x: u128| -> Option<(u128, u128, u128)> {
                            let o1 = a.quote(base, x).ok()?;
                            let o2 = m.quote(t1, o1).ok()?;
                            let o3 = c.quote(t2, o2).ok()?;
                            Some((o1, o2, o3))
                        };
                        let profit = |x: u128| -> i128 {
                            round(x)
                                .map(|(_, _, o3)| o3 as i128 - x as i128)
                                .unwrap_or(i128::MIN)
                        };
                        // Cheap viability probe before the full search.
                        let probe = max_capital.min(10u128.pow(18));
                        if profit(probe.max(1)) <= 0 && profit((probe / 16).max(1)) <= 0 {
                            continue;
                        }
                        let cap = max_capital
                            .min(c.reserve_of(base).unwrap_or(max_capital) / 2)
                            .max(1);
                        let (mut lo, mut hi) = (1u128, cap);
                        while hi - lo > 2 {
                            let m1 = lo + (hi - lo) / 3;
                            let m2 = hi - (hi - lo) / 3;
                            if profit(m1) < profit(m2) {
                                lo = m1 + 1;
                            } else {
                                hi = m2 - 1;
                            }
                        }
                        let Some(x) = (lo..=hi).max_by_key(|&x| profit(x)) else {
                            continue;
                        };
                        let Some((o1, o2, o3)) = round(x) else {
                            continue;
                        };
                        let gross = signed_delta(o3, x);
                        if gross < wei_i128(min_profit) {
                            continue;
                        }
                        if best.map_or(true, |b| gross > b.gross_profit) {
                            best = Some(TrianglePlan {
                                base,
                                legs: [
                                    SwapCall {
                                        pool: a.id,
                                        token_in: base,
                                        token_out: t1,
                                        amount_in: x,
                                        min_amount_out: 0,
                                    },
                                    SwapCall {
                                        pool: m.id,
                                        token_in: t1,
                                        token_out: t2,
                                        amount_in: o1,
                                        min_amount_out: 0,
                                    },
                                    SwapCall {
                                        pool: c.id,
                                        token_in: t2,
                                        token_out: base,
                                        amount_in: o2,
                                        min_amount_out: 0,
                                    },
                                ],
                                amount_in: x,
                                amount_out: o3,
                                gross_profit: gross,
                            });
                        }
                    }
                }
            }
        }
    }
    best
}

/// Proactive arbitrage (Definition 2): copy a pending arbitrage route and
/// outbid its fee so a rational miner orders the copy first.
pub fn copy_with_higher_fee(
    victim: &Transaction,
    extractor: mev_types::Address,
    extractor_nonce: u64,
    fee_bump_pct: u128,
) -> Option<Transaction> {
    let Action::Route(legs) = &victim.action else {
        return None;
    };
    let new_fee = match victim.fee {
        TxFee::Legacy { gas_price } => TxFee::Legacy {
            gas_price: Wei(bump_pct(gas_price.0, fee_bump_pct)),
        },
        TxFee::Eip1559 {
            max_fee,
            max_priority,
        } => TxFee::Eip1559 {
            max_fee: Wei(bump_pct(max_fee.0, fee_bump_pct)),
            max_priority: Wei(bump_pct(max_priority.0, fee_bump_pct)),
        },
    };
    Some(Transaction::new(
        extractor,
        extractor_nonce,
        new_fee,
        victim.gas_limit,
        Action::Route(legs.clone()),
        victim.coinbase_tip,
        Some(mev_types::GroundTruth::Arbitrage),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_dex::pool::build;
    use mev_types::{gwei, Address, Gas, GroundTruth};

    const E18: u128 = 10u128.pow(18);

    fn route_tx(fee: TxFee) -> Transaction {
        let leg = SwapCall {
            pool: PoolId {
                exchange: mev_types::ExchangeId::UniswapV2,
                index: 0,
            },
            token_in: TokenId::WETH,
            token_out: TokenId(1),
            amount_in: E18,
            min_amount_out: 0,
        };
        Transaction::new(
            Address::from_index(9),
            0,
            fee,
            Gas(200_000),
            Action::Route(vec![leg]),
            Wei::ZERO,
            None,
        )
    }

    #[test]
    fn fee_bump_matches_naive_formula_at_market_scale() {
        // Decision pin: the widened bump is bit-identical to the old
        // `fee + fee * pct / 100 + 1` at realistic gas prices.
        let victim = route_tx(TxFee::Eip1559 {
            max_fee: gwei(100),
            max_priority: gwei(2),
        });
        let copied = copy_with_higher_fee(&victim, Address::from_index(1), 0, 15).unwrap();
        let TxFee::Eip1559 {
            max_fee,
            max_priority,
        } = copied.fee
        else {
            panic!("fee kind preserved");
        };
        assert_eq!(max_fee.0, gwei(100).0 + gwei(100).0 * 15 / 100 + 1);
        assert_eq!(max_priority.0, gwei(2).0 + gwei(2).0 * 15 / 100 + 1);
    }

    #[test]
    fn fee_bump_saturates_at_boundary_instead_of_overflowing() {
        let victim = route_tx(TxFee::Legacy {
            gas_price: Wei(u128::MAX),
        });
        let copied = copy_with_higher_fee(&victim, Address::from_index(1), 0, 15).unwrap();
        let TxFee::Legacy { gas_price } = copied.fee else {
            panic!("fee kind preserved");
        };
        assert_eq!(gas_price, Wei(u128::MAX));
    }

    /// Uniswap prices TKN1 at 2.0/WETH; Sushi at 2.2/WETH (TKN1 cheap on
    /// Sushi ⇒ buy on Sushi, sell on Uniswap).
    fn dex() -> DexState {
        let mut d = DexState::new();
        d.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            1_000 * E18,
            2_000 * E18,
        ));
        d.add_pool(build::sushiswap(
            0,
            TokenId::WETH,
            TokenId(1),
            1_000 * E18,
            2_200 * E18,
        ));
        d
    }

    #[test]
    fn finds_the_cross_dex_spread() {
        let d = dex();
        let plan = find_arbitrage(&d, TokenId::WETH, &[TokenId(1)], 1_000 * E18, 0).unwrap();
        assert_eq!(plan.buy_pool.exchange, mev_types::ExchangeId::SushiSwap);
        assert_eq!(plan.sell_pool.exchange, mev_types::ExchangeId::UniswapV2);
        assert!(plan.gross_profit > 0);
        assert_eq!(plan.legs().len(), 2);
    }

    #[test]
    fn sizing_is_sane() {
        let d = dex();
        let plan = find_arbitrage(&d, TokenId::WETH, &[TokenId(1)], 1_000 * E18, 0).unwrap();
        // Optimal input is interior: strictly between 0 and capital.
        assert!(plan.amount_in > 0 && plan.amount_in < 1_000 * E18);
        // Profit at optimum beats half and double (unimodality check).
        let buy = d.pool(plan.buy_pool).unwrap();
        let sell = d.pool(plan.sell_pool).unwrap();
        let p = |x| {
            round_trip(buy, sell, TokenId::WETH, TokenId(1), x)
                .map(|(_, out)| out as i128 - x as i128)
                .unwrap_or(i128::MIN)
        };
        assert!(p(plan.amount_in) >= p(plan.amount_in / 2));
        assert!(p(plan.amount_in) >= p((plan.amount_in * 2).min(1_000 * E18)));
    }

    #[test]
    fn balanced_pools_offer_nothing() {
        let mut d = DexState::new();
        d.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            1_000 * E18,
            2_000 * E18,
        ));
        d.add_pool(build::sushiswap(
            0,
            TokenId::WETH,
            TokenId(1),
            500 * E18,
            1_000 * E18,
        ));
        assert!(find_arbitrage(&d, TokenId::WETH, &[TokenId(1)], 1_000 * E18, 0).is_none());
    }

    #[test]
    fn min_profit_filters() {
        let d = dex();
        let plan = find_arbitrage(&d, TokenId::WETH, &[TokenId(1)], 1_000 * E18, 0).unwrap();
        let too_high = plan.gross_profit as u128 + 1;
        assert!(find_arbitrage(&d, TokenId::WETH, &[TokenId(1)], 1_000 * E18, too_high).is_none());
    }

    #[test]
    fn uniswap_v1_not_covered() {
        // The paper's arbitrage detector does not cover Uniswap V1, and
        // neither does the scanner.
        let mut d = DexState::new();
        d.add_pool(build::uniswap_v1(0, TokenId(1), 1_000 * E18, 2_000 * E18));
        d.add_pool(build::sushiswap(
            0,
            TokenId::WETH,
            TokenId(1),
            1_000 * E18,
            2_200 * E18,
        ));
        assert!(find_arbitrage(&d, TokenId::WETH, &[TokenId(1)], 1_000 * E18, 0).is_none());
    }

    #[test]
    fn triangle_found_across_three_pools() {
        const E18: u128 = 10u128.pow(18);
        let mut d = DexState::new();
        // WETH→TKN1 at 2.0, TKN1→TKN2 at 1.1 (mispriced rich), TKN2→WETH at 0.55.
        // Round trip: 1 WETH → 2 TKN1 → 2.2 TKN2 → 1.21 WETH: ~21 % edge.
        d.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            1_000 * E18,
            2_000 * E18,
        ));
        d.add_pool(build::sushiswap(
            1,
            TokenId(1),
            TokenId(2),
            2_000 * E18,
            2_200 * E18,
        ));
        d.add_pool(build::bancor(
            2,
            TokenId(2),
            TokenId::WETH,
            2_000 * E18,
            1_100 * E18,
        ));
        let plan =
            find_triangle_arbitrage(&d, TokenId::WETH, &[TokenId(1), TokenId(2)], 1_000 * E18, 0)
                .expect("triangle exists");
        assert!(plan.gross_profit > 0);
        assert_eq!(plan.legs[0].token_in, TokenId::WETH);
        assert_eq!(plan.legs[2].token_out, TokenId::WETH);
        // Legs chain: out token of leg k is in token of leg k+1.
        assert_eq!(plan.legs[0].token_out, plan.legs[1].token_in);
        assert_eq!(plan.legs[1].token_out, plan.legs[2].token_in);
        // Interior optimum.
        assert!(plan.amount_in > 0 && plan.amount_in < 1_000 * E18);
    }

    #[test]
    fn no_triangle_on_consistent_prices() {
        const E18: u128 = 10u128.pow(18);
        let mut d = DexState::new();
        // Prices consistent: 2.0 × 1.0 × 0.5 = 1.0 ⇒ fees make it a loss.
        d.add_pool(build::uniswap_v2(
            0,
            TokenId::WETH,
            TokenId(1),
            1_000 * E18,
            2_000 * E18,
        ));
        d.add_pool(build::sushiswap(
            1,
            TokenId(1),
            TokenId(2),
            2_000 * E18,
            2_000 * E18,
        ));
        d.add_pool(build::bancor(
            2,
            TokenId(2),
            TokenId::WETH,
            2_000 * E18,
            1_000 * E18,
        ));
        assert!(find_triangle_arbitrage(
            &d,
            TokenId::WETH,
            &[TokenId(1), TokenId(2)],
            1_000 * E18,
            0
        )
        .is_none());
    }

    #[test]
    fn copy_with_higher_fee_outbids() {
        let d = dex();
        let plan = find_arbitrage(&d, TokenId::WETH, &[TokenId(1)], 1_000 * E18, 0).unwrap();
        let victim = Transaction::new(
            Address::from_index(1),
            0,
            TxFee::Legacy {
                gas_price: gwei(100),
            },
            Gas(200_000),
            Action::Route(plan.legs()),
            Wei::ZERO,
            None,
        );
        let copy = copy_with_higher_fee(&victim, Address::from_index(2), 7, 10).unwrap();
        assert!(copy.bid_per_gas() > victim.bid_per_gas());
        assert_eq!(copy.from, Address::from_index(2));
        assert_eq!(copy.nonce, 7);
        assert_eq!(copy.action, victim.action, "identical route");
        assert_eq!(copy.ground_truth, Some(GroundTruth::Arbitrage));
        // Non-route transactions cannot be copied as arbitrage.
        let not_arb = Transaction::new(
            Address::from_index(1),
            1,
            TxFee::Legacy {
                gas_price: gwei(100),
            },
            Gas(21_000),
            Action::Transfer {
                to: Address::ZERO,
                value: Wei(1),
            },
            Wei::ZERO,
            None,
        );
        assert!(copy_with_higher_fee(&not_arb, Address::from_index(2), 8, 10).is_none());
    }
}
