//! Sandwich planning (§2.2.2, Definition 1).
//!
//! Given a pending victim swap, find the largest front-run the victim's
//! slippage guard tolerates: buy before the victim (pushing the price up),
//! let the victim buy at the worse price, sell right after. The sizing is
//! a binary search over the pool's actual quoting function, so it is exact
//! for every engine type, not just constant product.

use mev_dex::Pool;
use mev_types::{signed_delta, SwapCall};

/// A planned sandwich.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SandwichPlan {
    /// Front-run input, in the victim's input token.
    pub front_in: u128,
    /// Tokens the front-run acquires (and the back-run sells).
    pub front_out: u128,
    /// Expected output of the victim's swap after the front-run.
    pub victim_out: u128,
    /// Expected back-run proceeds, in the victim's input token.
    pub back_out: u128,
    /// Expected gross profit in the victim's input token
    /// (`back_out − front_in`), before fees and tips.
    pub gross_profit: i128,
}

/// Simulate `front_in` through (front, victim, back) on a scratch copy of
/// the pool. Returns `None` if any leg fails.
fn simulate(pool: &Pool, victim: &SwapCall, front_in: u128) -> Option<SandwichPlan> {
    let mut scratch = pool.clone();
    let front_out = if front_in == 0 {
        0
    } else {
        scratch.swap(victim.token_in, front_in, 0).ok()?
    };
    let victim_out = scratch.swap(victim.token_in, victim.amount_in, 0).ok()?;
    if victim_out < victim.min_amount_out {
        return None;
    }
    let back_out = if front_out == 0 {
        0
    } else {
        scratch.swap(victim.token_out, front_out, 0).ok()?
    };
    Some(SandwichPlan {
        front_in,
        front_out,
        victim_out,
        back_out,
        gross_profit: signed_delta(back_out, front_in),
    })
}

/// Plan the largest sandwich the victim's `min_amount_out` allows, bounded
/// by the attacker's capital. Returns `None` when no profitable sandwich
/// exists (victim guard too tight, pool too deep, or trade too small).
pub fn plan_sandwich(pool: &Pool, victim: &SwapCall, max_capital: u128) -> Option<SandwichPlan> {
    if victim.pool != pool.id || max_capital == 0 {
        return None;
    }
    // The victim must at least execute with no front-run.
    simulate(pool, victim, 0)?;
    // Binary search the largest feasible front_in in [0, max_capital].
    let (mut lo, mut hi) = (0u128, max_capital);
    for _ in 0..64 {
        if hi - lo <= 1 {
            break;
        }
        let mid = lo + (hi - lo) / 2;
        if simulate(pool, victim, mid).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        return None;
    }
    let plan = simulate(pool, victim, lo)?;
    (plan.gross_profit > 0).then_some(plan)
}

/// A buggy searcher's plan (§5.2): identical sizing, but no profitability
/// check — the contract happily executes sandwiches whose fees exceed the
/// captured slippage, realising the losses the paper measures (1.58 % of
/// Flashbots sandwiches, 113.67 ETH in total).
pub fn plan_sandwich_buggy(
    pool: &Pool,
    victim: &SwapCall,
    max_capital: u128,
) -> Option<SandwichPlan> {
    if victim.pool != pool.id || max_capital == 0 {
        return None;
    }
    simulate(pool, victim, 0)?;
    let (mut lo, mut hi) = (0u128, max_capital);
    for _ in 0..64 {
        if hi - lo <= 1 {
            break;
        }
        let mid = lo + (hi - lo) / 2;
        if simulate(pool, victim, mid).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        return None;
    }
    // No `gross_profit > 0` filter: this is the bug.
    simulate(pool, victim, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_dex::pool::build;
    use mev_types::TokenId;
    use proptest::prelude::*;

    const E18: u128 = 10u128.pow(18);

    fn pool() -> Pool {
        build::uniswap_v2(0, TokenId::WETH, TokenId(1), 1_000 * E18, 2_000 * E18)
    }

    fn victim(amount_in: u128, min_out: u128) -> SwapCall {
        SwapCall {
            pool: pool().id,
            token_in: TokenId::WETH,
            token_out: TokenId(1),
            amount_in,
            min_amount_out: min_out,
        }
    }

    /// A victim quote with a given slippage tolerance in bps.
    fn victim_with_slippage(amount_in: u128, tolerance_bps: u128) -> SwapCall {
        let p = pool();
        let quote = p.quote(TokenId::WETH, amount_in).unwrap();
        victim(amount_in, quote * (10_000 - tolerance_bps) / 10_000)
    }

    #[test]
    fn gross_profit_is_the_signed_difference_of_the_legs() {
        // Decision pin: profit accounting is exactly back_out - front_in
        // (as it was with bare casts), just clamped at the i128 boundary.
        let v = victim_with_slippage(20 * E18, 300);
        let plan = plan_sandwich(&pool(), &v, 10_000 * E18).unwrap();
        assert_eq!(
            plan.gross_profit,
            plan.back_out as i128 - plan.front_in as i128
        );
        assert_eq!(
            plan.gross_profit,
            mev_types::signed_delta(plan.back_out, plan.front_in)
        );
    }

    #[test]
    fn loose_guard_invites_big_sandwich() {
        let v = victim_with_slippage(20 * E18, 300); // 3 % tolerance
        let plan = plan_sandwich(&pool(), &v, 10_000 * E18).unwrap();
        assert!(plan.front_in > 0);
        assert!(plan.gross_profit > 0);
        assert!(plan.victim_out >= v.min_amount_out, "victim still executes");
    }

    #[test]
    fn tighter_guard_shrinks_the_sandwich() {
        // A large victim is attackable even at 5 bps, but the tight guard
        // caps the extractable amount far below the loose-guard case
        // (§7's "tighter slippage protection" countermeasure).
        let loose = plan_sandwich(&pool(), &victim_with_slippage(20 * E18, 300), 10_000 * E18)
            .expect("loose guard is sandwichable");
        match plan_sandwich(&pool(), &victim_with_slippage(20 * E18, 5), 10_000 * E18) {
            Some(tight) => {
                assert!(tight.front_in < loose.front_in / 10);
                assert!(tight.gross_profit < loose.gross_profit);
            }
            None => {} // fully blocked is also acceptable protection
        }
    }

    #[test]
    fn zero_tolerance_victim_cannot_be_sandwiched() {
        let p = pool();
        let quote = p.quote(TokenId::WETH, 10 * E18).unwrap();
        let v = victim(10 * E18, quote);
        assert!(plan_sandwich(&p, &v, 10_000 * E18).is_none());
    }

    #[test]
    fn capital_caps_front_run() {
        let v = victim_with_slippage(20 * E18, 500);
        let small = plan_sandwich(&pool(), &v, E18).unwrap();
        let large = plan_sandwich(&pool(), &v, 1_000 * E18).unwrap();
        assert!(small.front_in <= E18);
        assert!(large.front_in > small.front_in);
        // Bigger tolerance consumed ⇒ bigger gross profit.
        assert!(large.gross_profit >= small.gross_profit);
    }

    #[test]
    fn wrong_pool_rejected() {
        let other = build::sushiswap(0, TokenId::WETH, TokenId(1), 500 * E18, 1_000 * E18);
        let v = victim_with_slippage(10 * E18, 300);
        assert!(plan_sandwich(&other, &v, 100 * E18).is_none());
    }

    #[test]
    fn buggy_plan_can_lose_money() {
        // A tiny victim with a loose guard: the feasible front-run's fees
        // exceed the capturable slippage, so executing it realises a loss.
        let v = victim_with_slippage(E18, 300); // 1 ETH victim, 3 % tolerance
        let plan = plan_sandwich_buggy(&pool(), &v, 500 * E18).unwrap();
        assert!(
            plan.gross_profit < 0,
            "fees should exceed captured slippage"
        );
        // The correct planner abstains from this victim.
        assert!(plan_sandwich(&pool(), &v, 500 * E18).is_none());
    }

    #[test]
    fn works_on_v3_style_pools() {
        let p = build::uniswap_v3(0, TokenId::WETH, TokenId(1), 1_000 * E18, 2_000 * E18);
        let quote = p.quote(TokenId::WETH, 20 * E18).unwrap();
        let v = SwapCall {
            pool: p.id,
            token_in: TokenId::WETH,
            token_out: TokenId(1),
            amount_in: 20 * E18,
            min_amount_out: quote * 97 / 100,
        };
        let plan = plan_sandwich(&p, &v, 10_000 * E18).unwrap();
        assert!(plan.gross_profit > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Whatever the planner returns, the victim's guard still holds and
        /// the plan replays exactly on a fresh pool.
        #[test]
        fn prop_plan_respects_victim_guard(
            amount in 1u128..=50,
            tol_bps in 10u128..=1_000,
            capital in 1u128..=5_000,
        ) {
            let v = victim_with_slippage(amount * E18, tol_bps);
            if let Some(plan) = plan_sandwich(&pool(), &v, capital * E18) {
                prop_assert!(plan.victim_out >= v.min_amount_out);
                prop_assert!(plan.front_in <= capital * E18);
                prop_assert!(plan.gross_profit > 0);
                // Replay on a fresh pool gives identical numbers.
                let replay = simulate(&pool(), &v, plan.front_in).unwrap();
                prop_assert_eq!(replay, plan);
            }
        }
    }
}
