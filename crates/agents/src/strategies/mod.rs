//! MEV extraction strategies (§2.2.2): pure planners that inspect world
//! state (and, for proactive variants, the pending-transaction stream)
//! and emit the transactions an extractor would submit.

pub mod arbitrage;
pub mod liquidation;
pub mod sandwich;
