//! # mev-agents
//!
//! The behavioural layer that generates the paper's measured phenomena
//! from first principles: a miner population with power-law hashrate and a
//! Flashbots adoption schedule (§4.3–4.4), ordinary traders whose large
//! swaps become sandwich victims (§2.2), searcher strategies — sandwich,
//! arbitrage, liquidation, passive and proactive, flash-loan-capable, and
//! occasionally buggy enough to lose money (§5.2) — and the public
//! gas-price market whose priority-gas-auction dynamics produce Figure 6's
//! April-2021 cliff when MEV competition moves into Flashbots.

pub mod gasmarket;
pub mod miners;
pub mod pga;
pub mod strategies;
pub mod traders;

pub use gasmarket::GasMarket;
pub use miners::{MinerAgent, MinerSet};
pub use pga::{run_auction, Bidder, PgaOutcome};
pub use strategies::arbitrage::{copy_with_higher_fee, size_arbitrage};
pub use strategies::arbitrage::{find_arbitrage, ArbPlan};
pub use strategies::liquidation::{
    plan_backrun_of_oracle_update, plan_liquidations, LiquidationPlan,
};
pub use strategies::sandwich::plan_sandwich_buggy;
pub use strategies::sandwich::{plan_sandwich, SandwichPlan};
pub use traders::TradeIntent;
pub use traders::TraderPool;
