//! Priority gas auctions (PGAs) — the pre-Flashbots competition mechanism
//! Daian et al. observed and the paper's §8.2 contrasts with sealed-bid
//! bundles: competing extractors publicly outbid each other in rounds
//! until the expected profit no longer covers the bid.
//!
//! The auction is modelled explicitly: bidders with (possibly different)
//! valuations of the same opportunity alternate raises by a minimum
//! escalation factor until all but one drop out. The winner's final bid —
//! burned as gas fees — is what the sealed-bid comparison in the paper's
//! Figure 8 ultimately hinges on.

use mev_types::{bump_pct, Gas, Wei};
use rand::rngs::StdRng;
use rand::Rng;

/// One PGA participant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bidder {
    /// Expected gross profit of the opportunity for this bidder, wei.
    pub valuation: Wei,
    /// Fraction of the valuation the bidder is willing to burn (risk
    /// appetite); rational bidders stay below 1.0.
    pub max_burn_share: f64,
}

/// The auction outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgaOutcome {
    /// Index of the winning bidder.
    pub winner: usize,
    /// The winner's final total fee commitment, wei.
    pub winning_fee: Wei,
    /// Gas price per unit implied by the winning fee.
    pub winning_gas_price: Wei,
    /// Bidding rounds until the field cleared.
    pub rounds: u32,
}

/// Minimum raise per round (observed PGAs escalate ~12–21 % per raise;
/// we use the replace-by-fee floor of 10 % plus a margin).
const MIN_RAISE_PCT: u128 = 15;

/// Run a PGA among `bidders` for an opportunity executed with `gas`.
/// `floor` is the prevailing market gas price (the opening bid).
///
/// Returns `None` when nobody can beat the floor.
pub fn run_auction(
    bidders: &[Bidder],
    gas: Gas,
    floor: Wei,
    rng: &mut StdRng,
) -> Option<PgaOutcome> {
    if bidders.is_empty() {
        return None;
    }
    // Per-bidder cap on total fee: burn share × valuation.
    let caps: Vec<u128> = bidders
        .iter()
        .map(|b| (b.valuation.0 as f64 * b.max_burn_share) as u128)
        .collect();
    let opening = gas.cost(floor).0;
    let mut current_fee = opening;
    let mut leader: Option<usize> = None;
    let mut active: Vec<usize> = (0..bidders.len()).filter(|&i| caps[i] > opening).collect();
    if active.is_empty() {
        return None;
    }
    let mut rounds = 0u32;
    // Rotate raises among active bidders until one remains standing.
    while active.len() > 1 || leader.is_none() {
        rounds += 1;
        // The next raiser is whoever isn't leading, with a dash of
        // randomness in raise sizing (observed PGAs raise irregularly).
        let raiser = *active
            .iter()
            .find(|&&i| leader != Some(i))
            .expect("at least one non-leader while len > 1 or no leader");
        let raise_pct = MIN_RAISE_PCT + rng.gen_range(0..10);
        let next_fee = bump_pct(current_fee, raise_pct);
        if next_fee > caps[raiser] {
            // Raiser folds.
            active.retain(|&i| i != raiser);
            if active.is_empty() {
                break;
            }
            continue;
        }
        current_fee = next_fee;
        leader = Some(raiser);
        // Everyone whose cap is now exceeded folds.
        active.retain(|&i| caps[i] >= current_fee || leader == Some(i));
        if rounds > 10_000 {
            break; // defensive: caps guarantee termination well before this
        }
    }
    let winner = leader?;
    Some(PgaOutcome {
        winner,
        winning_fee: Wei(current_fee),
        winning_gas_price: Wei(current_fee / gas.0.max(1) as u128),
        rounds,
    })
}

/// The expected burn share for a symmetric two-bidder PGA: with equal
/// valuations and caps, escalation stops when the next raise would exceed
/// the cap, so the winner burns ≈ the cap (all-pay-like dissipation at
/// the margin). Used to calibrate the simulation's aggregate burn model.
pub fn expected_burn_share(bidders: usize, max_burn_share: f64) -> f64 {
    if bidders <= 1 {
        // Uncontested: the extractor pays only the floor.
        0.02
    } else {
        // Contested: the field bids away most of the allowed burn.
        max_burn_share * 0.9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mev_types::{eth, gwei};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn raise_formula_matches_naive_at_auction_scale() {
        // The saturating bump must be bit-identical to the historical
        // `fee + fee * pct / 100 + 1` raise at realistic fee magnitudes.
        let floor = Gas(150_000).cost(gwei(30)).0;
        for pct in MIN_RAISE_PCT..MIN_RAISE_PCT + 10 {
            assert_eq!(bump_pct(floor, pct), floor + floor * pct / 100 + 1);
        }
    }

    #[test]
    fn escalation_terminates_at_extreme_caps_without_overflow() {
        // Boundary: caps near u128::MAX. The naive raise would overflow
        // mid-escalation; the saturating raise pins at the cap and the
        // auction still settles on a winner.
        let b = [
            Bidder {
                valuation: Wei(u128::MAX),
                max_burn_share: 1.0,
            },
            Bidder {
                valuation: Wei(u128::MAX),
                max_burn_share: 1.0,
            },
        ];
        let out = run_auction(&b, Gas(150_000), gwei(30), &mut rng()).unwrap();
        assert!(out.winning_fee.0 > 0);
    }

    #[test]
    fn single_bidder_pays_just_over_floor() {
        let b = [Bidder {
            valuation: eth(1),
            max_burn_share: 0.3,
        }];
        let out = run_auction(&b, Gas(150_000), gwei(30), &mut rng()).unwrap();
        assert_eq!(out.winner, 0);
        // One uncontested raise over the floor.
        let floor_fee = Gas(150_000).cost(gwei(30));
        assert!(out.winning_fee > floor_fee);
        assert!(out.winning_fee < floor_fee * 2);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn symmetric_bidders_escalate_to_their_caps() {
        let b = [
            Bidder {
                valuation: eth(1),
                max_burn_share: 0.3,
            },
            Bidder {
                valuation: eth(1),
                max_burn_share: 0.3,
            },
        ];
        let out = run_auction(&b, Gas(150_000), gwei(30), &mut rng()).unwrap();
        // The winning fee approaches the common cap (0.3 ETH).
        let cap = (eth(1).0 as f64 * 0.3) as u128;
        assert!(
            out.winning_fee.0 > cap / 2,
            "fee {} vs cap {}",
            out.winning_fee.0,
            cap
        );
        assert!(out.winning_fee.0 <= cap);
        assert!(
            out.rounds > 5,
            "real escalation happened: {} rounds",
            out.rounds
        );
    }

    #[test]
    fn richer_valuation_wins() {
        let b = [
            Bidder {
                valuation: eth(1),
                max_burn_share: 0.3,
            },
            Bidder {
                valuation: eth(10),
                max_burn_share: 0.3,
            },
        ];
        let out = run_auction(&b, Gas(150_000), gwei(30), &mut rng()).unwrap();
        assert_eq!(out.winner, 1);
        // The loser folds when its next raise would exceed its cap, so the
        // winner's standing bid sits within one raise of the loser's cap —
        // far below the winner's own.
        let loser_cap = (eth(1).0 as f64 * 0.3) as u128;
        let winner_cap = (eth(10).0 as f64 * 0.3) as u128;
        assert!(
            out.winning_fee.0 >= loser_cap * 7 / 10,
            "fee {}",
            out.winning_fee.0
        );
        assert!(out.winning_fee.0 < winner_cap / 2);
    }

    #[test]
    fn nobody_beats_an_absurd_floor() {
        let b = [Bidder {
            valuation: Wei(1_000),
            max_burn_share: 0.5,
        }];
        assert!(run_auction(&b, Gas(150_000), gwei(1_000), &mut rng()).is_none());
        assert!(run_auction(&[], Gas(150_000), gwei(1), &mut rng()).is_none());
    }

    #[test]
    fn gas_price_consistent_with_fee() {
        let b = [
            Bidder {
                valuation: eth(2),
                max_burn_share: 0.25,
            },
            Bidder {
                valuation: eth(2),
                max_burn_share: 0.25,
            },
        ];
        let out = run_auction(&b, Gas(300_000), gwei(20), &mut rng()).unwrap();
        let reconstructed = out.winning_gas_price.0 * 300_000;
        assert!(
            out.winning_fee.0.abs_diff(reconstructed) < 300_000,
            "rounding only"
        );
    }

    #[test]
    fn expected_burn_share_shape() {
        assert!(expected_burn_share(1, 0.3) < 0.05);
        assert!((expected_burn_share(3, 0.3) - 0.27).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let b = [
            Bidder {
                valuation: eth(1),
                max_burn_share: 0.3,
            },
            Bidder {
                valuation: eth(1),
                max_burn_share: 0.35,
            },
        ];
        let a1 = run_auction(&b, Gas(150_000), gwei(30), &mut StdRng::seed_from_u64(3));
        let a2 = run_auction(&b, Gas(150_000), gwei(30), &mut StdRng::seed_from_u64(3));
        assert_eq!(a1, a2);
    }
}
