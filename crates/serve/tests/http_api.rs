//! End-to-end API test: a real server on an ephemeral port over a real
//! archive, driven through real sockets. Every endpoint is exercised,
//! and every 200 body is asserted **bit-identical** to the same
//! encoder run on a direct `ArchiveQuery` call — the server adds
//! transport, never interpretation.

use mev_chain::{Cursor, LogFilter};
use mev_core::{Detection, MevKind};
use mev_serve::{ApiState, Client, ServeConfig, Server};
use mev_store::testutil::{scratch_dir, test_chain};
use mev_store::{GroupBy, StoreReader, StoreWriter};
use mev_types::Address;
use std::io::{Read, Write};
use std::sync::Arc;

const GENESIS: u64 = 10_000_000;

fn detection(kind: MevKind, block: u64, extractor: u64) -> Detection {
    Detection {
        kind,
        block,
        extractor: Address::from_index(extractor),
        tx_hashes: vec![],
        victim: None,
        gross_wei: 2_000,
        costs_wei: 500,
        profit_wei: 1_500,
        miner_revenue_wei: 500,
        via_flashbots: kind == MevKind::Sandwich,
        via_flash_loan: false,
        miner: Address::from_index(9),
    }
}

/// Archive + server fixture: 10 blocks × 3 txs in 4-block segments,
/// two hand-made detections, 4 workers.
fn served(label: &str) -> (std::path::PathBuf, Arc<StoreReader>, Server) {
    let dir = scratch_dir(label);
    let chain = test_chain(10, 3);
    let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
    w.ingest(&chain).unwrap();
    let reader = Arc::new(StoreReader::open(&dir).unwrap().with_segment_cache(4));
    let detections = vec![
        detection(MevKind::Sandwich, GENESIS + 2, 4),
        detection(MevKind::Arbitrage, GENESIS + 5, 5),
    ];
    let state = ApiState::new(Arc::clone(&reader), detections);
    let config = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let server = Server::start(config, state).unwrap();
    (dir, reader, server)
}

#[test]
fn logs_endpoint_is_bit_identical_to_direct_queries() {
    let (dir, reader, server) = served("serve-logs");
    let mut client = Client::connect(server.addr()).unwrap();

    // Unfiltered: everything, one page, scan plan.
    let direct = reader.get_logs_with_stats(&LogFilter::new()).unwrap();
    let expected = mev_serve::api_types::encode_logs(&direct.0, &direct.1).unwrap();
    let got = client.get("/logs").unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(
        got.body, expected,
        "served /logs diverged from direct query"
    );

    // Selective and warm: postings-served, zero data frames, truthfully.
    let filter = LogFilter::new()
        .address(Address::from_index(2))
        .kind(mev_chain::EventKind::Swap);
    let direct = reader.get_logs_with_stats(&filter).unwrap();
    let expected = mev_serve::api_types::encode_logs(&direct.0, &direct.1).unwrap();
    let got = client.get("/logs?address=2&kind=swap").unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, expected);
    assert!(got.body.contains(r#""plan":"postings""#), "{}", got.body);
    assert!(got.body.contains(r#""data_frames_read":0"#), "{}", got.body);

    // Client errors are 400 with the offending parameter named.
    let bad = client.get("/logs?bogus=1").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("bogus"));
    let bad = client.get("/logs?kind=swaps").unwrap();
    assert_eq!(bad.status, 400);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cursor_continuation_pages_through_the_archive() {
    let (dir, reader, server) = served("serve-cursor");
    let mut client = Client::connect(server.addr()).unwrap();

    // Page 1: limit 4 over 30 transfers must carry a continuation.
    let filter = LogFilter::new().address(Address::from_index(1)).limit(4);
    let (direct_page, direct_stats) = reader.get_logs_with_stats(&filter).unwrap();
    let expected = mev_serve::api_types::encode_logs(&direct_page, &direct_stats).unwrap();
    let got = client.get("/logs?address=1&limit=4").unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, expected);

    // The served token continues exactly where the direct cursor does.
    let token = direct_page.next.expect("page must fill").to_token();
    let v: serde_json::Value = serde_json::from_str(&got.body).unwrap();
    let served_token = v.get("next_cursor").and_then(|c| c.as_str()).unwrap();
    assert_eq!(served_token, token);

    // Page 2 via the token: bit-identical to the direct continuation.
    let resumed = filter.clone().after(Cursor::parse_token(&token).unwrap());
    let (page2, stats2) = reader.get_logs_with_stats(&resumed).unwrap();
    let expected2 = mev_serve::api_types::encode_logs(&page2, &stats2).unwrap();
    let got2 = client
        .get(&format!("/logs?address=1&limit=4&cursor={token}"))
        .unwrap();
    assert_eq!(got2.status, 200);
    assert_eq!(got2.body, expected2);
    // And the two pages really are disjoint, consecutive work.
    assert_ne!(got.body, got2.body);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aggregates_blocks_detections_and_stats_endpoints() {
    let (dir, reader, server) = served("serve-endpoints");
    let mut client = Client::connect(server.addr()).unwrap();

    // Warm whole-window aggregate: rollup-served, zero data frames.
    for (group, param) in [
        (GroupBy::Kind, "kind"),
        (GroupBy::Address, "address"),
        (GroupBy::Epoch, "epoch"),
    ] {
        let (rows, stats) = reader.aggregate(&LogFilter::new(), group).unwrap();
        let expected = mev_serve::api_types::encode_aggregates(group, &rows, &stats).unwrap();
        let got = client.get(&format!("/aggregates?group={param}")).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.body, expected, "group={param}");
    }
    let warm = client.get("/aggregates?group=kind").unwrap();
    assert!(warm.body.contains(r#""plan":"rollup""#), "{}", warm.body);
    assert!(warm.body.contains(r#""data_frames_read":0"#));
    assert_eq!(client.get("/aggregates").unwrap().status, 400);
    assert_eq!(client.get("/aggregates?group=week").unwrap().status, 400);

    // Blocks: bit-identical, 404 past the head, 400 on garbage.
    let n = GENESIS + 3;
    let block = reader.get_block(n).unwrap().unwrap();
    let receipts = reader.get_receipts(n).unwrap().unwrap();
    let expected = mev_serve::api_types::encode_block(&block, &receipts).unwrap();
    let got = client.get(&format!("/blocks/{n}")).unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, expected);
    assert_eq!(client.get("/blocks/10000099").unwrap().status, 404);
    assert_eq!(client.get("/blocks/abc").unwrap().status, 400);

    // Detections: filterable by kind, extractor address, and window.
    let all = client.get("/detections").unwrap();
    assert_eq!(all.status, 200);
    assert!(all.body.contains(r#""count":2"#), "{}", all.body);
    let sandwiches = client.get("/detections?kind=sandwich").unwrap();
    assert!(sandwiches.body.contains(r#""count":1"#));
    assert!(sandwiches.body.contains(r#""kind":"Sandwich""#));
    let by_addr = client.get("/detections?address=5").unwrap();
    assert!(by_addr.body.contains(r#""count":1"#));
    assert!(by_addr.body.contains(r#""kind":"Arbitrage""#));
    let windowed = client
        .get(&format!("/detections?from={}&to={}", GENESIS, GENESIS + 3))
        .unwrap();
    assert!(windowed.body.contains(r#""count":1"#));
    assert_eq!(client.get("/detections?kind=theft").unwrap().status, 400);

    // Stats: the RunReport, carrying this server's endpoint counters.
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("serve.logs.requests"), "{}", stats.body);
    assert!(stats.body.contains("serve.aggregates.requests"));
    assert!(stats.body.contains("serve.blocks.requests"));
    assert!(stats.body.contains("serve.detections.requests"));

    // Unknown endpoint.
    assert_eq!(client.get("/nope").unwrap().status, 404);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keep_alive_concurrency_and_protocol_errors() {
    let (dir, reader, server) = served("serve-concurrent");
    let addr = server.addr();

    // One connection serves many requests (keep-alive), and several
    // concurrent clients get identical, correct answers.
    let filter = LogFilter::new().address(Address::from_index(2));
    let direct = reader.get_logs_with_stats(&filter).unwrap();
    let expected = mev_serve::api_types::encode_logs(&direct.0, &direct.1).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    let got = client.get("/logs?address=2").unwrap();
                    assert_eq!(got.status, 200);
                    assert_eq!(got.body, expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // A non-GET method is answered 405 and the connection closed.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"POST /logs HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_handle_republish_updates_served_detections() {
    let dir = scratch_dir("serve-live-handle");
    let chain = test_chain(10, 3);
    let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
    w.ingest(&chain).unwrap();
    let reader = Arc::new(StoreReader::open(&dir).unwrap());

    // The live-follow wiring: the server shares a DetectionsHandle with
    // a publisher that keeps replacing the snapshot as the tip advances.
    let handle =
        mev_serve::DetectionsHandle::new(vec![detection(MevKind::Sandwich, GENESIS + 2, 4)]);
    let state = ApiState::with_handle(Arc::clone(&reader), handle.clone());
    let server = Server::start(ServeConfig::default(), state).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let got = client.get("/detections").unwrap();
    assert_eq!(got.status, 200);
    assert!(got.body.contains(r#""count":1"#), "{}", got.body);

    // An advance cycle publishes a strictly larger snapshot; the
    // already-running server must serve it on the next request.
    let grown = vec![
        detection(MevKind::Sandwich, GENESIS + 2, 4),
        detection(MevKind::Arbitrage, GENESIS + 5, 5),
        detection(MevKind::Liquidation, GENESIS + 7, 6),
    ];
    handle.replace(grown.clone());
    let refs: Vec<&Detection> = grown.iter().collect();
    let expected = mev_serve::api_types::encode_detections(&refs).unwrap();
    let got = client.get("/detections").unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, expected, "served set must track the handle");

    // Filters apply to the live snapshot too.
    let got = client.get("/detections?kind=liquidation").unwrap();
    assert_eq!(got.status, 200);
    assert!(got.body.contains(r#""count":1"#), "{}", got.body);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
