//! Hand-rolled minimal HTTP/1.1: exactly what a query API needs and
//! nothing more. Requests are `GET` with a path and query string (no
//! bodies); responses are JSON with `Content-Length` framing;
//! connections default to `keep-alive` per HTTP/1.1 and honor
//! `Connection: close`. Anything outside that envelope gets a clean
//! error status, never a panic — the parser faces untrusted bytes.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers). Generous for any
/// real filter query; a client streaming more than this is not speaking
/// our protocol.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method-checked, split into path and decoded query
/// pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Percent-decoded path, always starting with `/`.
    pub path: String,
    /// Decoded query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Whether the connection should survive this exchange.
    pub keep_alive: bool,
}

/// Why a connection stopped yielding requests.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end of stream between requests — not an error.
    Closed,
    /// Socket-level failure.
    Io(std::io::Error),
    /// The bytes were not a well-formed GET request. The server answers
    /// with the status and closes.
    Malformed { status: u16, detail: String },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed { status, detail } => {
                write!(f, "malformed request ({status}): {detail}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

fn malformed(status: u16, detail: impl Into<String>) -> HttpError {
    HttpError::Malformed {
        status,
        detail: detail.into(),
    }
}

/// Read one request head off the stream. `buf` is the caller's reusable
/// scratch (a worker reuses one buffer for its whole connection); bytes
/// past the head (pipelined requests) are left in `buf` for the next
/// call.
pub fn read_request(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<Request, HttpError> {
    let head_end = loop {
        if let Some(end) = find_head_end(buf) {
            break end;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(malformed(431, "request head too large"));
        }
        let mut chunk = [0u8; 4096];
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.iter().all(|b| b.is_ascii_whitespace()) {
                    Err(HttpError::Closed)
                } else {
                    Err(malformed(400, "connection closed mid-request"))
                }
            }
            Ok(n) => n,
            Err(e) => return Err(HttpError::Io(e)),
        };
        buf.extend_from_slice(&chunk[..n]);
    };
    let head: Vec<u8> = buf.drain(..head_end).collect();
    let head = String::from_utf8_lossy(&head).into_owned();
    parse_head(&head)
}

/// Index just past the `\r\n\r\n` (or lenient `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

fn parse_head(head: &str) -> Result<Request, HttpError> {
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return Err(malformed(400, "empty request line"));
    }
    if method != "GET" {
        return Err(malformed(405, format!("method {method} not allowed")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(505, format!("version {version} unsupported")));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
        if name.eq_ignore_ascii_case("content-length") && value.trim() != "0" {
            return Err(malformed(400, "GET requests must not carry a body"));
        }
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path =
        percent_decode(raw_path).ok_or_else(|| malformed(400, "bad percent-encoding in path"))?;
    if !path.starts_with('/') {
        return Err(malformed(400, "path must be absolute"));
    }
    let query = parse_query(raw_query)
        .ok_or_else(|| malformed(400, "bad percent-encoding in query string"))?;
    Ok(Request {
        path,
        query,
        keep_alive,
    })
}

/// Split a raw query string into decoded pairs. `a=1&b=2`; a key with no
/// `=` becomes `(key, "")`; empty components are skipped.
pub fn parse_query(raw: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    for component in raw.split('&') {
        if component.is_empty() {
            continue;
        }
        let (k, v) = match component.split_once('=') {
            Some((k, v)) => (k, v),
            None => (component, ""),
        };
        pairs.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(pairs)
}

/// Decode `%XX` escapes and form-encoded `+` spaces. `None` on a
/// truncated or non-hex escape.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = (*bytes.get(i + 1)? as char).to_digit(16)?;
                let lo = (*bytes.get(i + 2)? as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response ready to write: status plus a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: String,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response { status, body }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write a response; `keep_alive` selects the `Connection` header.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        status_reason(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("%2Fx%3d1").as_deref(), Some("/x=1"));
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%2"), None);
        assert_eq!(percent_decode("%ff"), None, "not UTF-8");
    }

    #[test]
    fn query_pairs_parse_in_order() {
        let pairs = parse_query("address=7&kind=swap&kind=transfer&flag&x=").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("address".to_string(), "7".to_string()),
                ("kind".to_string(), "swap".to_string()),
                ("kind".to_string(), "transfer".to_string()),
                ("flag".to_string(), String::new()),
                ("x".to_string(), String::new()),
            ]
        );
        assert_eq!(parse_query("").unwrap(), vec![]);
        assert!(parse_query("a=%q").is_none());
    }

    #[test]
    fn head_parsing() {
        let req = parse_head("GET /logs?limit=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.path, "/logs");
        assert_eq!(req.query, vec![("limit".to_string(), "5".to_string())]);
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let close = parse_head("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive);
        let old = parse_head("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        assert!(matches!(
            parse_head("POST /logs HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed { status: 405, .. })
        ));
        assert!(matches!(
            parse_head("GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed { status: 505, .. })
        ));
        assert!(matches!(
            parse_head("\r\n\r\n"),
            Err(HttpError::Malformed { status: 400, .. })
        ));
        assert!(matches!(
            parse_head("GET /x HTTP/1.1\r\nContent-Length: 3\r\n\r\n"),
            Err(HttpError::Malformed { status: 400, .. })
        ));
    }
}
