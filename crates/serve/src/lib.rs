//! # mev-serve
//!
//! A zero-dependency HTTP/JSON query API over the archive store — the
//! serving tier for the paper's result tables: `GET /logs` (the
//! `eth_getLogs` filter surface with cursor continuation),
//! `GET /detections` (the MEV dataset), `GET /blocks/{n}`,
//! `GET /aggregates` (planner-routed group-bys, rollup-served when
//! warm), and `GET /stats` (the mev-obs RunReport).
//!
//! No async runtime and no HTTP framework, matching the workspace's
//! no-external-engines idiom: a std [`TcpListener`], an accept loop
//! feeding a bounded connection queue, and a small worker pool. Each
//! worker owns a connection for its keep-alive lifetime and reuses one
//! decode buffer across requests.

pub mod api_types;
pub mod handlers;
pub mod http;
pub mod validation;

mod client;

pub use client::Client;
pub use handlers::{ApiState, DetectionsHandle};
pub use http::{Request, Response};

use http::HttpError;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server tuning. The defaults suit tests and small deployments; the
/// bench drives one worker per concurrent client.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Accepted connections queued ahead of the workers; past this the
    /// server answers 503 instead of stalling the accept loop.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_depth: 64,
        }
    }
}

/// How long a worker blocks on an idle keep-alive connection before
/// re-checking the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

struct QueueInner {
    conns: VecDeque<TcpStream>,
    /// False once the accept loop has exited; workers drain and stop.
    open: bool,
}

/// The bounded handoff between the accept loop and the workers.
struct Queue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Queue {
        Queue {
            inner: Mutex::new(QueueInner {
                conns: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        // A poisoned queue mutex means a worker panicked while holding
        // it; the queue state itself (a VecDeque and a bool) is still
        // coherent, so keep serving.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue if below `depth`; past it the connection comes back to
    /// the caller to shed.
    fn push(&self, conn: TcpStream, depth: usize) -> Result<(), TcpStream> {
        let mut inner = self.lock();
        if inner.conns.len() >= depth {
            return Err(conn);
        }
        inner.conns.push_back(conn);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a connection or close; `None` means shut down.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.lock();
        loop {
            if let Some(conn) = inner.conns.pop_front() {
                return Some(conn);
            }
            if !inner.open {
                return None;
            }
            inner = match self.ready.wait(inner) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
    }

    fn close(&self) {
        self.lock().open = false;
        self.ready.notify_all();
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop and joins every worker.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<Queue>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop and worker pool, and return
    /// immediately. The server runs until [`Server::shutdown`] or drop.
    pub fn start(config: ServeConfig, state: ApiState) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue::new());
        let depth = config.queue_depth.max(1);
        let accept = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                loop {
                    let conn = match listener.accept() {
                        Ok((conn, _)) => conn,
                        Err(_) => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            continue;
                        }
                    };
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    mev_obs::counter("serve.connections").inc();
                    if let Err(mut shed) = queue.push(conn, depth) {
                        // Shed load without stalling the accept loop:
                        // the conn is answered 503 inline and dropped.
                        // Best effort; the client may already be gone.
                        mev_obs::counter("serve.queue.shed").inc();
                        // lint:allow(error-swallow: best-effort 503 to a shed client that may already be gone; the accept loop must not stall on it)
                        let _ = http::write_response(
                            &mut shed,
                            &Response::json(503, api_types::encode_error("server overloaded")),
                            false,
                        );
                    }
                }
                queue.close();
            })
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let stop = Arc::clone(&stop);
                let queue = Arc::clone(&queue);
                let state = state.clone();
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        serve_connection(conn, &state, &stop);
                    }
                })
            })
            .collect();
        Ok(Server {
            addr,
            stop,
            queue,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the workers, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve one connection for its keep-alive lifetime. The read buffer is
/// reused across the connection's requests; the worker returns to the
/// queue when the peer closes, errors, sends `Connection: close`, or
/// the server shuts down.
fn serve_connection(mut conn: TcpStream, state: &ApiState, stop: &AtomicBool) {
    // Bounded reads so an idle connection cannot pin a worker across
    // shutdown.
    if conn.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match http::read_request(&mut conn, &mut buf) {
            Ok(request) => {
                let response = handlers::handle(state, &request);
                if http::write_response(&mut conn, &response, request.keep_alive).is_err() {
                    return;
                }
                if !request.keep_alive {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // Idle poll tick: loop back and re-check the stop flag
                // (any partial bytes stay in `buf` for the retry).
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed { status, detail }) => {
                mev_obs::counter("serve.http.malformed").inc();
                let body = api_types::encode_error(&detail);
                // lint:allow(error-swallow: the connection is being torn down for a malformed request; a failed error reply has no one left to tell)
                let _ = http::write_response(&mut conn, &Response::json(status, body), false);
                return;
            }
        }
    }
}
