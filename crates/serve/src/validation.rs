//! Query-parameter validation: decoded pairs in, typed query out, or a
//! client-facing message for the 400 body. The `LogFilter` mapping
//! itself lives with the filter ([`LogFilter::from_query_pairs`]); this
//! module layers the endpoint-specific parameters on top.

use mev_chain::{EventKind, LogFilter};
use mev_core::{Detection, MevKind};
use mev_store::GroupBy;
use mev_types::Address;

/// Borrow decoded pairs as `(&str, &str)` for the chain-side parser.
fn as_strs(pairs: &[(String, String)]) -> impl Iterator<Item = (&str, &str)> {
    pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
}

/// `GET /logs`: every parameter is a [`LogFilter`] parameter.
pub fn logs_filter(pairs: &[(String, String)]) -> Result<LogFilter, String> {
    LogFilter::from_query_pairs(as_strs(pairs)).map_err(|e| e.to_string())
}

/// `GET /aggregates`: a required `group` dimension plus any
/// [`LogFilter`] parameters.
pub fn aggregate_params(pairs: &[(String, String)]) -> Result<(GroupBy, LogFilter), String> {
    let mut group = None;
    let mut rest = Vec::new();
    for (k, v) in pairs {
        if k == "group" {
            let parsed = match v.as_str() {
                "kind" => GroupBy::Kind,
                "address" => GroupBy::Address,
                "epoch" => GroupBy::Epoch,
                other => {
                    return Err(format!(
                        "invalid value `{other}` for query parameter `group` \
                         (expected kind, address, or epoch)"
                    ))
                }
            };
            if group.replace(parsed).is_some() {
                return Err("query parameter `group` given more than once".to_string());
            }
        } else {
            rest.push((k.as_str(), v.as_str()));
        }
    }
    let Some(group) = group else {
        return Err("missing required query parameter `group`".to_string());
    };
    let filter = LogFilter::from_query_pairs(rest).map_err(|e| e.to_string())?;
    Ok((group, filter))
}

/// The `GET /detections` predicate: all set fields must match, like a
/// [`LogFilter`] over detections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectionQuery {
    pub from_block: Option<u64>,
    pub to_block: Option<u64>,
    pub extractor: Option<Address>,
    pub kind: Option<MevKind>,
}

impl DetectionQuery {
    pub fn matches(&self, d: &Detection) -> bool {
        self.from_block.is_none_or(|b| d.block >= b)
            && self.to_block.is_none_or(|b| d.block <= b)
            && self.extractor.is_none_or(|a| d.extractor == a)
            && self.kind.is_none_or(|k| d.kind == k)
    }
}

/// `GET /detections`: `from` / `to` height window, `address` (the
/// extractor, hex or decimal sim index), `kind` (sandwich / arbitrage /
/// liquidation).
pub fn detections_query(pairs: &[(String, String)]) -> Result<DetectionQuery, String> {
    let mut q = DetectionQuery::default();
    for (k, v) in pairs {
        let bad = || format!("invalid value `{v}` for query parameter `{k}`");
        match k.as_str() {
            "from" => q.from_block = Some(v.parse().map_err(|_| bad())?),
            "to" => q.to_block = Some(v.parse().map_err(|_| bad())?),
            "address" => {
                let addr = if v.starts_with("0x") {
                    v.parse::<Address>().map_err(|_| bad())?
                } else {
                    Address::from_index(v.parse().map_err(|_| bad())?)
                };
                q.extractor = Some(addr);
            }
            "kind" => {
                let kind = [MevKind::Sandwich, MevKind::Arbitrage, MevKind::Liquidation]
                    .into_iter()
                    .find(|m| m.label() == v.to_ascii_lowercase())
                    .ok_or_else(bad)?;
                q.kind = Some(kind);
            }
            other => return Err(format!("unknown query parameter `{other}`")),
        }
    }
    Ok(q)
}

/// `GET /blocks/{n}`: the height from the path tail.
pub fn block_number(path: &str) -> Result<u64, String> {
    let tail = path.strip_prefix("/blocks/").unwrap_or("");
    tail.parse()
        .map_err(|_| format!("invalid block height `{tail}` in path"))
}

/// A `kind=` value usable on `/logs` (documented helper for clients).
pub fn known_event_kinds() -> impl Iterator<Item = &'static str> {
    EventKind::ALL.into_iter().map(EventKind::name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(raw: &[(&str, &str)]) -> Vec<(String, String)> {
        raw.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn logs_filter_maps_and_rejects() {
        let f = logs_filter(&pairs(&[
            ("address", "2"),
            ("kind", "swap"),
            ("limit", "3"),
        ]))
        .unwrap();
        assert_eq!(f.addresses, vec![Address::from_index(2)]);
        assert_eq!(f.kinds, vec![EventKind::Swap]);
        assert_eq!(f.limit, Some(3));
        let err = logs_filter(&pairs(&[("bogus", "1")])).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn aggregate_params_require_one_group() {
        let (g, f) = aggregate_params(&pairs(&[("group", "kind"), ("from", "5")])).unwrap();
        assert_eq!(g, GroupBy::Kind);
        assert_eq!(f.from_block, Some(5));
        assert!(aggregate_params(&pairs(&[])).unwrap_err().contains("group"));
        assert!(aggregate_params(&pairs(&[("group", "week")]))
            .unwrap_err()
            .contains("week"));
        assert!(
            aggregate_params(&pairs(&[("group", "kind"), ("group", "epoch")]))
                .unwrap_err()
                .contains("more than once")
        );
    }

    #[test]
    fn detections_query_matches_conjunctively() {
        let q = detections_query(&pairs(&[
            ("kind", "Sandwich"),
            ("address", "4"),
            ("from", "100"),
            ("to", "200"),
        ]))
        .unwrap();
        assert_eq!(q.kind, Some(MevKind::Sandwich));
        assert_eq!(q.extractor, Some(Address::from_index(4)));
        let mut d = Detection {
            kind: MevKind::Sandwich,
            block: 150,
            extractor: Address::from_index(4),
            tx_hashes: vec![],
            victim: None,
            gross_wei: 0,
            costs_wei: 0,
            profit_wei: 0,
            miner_revenue_wei: 0,
            via_flashbots: false,
            via_flash_loan: false,
            miner: Address::ZERO,
        };
        assert!(q.matches(&d));
        d.block = 250;
        assert!(!q.matches(&d));
        d.block = 150;
        d.kind = MevKind::Arbitrage;
        assert!(!q.matches(&d));
        assert!(detections_query(&pairs(&[("kind", "theft")])).is_err());
        assert!(detections_query(&pairs(&[("victim", "1")])).is_err());
    }

    #[test]
    fn block_path_parsing() {
        assert_eq!(block_number("/blocks/10000003"), Ok(10_000_003));
        assert!(block_number("/blocks/").is_err());
        assert!(block_number("/blocks/abc").is_err());
        assert!(block_number("/blocks/-1").is_err());
    }

    #[test]
    fn event_kind_names_are_exposed() {
        let names: Vec<_> = known_event_kinds().collect();
        assert!(names.contains(&"swap") && names.len() == 9);
    }
}
