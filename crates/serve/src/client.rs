//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! just enough for the integration tests and `serve_bench` to drive the
//! server without an external HTTP library.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One keep-alive connection to the server. Requests are issued
/// serially; concurrency comes from one [`Client`] per thread.
pub struct Client {
    stream: TcpStream,
    /// Bytes read past the previous response (headers of the next one).
    carry: Vec<u8>,
}

/// A decoded response: status code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    pub status: u16,
    pub body: String,
}

fn protocol_err(detail: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail.to_string())
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            carry: Vec::new(),
        })
    }

    /// Issue `GET {target}` (path plus query string) and read the full
    /// response off the shared connection.
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        let request =
            format!("GET {target} HTTP/1.1\r\nHost: mev-serve\r\nConnection: keep-alive\r\n\r\n");
        self.stream.write_all(request.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let mut buf = std::mem::take(&mut self.carry);
        // Head first.
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            if !self.fill(&mut buf)? {
                return Err(protocol_err("connection closed before response head"));
            }
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let status: u16 = head
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| protocol_err("bad status line"))?;
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .ok_or_else(|| protocol_err("missing content-length"))?;
        // Then exactly content-length body bytes.
        while buf.len() < head_end + content_length {
            if !self.fill(&mut buf)? {
                return Err(protocol_err("connection closed mid-body"));
            }
        }
        let body = String::from_utf8_lossy(&buf[head_end..head_end + content_length]).into_owned();
        // Anything further belongs to the next response.
        self.carry = buf.split_off(head_end + content_length);
        Ok(ClientResponse { status, body })
    }

    /// Read one chunk; `false` on EOF.
    fn fill(&mut self, buf: &mut Vec<u8>) -> std::io::Result<bool> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }
}
