//! Response wire shapes and their encoders. Every endpoint's JSON is
//! produced here — the integration tests call the same encoders on
//! direct [`ArchiveQuery`](mev_chain::ArchiveQuery) results to assert
//! served responses are bit-identical to first-party queries.

use mev_chain::{Cursor, EventKind, LogEntry, LogPage, QueryStats};
use mev_core::Detection;
use mev_store::{AggregateKey, AggregateRow, GroupBy};
use mev_types::{Address, Block, LogEvent, Receipt, TxHash};

/// What a query touched, flattened for clients. `plan` is the strategy
/// that *executed*; `planned` is what the planner chose — they differ
/// exactly when the query degraded (e.g. postings → scan on a damaged
/// sidecar).
#[derive(Debug, serde::Serialize)]
pub struct StatsWire {
    pub plan: &'static str,
    pub planned: &'static str,
    pub pages: u64,
    pub blocks_scanned: u64,
    pub segments_total: u64,
    pub pruned_by_zone: u64,
    pub pruned_by_bloom: u64,
    pub segments_read: u64,
    pub data_frames_read: u64,
    pub postings_pages_read: u64,
    pub rollup_reads: u64,
    pub bloom_false_positives: u64,
}

impl From<&QueryStats> for StatsWire {
    fn from(s: &QueryStats) -> StatsWire {
        StatsWire {
            plan: s.plan.as_str(),
            planned: s.planned.as_str(),
            pages: s.pages,
            blocks_scanned: s.blocks_scanned,
            segments_total: s.segments_total,
            pruned_by_zone: s.pruned_by_zone,
            pruned_by_bloom: s.pruned_by_bloom,
            segments_read: s.segments_read,
            data_frames_read: s.data_frames_read,
            postings_pages_read: s.postings_pages_read,
            rollup_reads: s.rollup_reads,
            bloom_false_positives: s.bloom_false_positives,
        }
    }
}

/// One matched log with its chain coordinates.
#[derive(Debug, serde::Serialize)]
pub struct LogEntryWire<'a> {
    pub block: u64,
    pub tx_index: u32,
    pub tx_hash: &'a TxHash,
    pub address: &'a Address,
    /// The event family, as its lower-case [`EventKind::name`].
    pub kind: &'static str,
    pub event: &'a LogEvent,
}

impl<'a> From<&'a LogEntry> for LogEntryWire<'a> {
    fn from(e: &'a LogEntry) -> LogEntryWire<'a> {
        LogEntryWire {
            block: e.block,
            tx_index: e.tx_index,
            tx_hash: &e.tx_hash,
            address: &e.log.address,
            kind: EventKind::of(&e.log.event).name(),
            event: &e.log.event,
        }
    }
}

/// `GET /logs` body.
#[derive(Debug, serde::Serialize)]
pub struct LogsResponse<'a> {
    pub entries: Vec<LogEntryWire<'a>>,
    /// Continuation token ([`Cursor::to_token`]) when the page filled.
    /// Pass back as `cursor=` to fetch the next page.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub next_cursor: Option<String>,
    pub stats: StatsWire,
}

/// Encode a `(page, stats)` answer exactly as `GET /logs` serves it.
pub fn encode_logs(page: &LogPage, stats: &QueryStats) -> Result<String, serde_json::Error> {
    serde_json::to_string(&LogsResponse {
        entries: page.entries.iter().map(LogEntryWire::from).collect(),
        next_cursor: page.next.as_ref().map(Cursor::to_token),
        stats: stats.into(),
    })
}

/// `GET /detections` body.
#[derive(Debug, serde::Serialize)]
pub struct DetectionsResponse<'a> {
    pub count: usize,
    pub detections: Vec<&'a Detection>,
}

/// Encode a filtered detection set exactly as `GET /detections` serves
/// it.
pub fn encode_detections(detections: &[&Detection]) -> Result<String, serde_json::Error> {
    serde_json::to_string(&DetectionsResponse {
        count: detections.len(),
        detections: detections.to_vec(),
    })
}

/// `GET /blocks/{n}` body.
#[derive(Debug, serde::Serialize)]
pub struct BlockResponse<'a> {
    pub block: &'a Block,
    pub receipts: &'a [Receipt],
}

/// Encode a block + receipts exactly as `GET /blocks/{n}` serves it.
pub fn encode_block(block: &Block, receipts: &[Receipt]) -> Result<String, serde_json::Error> {
    serde_json::to_string(&BlockResponse { block, receipts })
}

/// One aggregate bucket, key rendered to a string: the event-family
/// name, the `0x`-hex address, or the epoch month (`YYYY-MM`).
#[derive(Debug, serde::Serialize)]
pub struct AggregateRowWire {
    pub key: String,
    pub count: u64,
    pub wei_sum: u128,
}

/// `GET /aggregates` body.
#[derive(Debug, serde::Serialize)]
pub struct AggregatesResponse {
    /// The grouping dimension: `kind`, `address`, or `epoch`.
    pub group: &'static str,
    pub rows: Vec<AggregateRowWire>,
    pub stats: StatsWire,
}

/// The query-parameter spelling of a [`GroupBy`] dimension.
pub fn group_name(group: GroupBy) -> &'static str {
    match group {
        GroupBy::Kind => "kind",
        GroupBy::Address => "address",
        GroupBy::Epoch => "epoch",
    }
}

/// Encode an aggregate answer exactly as `GET /aggregates` serves it.
pub fn encode_aggregates(
    group: GroupBy,
    rows: &[AggregateRow],
    stats: &QueryStats,
) -> Result<String, serde_json::Error> {
    serde_json::to_string(&AggregatesResponse {
        group: group_name(group),
        rows: rows
            .iter()
            .map(|r| AggregateRowWire {
                key: match r.key {
                    AggregateKey::Kind(k) => k.name().to_string(),
                    AggregateKey::Addr(a) => a.to_string(),
                    AggregateKey::Epoch(m) => m.to_string(),
                },
                count: r.stat.count,
                wei_sum: r.stat.wei_sum,
            })
            .collect(),
        stats: stats.into(),
    })
}

/// Error body every non-200 answer carries.
#[derive(Debug, serde::Serialize)]
pub struct ErrorBody<'a> {
    pub error: &'a str,
}

/// Encode an error body; falls back to a hand-built literal if the
/// message itself will not serialize (it always will — this keeps the
/// encoder total without a panic path).
pub fn encode_error(message: &str) -> String {
    serde_json::to_string(&ErrorBody { error: message })
        .unwrap_or_else(|_| r#"{"error":"unserializable error"}"#.to_string())
}
