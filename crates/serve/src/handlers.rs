//! Request routing and per-endpoint handlers. Every endpoint is a pure
//! function of the shared [`ApiState`] and the parsed request; workers
//! call [`handle`] and write whatever comes back. Each endpoint bumps
//! `serve.<endpoint>.requests` / `serve.<endpoint>.errors` counters and
//! records wall-clock latency in the `serve.<endpoint>.ns` histogram.

use crate::api_types;
use crate::http::{Request, Response};
use crate::validation;
use mev_core::Detection;
use mev_store::StoreReader;
use std::sync::{Arc, RwLock};

/// A shared, live-updatable view of the detection set served by
/// `/detections`. A batch deployment sets it once at startup; a live
/// follower clones the handle and replaces the snapshot after each
/// advance cycle, so the server tracks the chain tip without restarting.
#[derive(Clone, Default)]
pub struct DetectionsHandle {
    inner: Arc<RwLock<Arc<Vec<Detection>>>>,
}

impl DetectionsHandle {
    pub fn new(detections: Vec<Detection>) -> DetectionsHandle {
        DetectionsHandle {
            inner: Arc::new(RwLock::new(Arc::new(detections))),
        }
    }

    /// The current snapshot (a cheap `Arc` clone; readers never block
    /// each other beyond the lock acquisition).
    pub fn snapshot(&self) -> Arc<Vec<Detection>> {
        // A poisoned lock only means a publisher panicked mid-`replace`;
        // the stored snapshot is always a complete, previously published
        // vector, so recover it rather than propagating the panic.
        match self.inner.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Publish a new snapshot, replacing the previous one atomically
    /// from the readers' point of view.
    pub fn replace(&self, detections: Vec<Detection>) {
        let fresh = Arc::new(detections);
        match self.inner.write() {
            Ok(mut guard) => *guard = fresh,
            Err(poisoned) => *poisoned.into_inner() = fresh,
        }
    }

    /// Number of detections in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything the handlers read: the archive reader (internally cached
/// and thread-safe) and the detection set served by `/detections`.
#[derive(Clone)]
pub struct ApiState {
    pub reader: Arc<StoreReader>,
    pub detections: DetectionsHandle,
}

impl ApiState {
    pub fn new(reader: Arc<StoreReader>, detections: Vec<Detection>) -> ApiState {
        ApiState {
            reader,
            detections: DetectionsHandle::new(detections),
        }
    }

    /// Build around an existing (possibly already shared) handle — the
    /// live-follow wiring, where a follower keeps publishing into the
    /// handle while the server serves from it.
    pub fn with_handle(reader: Arc<StoreReader>, detections: DetectionsHandle) -> ApiState {
        ApiState { reader, detections }
    }
}

/// Route a request to its endpoint. Unknown paths are 404.
pub fn handle(state: &ApiState, request: &Request) -> Response {
    let endpoint = match request.path.as_str() {
        "/logs" => "logs",
        "/detections" => "detections",
        "/aggregates" => "aggregates",
        "/stats" => "stats",
        p if p.starts_with("/blocks/") => "blocks",
        _ => {
            return Response::json(
                404,
                api_types::encode_error(&format!("no such endpoint: {}", request.path)),
            )
        }
    };
    mev_obs::counter(&format!("serve.{endpoint}.requests")).inc();
    let _t = mev_obs::span(&format!("serve.{endpoint}.ns"));
    let result = match endpoint {
        "logs" => logs(state, request),
        "detections" => detections(state, request),
        "aggregates" => aggregates(state, request),
        "blocks" => blocks(state, request),
        _ => stats(),
    };
    match result {
        Ok(response) => response,
        Err((status, message)) => {
            mev_obs::counter(&format!("serve.{endpoint}.errors")).inc();
            Response::json(status, api_types::encode_error(&message))
        }
    }
}

/// Client errors are 400 with the validation message; store failures
/// (I/O, corruption) are 500 — the query layer has already degraded
/// around anything survivable.
type HandlerResult = Result<Response, (u16, String)>;

fn internal(e: impl std::fmt::Display) -> (u16, String) {
    (500, e.to_string())
}

fn logs(state: &ApiState, request: &Request) -> HandlerResult {
    let filter = validation::logs_filter(&request.query).map_err(|e| (400, e))?;
    let (page, stats) = state
        .reader
        .get_logs_with_stats(&filter)
        .map_err(internal)?;
    let body = api_types::encode_logs(&page, &stats).map_err(internal)?;
    Ok(Response::json(200, body))
}

fn detections(state: &ApiState, request: &Request) -> HandlerResult {
    let query = validation::detections_query(&request.query).map_err(|e| (400, e))?;
    let snapshot = state.detections.snapshot();
    let matched: Vec<&Detection> = snapshot.iter().filter(|d| query.matches(d)).collect();
    let body = api_types::encode_detections(&matched).map_err(internal)?;
    Ok(Response::json(200, body))
}

fn aggregates(state: &ApiState, request: &Request) -> HandlerResult {
    let (group, filter) = validation::aggregate_params(&request.query).map_err(|e| (400, e))?;
    let (rows, stats) = state.reader.aggregate(&filter, group).map_err(internal)?;
    let body = api_types::encode_aggregates(group, &rows, &stats).map_err(internal)?;
    Ok(Response::json(200, body))
}

fn blocks(state: &ApiState, request: &Request) -> HandlerResult {
    let number = validation::block_number(&request.path).map_err(|e| (400, e))?;
    let block = state.reader.get_block(number).map_err(internal)?;
    let receipts = state.reader.get_receipts(number).map_err(internal)?;
    match (block, receipts) {
        (Some(block), Some(receipts)) => {
            let body = api_types::encode_block(&block, &receipts).map_err(internal)?;
            Ok(Response::json(200, body))
        }
        _ => Err((404, format!("block {number} is not archived"))),
    }
}

fn stats() -> HandlerResult {
    Ok(Response::json(200, mev_obs::report().to_json()))
}
