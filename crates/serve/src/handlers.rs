//! Request routing and per-endpoint handlers. Every endpoint is a pure
//! function of the shared [`ApiState`] and the parsed request; workers
//! call [`handle`] and write whatever comes back. Each endpoint bumps
//! `serve.<endpoint>.requests` / `serve.<endpoint>.errors` counters and
//! records wall-clock latency in the `serve.<endpoint>.ns` histogram.

use crate::api_types;
use crate::http::{Request, Response};
use crate::validation;
use mev_core::Detection;
use mev_store::StoreReader;
use std::sync::Arc;

/// Everything the handlers read: the archive reader (internally cached
/// and thread-safe) and the detection set served by `/detections`.
#[derive(Clone)]
pub struct ApiState {
    pub reader: Arc<StoreReader>,
    pub detections: Arc<Vec<Detection>>,
}

impl ApiState {
    pub fn new(reader: Arc<StoreReader>, detections: Vec<Detection>) -> ApiState {
        ApiState {
            reader,
            detections: Arc::new(detections),
        }
    }
}

/// Route a request to its endpoint. Unknown paths are 404.
pub fn handle(state: &ApiState, request: &Request) -> Response {
    let endpoint = match request.path.as_str() {
        "/logs" => "logs",
        "/detections" => "detections",
        "/aggregates" => "aggregates",
        "/stats" => "stats",
        p if p.starts_with("/blocks/") => "blocks",
        _ => {
            return Response::json(
                404,
                api_types::encode_error(&format!("no such endpoint: {}", request.path)),
            )
        }
    };
    mev_obs::counter(&format!("serve.{endpoint}.requests")).inc();
    let _t = mev_obs::span(&format!("serve.{endpoint}.ns"));
    let result = match endpoint {
        "logs" => logs(state, request),
        "detections" => detections(state, request),
        "aggregates" => aggregates(state, request),
        "blocks" => blocks(state, request),
        _ => stats(),
    };
    match result {
        Ok(response) => response,
        Err((status, message)) => {
            mev_obs::counter(&format!("serve.{endpoint}.errors")).inc();
            Response::json(status, api_types::encode_error(&message))
        }
    }
}

/// Client errors are 400 with the validation message; store failures
/// (I/O, corruption) are 500 — the query layer has already degraded
/// around anything survivable.
type HandlerResult = Result<Response, (u16, String)>;

fn internal(e: impl std::fmt::Display) -> (u16, String) {
    (500, e.to_string())
}

fn logs(state: &ApiState, request: &Request) -> HandlerResult {
    let filter = validation::logs_filter(&request.query).map_err(|e| (400, e))?;
    let (page, stats) = state
        .reader
        .get_logs_with_stats(&filter)
        .map_err(internal)?;
    let body = api_types::encode_logs(&page, &stats).map_err(internal)?;
    Ok(Response::json(200, body))
}

fn detections(state: &ApiState, request: &Request) -> HandlerResult {
    let query = validation::detections_query(&request.query).map_err(|e| (400, e))?;
    let matched: Vec<&Detection> = state
        .detections
        .iter()
        .filter(|d| query.matches(d))
        .collect();
    let body = api_types::encode_detections(&matched).map_err(internal)?;
    Ok(Response::json(200, body))
}

fn aggregates(state: &ApiState, request: &Request) -> HandlerResult {
    let (group, filter) = validation::aggregate_params(&request.query).map_err(|e| (400, e))?;
    let (rows, stats) = state.reader.aggregate(&filter, group).map_err(internal)?;
    let body = api_types::encode_aggregates(group, &rows, &stats).map_err(internal)?;
    Ok(Response::json(200, body))
}

fn blocks(state: &ApiState, request: &Request) -> HandlerResult {
    let number = validation::block_number(&request.path).map_err(|e| (400, e))?;
    let block = state.reader.get_block(number).map_err(internal)?;
    let receipts = state.reader.get_receipts(number).map_err(internal)?;
    match (block, receipts) {
        (Some(block), Some(receipts)) => {
            let body = api_types::encode_block(&block, &receipts).map_err(internal)?;
            Ok(Response::json(200, body))
        }
        _ => Err((404, format!("block {number} is not archived"))),
    }
}

fn stats() -> HandlerResult {
    Ok(Response::json(200, mev_obs::report().to_json()))
}
