//! Cursor boundary semantics under untrusted continuation tokens.
//!
//! The HTTP server hands [`Cursor`] tokens to clients and accepts them
//! back, so `Cursor::at_tx(block, i)` with any `i` — including `i` at or
//! past the block's transaction count, which the engines themselves emit
//! at block boundaries — is reachable input. This suite pins the
//! contract the satellite-3 audit established: such cursors resume at
//! the next block with **no duplicated and no skipped rows**, and both
//! archive backends ([`ChainStore`] in memory, [`StoreReader`] on disk)
//! answer bit-identically, page by page, cursor by cursor.

use mev_chain::{ArchiveQuery, ChainStore, Cursor, EventKind, LogEntry, LogFilter};
use mev_store::testutil::{scratch_dir, test_chain};
use mev_store::{StoreReader, StoreWriter};
use mev_types::Address;

/// The deterministic fixture: 10 blocks × 3 txs. Every tx emits a
/// Transfer from A(1); even blocks' first tx adds a Swap from A(2).
const BLOCKS: u64 = 10;
const TXS_PER_BLOCK: u32 = 3;

fn backends(label: &str) -> (std::path::PathBuf, ChainStore, StoreReader) {
    let dir = scratch_dir(label);
    let chain = test_chain(BLOCKS, TXS_PER_BLOCK as u64);
    let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
    w.ingest(&chain).unwrap();
    let reader = StoreReader::open(&dir).unwrap();
    (dir, chain, reader)
}

/// The filters a server's query string can express, spanning the
/// planner's strategies (unselective scans, postings-served selective
/// filters, windowed subsets).
fn filters(genesis: u64) -> Vec<LogFilter> {
    vec![
        LogFilter::new(),
        LogFilter::new().address(Address::from_index(1)),
        LogFilter::new().kind(EventKind::Swap),
        LogFilter::new()
            .address(Address::from_index(2))
            .kind(EventKind::Swap),
        LogFilter::new()
            .from_block(genesis + 2)
            .to_block(genesis + 7),
    ]
}

/// Ground truth for a resumed filter: every match of the *unresumed*
/// filter at or after the cursor position, in scan order.
fn expected_after(all: &[LogEntry], cursor: Cursor) -> Vec<LogEntry> {
    all.iter()
        .filter(|e| (e.block, e.tx_index) >= (cursor.next_block(), cursor.next_tx_index()))
        .cloned()
        .collect()
}

/// Every cursor position the sweep probes for a given block: in-range
/// tx indices, the exact tx count (the boundary the engines emit), and
/// positions well past it, up to the adversarial maximum.
fn probe_indices() -> Vec<u32> {
    vec![
        0,
        1,
        TXS_PER_BLOCK - 1,
        TXS_PER_BLOCK,
        TXS_PER_BLOCK + 1,
        TXS_PER_BLOCK + 7,
        u32::MAX,
    ]
}

#[test]
fn out_of_range_cursors_resume_at_the_next_block_without_dup_or_skip() {
    let (dir, chain, reader) = backends("cursor-boundary-sweep");
    let genesis = chain.timeline().genesis_number;
    let head = chain.head_number().unwrap();
    for filter in filters(genesis) {
        // Unresumed, unlimited ground truth from the in-memory scan.
        let all = chain.pages(&filter).collect_entries().unwrap();
        // Blocks below genesis, through the archive, and past the head:
        // clients can claim any position.
        for block in (genesis - 1)..=(head + 2) {
            for i in probe_indices() {
                let cursor = Cursor::at_tx(block, i);
                let resumed = filter.clone().after(cursor).limit(4);
                let expected = expected_after(&all, cursor);
                let mem = chain.pages(&resumed).collect_entries().unwrap();
                assert_eq!(
                    mem, expected,
                    "memory backend diverged for {filter:?} after {cursor:?}"
                );
                let stored = reader.pages(&resumed).collect_entries().unwrap();
                assert_eq!(
                    stored, expected,
                    "store backend diverged for {filter:?} after {cursor:?}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn both_backends_agree_page_by_page_and_cursor_by_cursor() {
    let (dir, chain, reader) = backends("cursor-boundary-pages");
    let genesis = chain.timeline().genesis_number;
    let head = chain.head_number().unwrap();
    for filter in filters(genesis) {
        for block in [genesis, genesis + 3, head, head + 1] {
            for i in probe_indices() {
                let resumed = filter.clone().after(Cursor::at_tx(block, i)).limit(2);
                let mem: Vec<_> = chain.pages(&resumed).map(|p| p.unwrap().0).collect();
                let stored: Vec<_> = reader.pages(&resumed).map(|p| p.unwrap().0).collect();
                assert_eq!(
                    mem.len(),
                    stored.len(),
                    "page count diverged for {filter:?} at ({block}, {i})"
                );
                for (m, s) in mem.iter().zip(&stored) {
                    assert_eq!(m.entries, s.entries, "{filter:?} at ({block}, {i})");
                    assert_eq!(m.next, s.next, "cursors diverged at ({block}, {i})");
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_emitted_boundary_cursors_continue_exactly() {
    // The engines themselves hand out `at_tx(b, last_tx + 1)` when a
    // page fills on a block's final transaction — an index equal to the
    // block's tx count. Walking every page at every limit must
    // concatenate to exactly the unpaginated answer, with no row seen
    // twice and none lost.
    let (dir, chain, reader) = backends("cursor-boundary-walk");
    let genesis = chain.timeline().genesis_number;
    for filter in filters(genesis) {
        let all = chain.pages(&filter).collect_entries().unwrap();
        for limit in 1..=7usize {
            let limited = filter.clone().limit(limit);
            let mem = chain.pages(&limited).collect_entries().unwrap();
            assert_eq!(mem, all, "memory walk at limit {limit} for {filter:?}");
            let stored = reader.pages(&limited).collect_entries().unwrap();
            assert_eq!(stored, all, "store walk at limit {limit} for {filter:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
