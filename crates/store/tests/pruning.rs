//! Acceptance test for query pruning: a warm re-scan with a narrow
//! `LogFilter` window must read *strictly fewer* segments than a cold
//! full scan, selective filters must be served from sidecar postings
//! without touching a data frame, and neither pruning nor the planner
//! may ever change the answer.

use mev_store::testutil::{scratch_dir, test_chain};
use mev_store::{ArchiveQuery, EventKind, LogFilter, QueryPlan, StoreReader, StoreWriter};
use mev_types::Address;

#[test]
fn warm_pruned_scan_reads_strictly_fewer_segments_than_cold_full_scan() {
    let dir = scratch_dir("pruning-acceptance");
    let chain = test_chain(64, 2); // 8 sealed segments of 8 blocks
    let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 8).unwrap();
    w.ingest(&chain).unwrap();
    drop(w);

    let reader = StoreReader::open(&dir).unwrap();
    let genesis = reader.timeline().genesis_number;

    // Cold full scan: no height bounds, no address/kind — unselective,
    // so the planner scans and every segment must be read.
    let cold = reader.pages(&LogFilter::new()).collect_entries().unwrap();
    let (_, cold_stats) = reader
        .get_logs_with_stats(&LogFilter::new().limit(usize::MAX))
        .unwrap();
    assert_eq!(cold_stats.plan, QueryPlan::FullScan);
    assert_eq!(cold_stats.segments_total, 8);
    assert_eq!(cold_stats.segments_read, 8);
    assert_eq!(cold_stats.pruned_by_zone + cold_stats.pruned_by_bloom, 0);
    assert!(!cold.is_empty());

    // Warm narrow-window re-scan: 6 blocks inside segments 2..=3. A
    // window alone is not selective, so this still plans as a scan —
    // zone maps do the pruning.
    let narrow = LogFilter::new()
        .from_block(genesis + 17)
        .to_block(genesis + 22)
        .limit(usize::MAX);
    let (page, warm_stats) = reader.get_logs_with_stats(&narrow).unwrap();
    assert_eq!(warm_stats.plan, QueryPlan::FullScan);
    assert!(
        warm_stats.segments_read < cold_stats.segments_read,
        "warm scan read {} segments, cold read {}",
        warm_stats.segments_read,
        cold_stats.segments_read
    );
    assert_eq!(warm_stats.segments_read, 2);
    assert_eq!(warm_stats.pruned_by_zone, 6);
    // Pruning must not change the answer: same entries as filtering the
    // cold scan down to the window.
    let expected: Vec<_> = cold
        .iter()
        .filter(|e| e.block >= genesis + 17 && e.block <= genesis + 22)
        .cloned()
        .collect();
    assert_eq!(page.entries, expected);

    // Bloom pruning: an address never emitted is selective, so the
    // planner goes to the postings sidecars — and finds nothing without
    // reading a single data frame.
    let absent = LogFilter::new()
        .address(Address::from_index(999_999))
        .limit(usize::MAX);
    let (page, bloom_stats) = reader.get_logs_with_stats(&absent).unwrap();
    assert_eq!(bloom_stats.plan, QueryPlan::Postings);
    assert!(page.entries.is_empty());
    assert_eq!(bloom_stats.segments_read, 0);
    assert_eq!(bloom_stats.data_frames_read, 0);
    // Every segment is either pruned by its bloom or unmasked as a
    // false positive by its (empty) postings.
    assert_eq!(
        bloom_stats.pruned_by_bloom + bloom_stats.bloom_false_positives,
        8
    );
    assert!(
        bloom_stats.pruned_by_bloom >= 6,
        "bloom pruned only {} of 8 segments",
        bloom_stats.pruned_by_bloom
    );

    // Kind-only filter on a kind only even blocks emit (Swap): also
    // selective, also answered purely from the index.
    let swaps = LogFilter::new().kind(EventKind::Swap).limit(usize::MAX);
    let (swap_page, swap_stats) = reader.get_logs_with_stats(&swaps).unwrap();
    assert_eq!(swap_stats.plan, QueryPlan::Postings);
    assert_eq!(swap_stats.data_frames_read, 0);
    assert!(swap_stats.postings_pages_read > 0);
    assert!(swap_page
        .entries
        .iter()
        .all(|e| (e.block - genesis) % 2 == 0));
    // The planner's choice is invisible in the answer: forcing the scan
    // path yields bit-identical entries.
    let (scan_page, scan_stats) = reader.get_logs_scan_with_stats(&swaps).unwrap();
    assert_eq!(scan_stats.plan, QueryPlan::FullScan);
    assert_eq!(swap_page.entries, scan_page.entries);
    assert_eq!(swap_page.next, scan_page.next);

    std::fs::remove_dir_all(&dir).ok();
}
