//! Compaction is invisible to readers.
//!
//! `StoreWriter::compact` merges runs of small sealed segments into
//! larger tiers behind the usual single-rename manifest commit. These
//! tests pin the contract from the query side: every [`ArchiveQuery`]
//! answer — full log sets, page-by-page entries *and* continuation
//! cursors, and aggregates — is bit-identical before and after
//! compaction; `verify()` passes over the rewritten store (including
//! its dictionary-compressed sidecars); and a crash at any point before
//! the manifest swap leaves the old store fully live, with the orphaned
//! tier files swept on the next open.

use mev_store::testutil::{scratch_dir, test_chain};
use mev_store::{ArchiveQuery, EventKind, GroupBy, LogFilter, Manifest, StoreReader, StoreWriter};
use mev_types::Address;

const BLOCKS: u64 = 17;
const TXS_PER_BLOCK: u64 = 3;

fn build(label: &str) -> std::path::PathBuf {
    let dir = scratch_dir(label);
    let chain = test_chain(BLOCKS, TXS_PER_BLOCK);
    let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 2).unwrap();
    w.ingest(&chain).unwrap();
    dir
}

/// Filters spanning the planner's strategies: unselective scans,
/// postings-served selective filters, windowed subsets, and small
/// limits that force multi-page cursor chains.
fn filters(genesis: u64) -> Vec<LogFilter> {
    vec![
        LogFilter::new(),
        LogFilter::new().address(Address::from_index(1)),
        LogFilter::new().address(Address::from_index(2)),
        LogFilter::new().kind(EventKind::Swap),
        LogFilter::new()
            .address(Address::from_index(2))
            .kind(EventKind::Swap),
        LogFilter::new()
            .from_block(genesis + 3)
            .to_block(genesis + 12),
        LogFilter::new().limit(4),
        LogFilter::new().address(Address::from_index(1)).limit(5),
    ]
}

/// Every observable query answer for one store: per-filter page chains
/// (entries and cursors, page by page) and all three aggregates.
fn observe(reader: &StoreReader) -> Vec<String> {
    let genesis = reader.timeline().genesis_number;
    let mut out = Vec::new();
    for filter in filters(genesis) {
        for page in reader.pages(&filter) {
            let (page, _) = page.unwrap();
            out.push(format!("{:?} next={:?}", page.entries, page.next));
        }
        for group_by in [GroupBy::Kind, GroupBy::Address, GroupBy::Epoch] {
            let (rows, _) = reader.aggregate(&filter, group_by).unwrap();
            out.push(format!("{rows:?}"));
        }
    }
    out
}

#[test]
fn queries_are_bit_identical_across_compaction() {
    let dir = build("compaction-identity");
    let reader = StoreReader::open(&dir).unwrap();
    let before = observe(&reader);
    drop(reader);

    let mut w = StoreWriter::open(&dir).unwrap();
    let stats = w.compact(3).unwrap();
    assert!(stats.committed);
    assert!(stats.tiers_written >= 2, "fixture must actually compact");
    assert!(stats.segments_after < stats.segments_before);
    drop(w);

    let reader = StoreReader::open(&dir).unwrap();
    assert_eq!(observe(&reader), before);
    // The rewritten tiers — dictionary-compressed sidecars included —
    // pass a full verification sweep.
    let report = reader.verify().unwrap();
    assert_eq!(report.segments, stats.segments_after);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_is_idempotent_and_stacks() {
    let dir = build("compaction-stacking");
    let reader = StoreReader::open(&dir).unwrap();
    let before = observe(&reader);
    drop(reader);

    let mut w = StoreWriter::open(&dir).unwrap();
    let first = w.compact(2).unwrap();
    assert!(first.tiers_written >= 2);
    // Re-compacting at the same factor finds full tiers and a partial
    // tail only: nothing merges.
    let again = w.compact(2).unwrap();
    assert_eq!(again.tiers_written, 0);
    assert_eq!(again.segments_after, first.segments_after);
    // A larger factor stacks tiers into bigger tiers.
    let wider = w.compact(4).unwrap();
    assert!(wider.tiers_written >= 1);
    assert!(wider.segments_after < first.segments_after);
    drop(w);

    let reader = StoreReader::open(&dir).unwrap();
    assert_eq!(observe(&reader), before);
    reader.verify().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_keeps_growing_after_compaction() {
    let dir = build("compaction-grow");
    let mut w = StoreWriter::open(&dir).unwrap();
    w.compact(3).unwrap();
    // Ingest the grown chain; the renumbered tail and fresh segments
    // append exactly as they would have without compaction.
    let grown = test_chain(BLOCKS + 7, TXS_PER_BLOCK);
    let stats = w.ingest(&grown).unwrap();
    assert_eq!(stats.appended, 7);
    drop(w);
    let reader = StoreReader::open(&dir).unwrap();
    assert_eq!(
        reader.head_block(),
        Some(reader.timeline().genesis_number + BLOCKS + 6)
    );
    // Post-growth answers match an uncompacted store over the same
    // chain, page chains and aggregates alike.
    let plain_dir = scratch_dir("compaction-grow-plain");
    let mut plain = StoreWriter::create(&plain_dir, grown.timeline().clone(), 2).unwrap();
    plain.ingest(&grown).unwrap();
    let plain_reader = StoreReader::open(&plain_dir).unwrap();
    assert_eq!(observe(&reader), observe(&plain_reader));
    reader.verify().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&plain_dir).ok();
}

#[test]
fn crash_before_manifest_swap_leaves_the_old_store_fully_live() {
    let dir = build("compaction-crash");
    let reader = StoreReader::open(&dir).unwrap();
    let before = observe(&reader);
    drop(reader);
    let manifest_before = Manifest::load(&dir).unwrap();

    let mut w = StoreWriter::open(&dir).unwrap();
    w.simulate_crash_before_commit(true);
    let stats = w.compact(3).unwrap();
    assert!(!stats.committed);
    assert!(stats.tiers_written >= 2);
    drop(w);

    // The old manifest is byte-for-byte the live one and answers every
    // query exactly as before the attempt.
    let manifest_after = Manifest::load(&dir).unwrap();
    assert_eq!(manifest_after.segments, manifest_before.segments);
    assert_eq!(manifest_after.commit_seq, manifest_before.commit_seq);
    let reader = StoreReader::open(&dir).unwrap();
    assert_eq!(observe(&reader), before);
    reader.verify().unwrap();
    drop(reader);

    // The next writer open sweeps the crashed pass's tier files...
    let w2 = StoreWriter::open(&dir).unwrap();
    let stray: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(String::from))
        .filter(|n| n.starts_with("seg-c"))
        .collect();
    assert!(stray.is_empty(), "orphaned tier files survived: {stray:?}");
    drop(w2);

    // ...and a clean retry compacts for real with identical answers.
    let mut w3 = StoreWriter::open(&dir).unwrap();
    let stats = w3.compact(3).unwrap();
    assert!(stats.committed);
    drop(w3);
    let reader = StoreReader::open(&dir).unwrap();
    assert_eq!(observe(&reader), before);
    reader.verify().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
