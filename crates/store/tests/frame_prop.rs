//! Property tests for the store frame codec (ISSUE 4 satellite):
//! encode→decode round-trips for blocks/receipts/logs, corrupted
//! checksums rejected as *errors* (never panics), truncated tails
//! detected on open.

use mev_store::frame::{encode_frame, FrameReader, FRAME_HEADER_BYTES};
use mev_store::segment::BlockEntry;
use mev_store::testutil::test_block;
use mev_store::StoreError;
use mev_types::{Address, Log, LogEvent, TokenId};
use proptest::prelude::*;
use std::path::Path;

fn read_all(bytes: &[u8], limit: u64) -> Result<Vec<(u8, Vec<u8>)>, StoreError> {
    let mut r = FrameReader::new(bytes, Path::new("prop.seg"), limit);
    let mut out = Vec::new();
    while let Some(f) = r.next_frame()? {
        out.push((f.kind, f.payload));
    }
    Ok(out)
}

/// An arbitrary decoded log event, covering every variant.
fn arb_event() -> impl Strategy<Value = LogEvent> {
    let addr = (0u64..1_000_000).prop_map(Address::from_index);
    let token = (0u32..64).prop_map(TokenId);
    prop_oneof![
        (token.clone(), addr.clone(), addr.clone(), any::<u128>()).prop_map(
            |(token, from, to, amount)| LogEvent::Transfer {
                token,
                from,
                to,
                amount
            }
        ),
        (
            addr.clone(),
            token.clone(),
            any::<u128>(),
            token.clone(),
            any::<u128>()
        )
            .prop_map(|(sender, token_in, amount_in, token_out, amount_out)| {
                LogEvent::Swap {
                    pool: mev_types::PoolId {
                        exchange: mev_types::ExchangeId::UniswapV2,
                        index: 3,
                    },
                    sender,
                    token_in,
                    amount_in,
                    token_out,
                    amount_out,
                }
            }),
        (addr.clone(), token.clone(), any::<u128>()).prop_map(|(user, token, amount)| {
            LogEvent::Deposit {
                platform: mev_types::LendingPlatformId::AaveV2,
                user,
                token,
                amount,
            }
        }),
        (
            addr.clone(),
            addr.clone(),
            token.clone(),
            any::<u128>(),
            token.clone(),
            any::<u128>()
        )
            .prop_map(
                |(liquidator, borrower, debt_token, debt_repaid, collateral_token, seized)| {
                    LogEvent::Liquidation {
                        platform: mev_types::LendingPlatformId::Compound,
                        liquidator,
                        borrower,
                        debt_token,
                        debt_repaid,
                        collateral_token,
                        collateral_seized: seized,
                    }
                }
            ),
        (addr.clone(), token.clone(), any::<u128>(), any::<u128>()).prop_map(
            |(initiator, token, amount, fee)| LogEvent::FlashLoan {
                platform: mev_types::LendingPlatformId::AaveV2,
                initiator,
                token,
                amount,
                fee,
            }
        ),
        (token, any::<u128>())
            .prop_map(|(token, price_wei)| LogEvent::OracleUpdate { token, price_wei }),
    ]
}

proptest! {
    /// Arbitrary frame sequences round-trip exactly.
    #[test]
    fn frames_round_trip(
        frames in prop::collection::vec((any::<u8>(), prop::collection::vec(any::<u8>(), 0..512)), 1..12)
    ) {
        let mut buf = Vec::new();
        for (kind, payload) in &frames {
            encode_frame(&mut buf, *kind, payload);
        }
        let decoded = read_all(&buf, buf.len() as u64).unwrap();
        prop_assert_eq!(decoded, frames);
    }

    /// Flipping any single byte of a one-frame stream is rejected as an
    /// error — and never panics. (A flip in the length field may also
    /// surface as truncation or an implausible length; all are errors.)
    #[test]
    fn any_single_bitflip_is_rejected(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        pos_seed in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 2, &payload);
        let pos = pos_seed.index(buf.len());
        buf[pos] ^= 1 << bit;
        let got = read_all(&buf, buf.len() as u64);
        prop_assert!(got.is_err(), "corrupted frame decoded as {got:?}");
    }

    /// Cutting the stream anywhere that is not a frame boundary is
    /// detected as truncation; cutting exactly on a boundary yields the
    /// committed prefix.
    #[test]
    fn truncation_is_detected_on_open(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128), 1..8),
        cut_seed in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0u64];
        for p in &payloads {
            encode_frame(&mut buf, 2, p);
            boundaries.push(buf.len() as u64);
        }
        let cut = cut_seed.index(buf.len()) as u64; // 0 <= cut < len
        let truncated = &buf[..cut as usize];
        let got = read_all(truncated, cut);
        if boundaries.contains(&cut) {
            let n = boundaries.iter().position(|&b| b == cut).unwrap();
            prop_assert_eq!(got.unwrap().len(), n);
        } else {
            prop_assert!(
                matches!(got, Err(StoreError::TruncatedFrame { .. }) | Err(StoreError::Codec { .. })),
                "mid-frame cut at {cut} not detected"
            );
        }
    }

    /// Blocks with arbitrary receipts/logs round-trip through the block
    /// entry payload + frame codec bit-identically.
    #[test]
    fn block_entries_round_trip(
        number in 10_000_000u64..10_000_500,
        n_txs in 0u64..5,
        extra_events in prop::collection::vec(arb_event(), 0..6),
        emitter in 0u64..10_000,
    ) {
        let (block, mut receipts) = test_block(number, n_txs);
        if let Some(last) = receipts.last_mut() {
            for ev in &extra_events {
                last.logs.push(Log::new(Address::from_index(emitter), ev.clone()));
            }
        }
        let entry = BlockEntry { block, receipts };
        let payload = serde_json::to_vec(&entry).unwrap();
        let mut buf = Vec::new();
        encode_frame(&mut buf, 2, &payload);
        let frames = read_all(&buf, buf.len() as u64).unwrap();
        prop_assert_eq!(frames.len(), 1);
        let decoded: BlockEntry = serde_json::from_slice(&frames[0].1).unwrap();
        prop_assert_eq!(decoded, entry);
    }

    /// The committed limit always hides an uncommitted tail, wherever
    /// the commit boundary falls.
    #[test]
    fn committed_limit_hides_tail(
        committed in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..5),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = Vec::new();
        for p in &committed {
            encode_frame(&mut buf, 2, p);
        }
        let limit = buf.len() as u64;
        buf.extend_from_slice(&garbage);
        let frames = read_all(&buf, limit).unwrap();
        prop_assert_eq!(frames.len(), committed.len());
    }
}

#[test]
fn header_constant_matches_layout() {
    // 4 (len) + 1 (kind) + 4 (crc32).
    assert_eq!(FRAME_HEADER_BYTES, 9);
}
