//! Properties of the zero-copy (mmap) segment read path.
//!
//! `read_segment` maps the committed prefix of a segment file and
//! decodes borrowed frames out of it. These tests pin the two contracts
//! the tentpole rests on: the mapped path is **bit-identical** to a
//! buffered [`FrameReader`] walk of the same file, and every corruption
//! shape — truncation, bit flips anywhere in the image, an implausible
//! length field — surfaces as the same [`StoreError`] variants the
//! buffered path reports, never a panic and never an out-of-bounds
//! access (the committed length is stat-checked before the map, so the
//! reader's limit always fits the file).

use mev_store::segment::read_segment;
use mev_store::testutil::{scratch_dir, test_chain};
use mev_store::{Frame, FrameReader, Manifest, StoreError, StoreReader, StoreWriter};
use std::fs;
use std::path::Path;

fn build(label: &str, blocks: u64, segment_blocks: u64) -> std::path::PathBuf {
    let dir = scratch_dir(label);
    let chain = test_chain(blocks, 2);
    let mut w = StoreWriter::create(&dir, chain.timeline().clone(), segment_blocks).unwrap();
    w.ingest(&chain).unwrap();
    dir
}

/// Decode every committed frame of a file through the buffered reader.
fn buffered_frames(path: &Path, committed: u64) -> Vec<Frame> {
    let file = fs::File::open(path).unwrap();
    let mut r = FrameReader::new(std::io::BufReader::new(file), path, committed);
    let mut out = Vec::new();
    while let Some(f) = r.next_frame().unwrap() {
        out.push(f);
    }
    out
}

#[test]
fn mapped_decode_is_bit_identical_to_buffered_decode() {
    let dir = build("mmap-prop-identity", 11, 3);
    let manifest = Manifest::load(&dir).unwrap();
    assert!(manifest.segments.len() >= 3);
    for meta in &manifest.segments {
        let path = dir.join(&meta.file);
        // The buffered walk decodes the same committed byte range the
        // mmap path hands to `SliceFrameReader`.
        let frames = buffered_frames(&path, meta.bytes);
        assert!(!frames.is_empty());
        // The mapped walk reaches entry level; re-encode each entry and
        // compare against the buffered frames' payloads byte for byte.
        let entries = read_segment(&dir, meta).unwrap();
        assert_eq!(frames.len(), entries.len() + 1, "header frame + entries");
        for (frame, entry) in frames.iter().skip(1).zip(entries.iter()) {
            let payload = serde_json::to_vec(entry).unwrap();
            assert_eq!(
                frame.payload, payload,
                "{} offset {}",
                meta.file, frame.offset
            );
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_segment_fails_like_the_buffered_path() {
    let dir = build("mmap-prop-truncate", 9, 4);
    let manifest = Manifest::load(&dir).unwrap();
    let meta = &manifest.segments[0];
    let path = dir.join(&meta.file);
    let original = fs::read(&path).unwrap();
    // Cut at several points inside the committed range: mid-payload,
    // mid-header, and one byte short.
    for cut in [
        original.len() - 1,
        original.len() - 5,
        original.len() / 2,
        3,
        0,
    ] {
        fs::write(&path, &original[..cut]).unwrap();
        match read_segment(&dir, meta) {
            Err(StoreError::SegmentTruncated {
                committed, actual, ..
            }) => {
                assert_eq!(committed, meta.bytes);
                assert_eq!(actual, cut as u64);
            }
            other => panic!("cut={cut}: expected SegmentTruncated, got {other:?}"),
        }
        // The reader refuses the whole store on open, same variant.
        match StoreReader::open(&dir).err() {
            Some(StoreError::SegmentTruncated { .. }) => {}
            other => panic!("cut={cut}: open should refuse truncation, got {other:?}"),
        }
    }
    fs::write(&path, &original).unwrap();
    assert!(read_segment(&dir, meta).is_ok());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bitflips_anywhere_fail_with_the_buffered_variants_and_never_panic() {
    let dir = build("mmap-prop-bitflip", 7, 4);
    let manifest = Manifest::load(&dir).unwrap();
    let meta = &manifest.segments[0];
    let path = dir.join(&meta.file);
    let original = fs::read(&path).unwrap();
    // Sweep a spread of byte positions covering headers and payloads of
    // several frames, plus the exact first and last committed bytes.
    let mut positions: Vec<usize> = (0..original.len()).step_by(37).collect();
    positions.push(0);
    positions.push(original.len() - 1);
    for pos in positions {
        let mut tampered = original.clone();
        tampered[pos] ^= 0x40;
        fs::write(&path, &tampered).unwrap();
        match read_segment(&dir, meta) {
            // A flip in a payload (or CRC field) is a checksum mismatch;
            // in a length field it can also read as an implausible
            // length or a frame crossing the committed limit. Decoded-
            // but-wrong headers surface as zone-map mismatches. All are
            // errors; none are panics or UB.
            Err(StoreError::ChecksumMismatch { .. })
            | Err(StoreError::Codec { .. })
            | Err(StoreError::TruncatedFrame { .. })
            | Err(StoreError::ZoneMapMismatch { .. }) => {}
            Ok(_) => panic!("flip at byte {pos} went undetected"),
            Err(other) => panic!("flip at byte {pos}: unexpected error {other:?}"),
        }
    }
    fs::write(&path, &original).unwrap();
    assert!(read_segment(&dir, meta).is_ok());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn uncommitted_tail_bytes_are_invisible_to_the_mapped_reader() {
    let dir = build("mmap-prop-tail-garbage", 8, 4);
    let manifest = Manifest::load(&dir).unwrap();
    let meta = &manifest.segments[0];
    let path = dir.join(&meta.file);
    // Garbage past the committed length — crash residue — must not
    // affect decoding: the map is clamped to `meta.bytes`.
    let mut bytes = fs::read(&path).unwrap();
    let clean = read_segment(&dir, meta).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF]);
    fs::write(&path, &bytes).unwrap();
    let with_garbage = read_segment(&dir, meta).unwrap();
    assert_eq!(clean, with_garbage);
    fs::remove_dir_all(&dir).ok();
}
