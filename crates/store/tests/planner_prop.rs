//! Property tests for the query planner (ISSUE 6): whatever strategy
//! the planner picks — full scan, inverted postings, rollup tables —
//! must be bit-identical to the forced full scan on the same filter,
//! page by page, cursor by cursor. And a damaged sidecar must degrade
//! to the scan, never to a wrong answer or an error.

use mev_store::testutil::{scratch_dir, test_chain};
use mev_store::{ArchiveQuery, EventKind, GroupBy, LogFilter, QueryPlan, StoreReader, StoreWriter};
use mev_types::Address;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const BLOCKS: u64 = 24;
const TXS_PER_BLOCK: u64 = 3;
const SEGMENT_BLOCKS: u64 = 6;

/// One shared read-only archive for the identity properties; each case
/// opens its own reader against it.
fn archive_root() -> &'static PathBuf {
    static ROOT: OnceLock<PathBuf> = OnceLock::new();
    ROOT.get_or_init(|| {
        let dir = scratch_dir("planner-prop");
        let chain = test_chain(BLOCKS, TXS_PER_BLOCK);
        let mut w =
            StoreWriter::create(&dir, chain.timeline().clone(), SEGMENT_BLOCKS).expect("create");
        w.ingest(&chain).expect("ingest");
        dir
    })
}

/// Addresses worth filtering on: the two emitters the fixture chain
/// uses, one that never appears, and a couple of per-tx senders.
fn arb_addresses() -> impl Strategy<Value = Vec<Address>> {
    prop::collection::vec(
        prop_oneof![
            Just(Address::from_index(1)),
            Just(Address::from_index(2)),
            Just(Address::from_index(999_999)),
        ],
        0..3,
    )
}

fn arb_kinds() -> impl Strategy<Value = Vec<EventKind>> {
    prop::collection::vec(
        prop_oneof![
            Just(EventKind::Transfer),
            Just(EventKind::Swap),
            Just(EventKind::Liquidation),
        ],
        0..3,
    )
}

/// A random filter over the fixture chain: any address/kind selection,
/// any (possibly empty or out-of-range) window, small page limits so
/// pagination actually paginates.
fn arb_filter() -> impl Strategy<Value = LogFilter> {
    (
        arb_addresses(),
        arb_kinds(),
        prop::option::of(0u64..BLOCKS + 4),
        prop::option::of(0u64..BLOCKS + 4),
        prop::option::of(1usize..12),
    )
        .prop_map(|(addrs, kinds, from, to, limit)| {
            let genesis = 10_000_000u64;
            let mut f = LogFilter::new().addresses(addrs).kinds(kinds);
            if let Some(from) = from {
                f = f.from_block(genesis + from);
            }
            if let Some(to) = to {
                f = f.to_block(genesis + to);
            }
            if let Some(limit) = limit {
                f = f.limit(limit);
            }
            f
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the planner picks, the full page walk — entries *and*
    /// continuation cursors — matches the forced scan exactly.
    #[test]
    fn planner_choice_is_bit_identical_to_scan(filter in arb_filter()) {
        let reader = StoreReader::open(archive_root()).unwrap();
        let mut f = filter;
        let mut terminated = false;
        for _ in 0..200 {
            let (planned, stats) = reader.get_logs_with_stats(&f).unwrap();
            let (scanned, scan_stats) = reader.get_logs_scan_with_stats(&f).unwrap();
            prop_assert_eq!(scan_stats.plan, QueryPlan::FullScan);
            prop_assert_eq!(&planned.entries, &scanned.entries);
            prop_assert_eq!(planned.next, scanned.next);
            if stats.plan == QueryPlan::Postings {
                // The postings strategy never touches a data frame.
                prop_assert_eq!(stats.segments_read, 0);
                prop_assert_eq!(stats.data_frames_read, 0);
            }
            match planned.next {
                Some(c) => f = f.after(c),
                None => {
                    terminated = true;
                    break;
                }
            }
        }
        prop_assert!(terminated, "pagination did not terminate within 200 pages");
    }

    /// Selective filters are planned as postings lookups on a fully
    /// indexed archive (the planner actually exercises the index —
    /// otherwise the identity property above proves nothing).
    #[test]
    fn selective_filters_use_the_postings_plan(
        filter in arb_filter().prop_filter("selective", |f| f.is_selective()),
    ) {
        let reader = StoreReader::open(archive_root()).unwrap();
        let (_, stats) = reader.get_logs_with_stats(&filter).unwrap();
        let genesis = reader.timeline().genesis_number;
        let head = reader.head_block().unwrap();
        match filter.window(genesis, head) {
            Some(_) => prop_assert_eq!(stats.plan, QueryPlan::Postings),
            // An empty window answers empty without consulting segments.
            None => prop_assert!(stats.segments_read == 0 && stats.postings_pages_read == 0),
        }
    }

    /// Aggregates agree with the forced page fold for every group-by,
    /// whether the planner answered from the rollup tables or not.
    #[test]
    fn aggregates_match_the_fold(
        filter in arb_filter(),
        which in 0u8..3,
    ) {
        let group_by = [GroupBy::Kind, GroupBy::Address, GroupBy::Epoch][which as usize];
        // Rollup eligibility requires the orthogonal dimension free; the
        // strategy may or may not satisfy that — both paths must agree.
        let reader = StoreReader::open(archive_root()).unwrap();
        let (rows, stats) = reader.aggregate(&filter, group_by).unwrap();
        let (fold_rows, _) = reader.aggregate_fold(&filter, group_by).unwrap();
        prop_assert_eq!(rows, fold_rows);
        if stats.plan == QueryPlan::Rollup {
            prop_assert_eq!(stats.segments_read, 0);
            prop_assert_eq!(stats.data_frames_read, 0);
            prop_assert_eq!(stats.rollup_reads, 1);
        }
    }

    /// Flip any single bit of any sidecar index: every query still
    /// returns exactly the scan's answer — a torn or corrupted index
    /// degrades to the scan, never to a wrong page or a query error.
    #[test]
    fn bitflipped_sidecar_degrades_to_scan(
        filter in arb_filter().prop_filter("selective", |f| f.is_selective()),
        seg in 0u64..2,
        pos_seed in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let dir = scratch_dir("planner-prop-flip");
        let chain = test_chain(8, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        w.ingest(&chain).unwrap();
        drop(w);

        let idx = dir.join(mev_store::index_file_name(seg));
        let mut bytes = std::fs::read(&idx).unwrap();
        let pos = pos_seed.index(bytes.len());
        bytes[pos] ^= 1 << bit;
        std::fs::write(&idx, &bytes).unwrap();

        let reader = StoreReader::open(&dir).unwrap();
        let (page, _) = reader.get_logs_with_stats(&filter).unwrap();
        let (scan, _) = reader.get_logs_scan_with_stats(&filter).unwrap();
        prop_assert_eq!(&page.entries, &scan.entries);
        prop_assert_eq!(page.next, scan.next);
        // The in-memory chain agrees too (first page of the same walk).
        let (chain_page, _) = chain.get_logs_with_stats(&filter).unwrap();
        prop_assert_eq!(&page.entries, &chain_page.entries);

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Old single-value filter checkpoints still deserialize, folding the
/// legacy scalars into the multi-value fields, and block-only cursors
/// resume at the block boundary.
#[test]
fn legacy_filter_wire_shape_still_deserializes() {
    #[derive(serde::Serialize)]
    struct LegacyCursor {
        next_block: u64,
    }
    #[derive(serde::Serialize)]
    struct LegacyFilter {
        from_block: Option<u64>,
        to_block: Option<u64>,
        address: Option<Address>,
        kind: Option<EventKind>,
        limit: Option<usize>,
        resume: Option<LegacyCursor>,
    }
    let legacy = serde_json::to_string(&LegacyFilter {
        from_block: Some(10_000_001),
        to_block: None,
        address: Some(Address::from_index(2)),
        kind: Some(EventKind::Swap),
        limit: Some(5),
        resume: Some(LegacyCursor {
            next_block: 10_000_003,
        }),
    })
    .unwrap();
    let f: LogFilter = serde_json::from_str(&legacy).unwrap();
    assert_eq!(f.from_block, Some(10_000_001));
    assert_eq!(f.addresses, vec![Address::from_index(2)]);
    assert_eq!(f.kinds, vec![EventKind::Swap]);
    assert_eq!(f.limit, Some(5));
    let resume = f.resume.unwrap();
    assert_eq!(resume.next_block(), 10_000_003);
    // Pre-fix cursors carried no tx index: they resume at the block
    // boundary.
    assert_eq!(resume.next_tx_index(), 0);
}
