//! A minimal read-only memory map over a segment file — the zero-copy
//! substrate of the scan path. No `memmap` crate: on Unix this calls
//! `mmap(2)`/`munmap(2)` directly through two `extern "C"` declarations
//! (glibc is already linked); everywhere else (and whenever the syscall
//! fails) it degrades to reading the file into an owned buffer, so every
//! caller sees the same `&[u8]` either way.
//!
//! ## Safety argument
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: nothing can write through
//! it, and writes by others are not required to be visible. The slice it
//! exposes is valid because:
//!
//! * **Lifetime** — the pointer lives exactly as long as the [`Mmap`]
//!   value; `Drop` unmaps it, and the borrow checker pins every borrowed
//!   frame slice to the `Mmap`'s lifetime. The map is created over a
//!   `File` we opened ourselves and may outlive that `File` (POSIX keeps
//!   a mapping valid after its descriptor closes).
//! * **Bounds** — we map exactly the byte length we stat'd, and readers
//!   additionally clamp to the *committed* byte count from the manifest,
//!   which `read_segment` has already checked is ≤ the file length.
//! * **Truncation** — the store is append-only: committed bytes of a
//!   segment are never shortened while a reader is live (compaction
//!   replaces files under *new* names and deletes the old ones only
//!   after the manifest commit; POSIX keeps an unlinked-but-mapped file
//!   alive until the last map goes away). A hostile concurrent
//!   `truncate(2)` could still SIGBUS any mmap consumer — the same
//!   exposure every mmap-based store accepts; corrupt *contents* are
//!   handled gracefully (CRC), corrupt *metadata* is checked up front.
//! * **Alignment/validity** — the slice type is `u8`, so any alignment
//!   and any bit pattern are valid.

use crate::error::StoreError;
use std::fs;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as usize == usize::MAX
    }
}

/// A read-only view of a file's bytes: an `mmap` region when the
/// platform grants one, an owned buffer otherwise. Either way,
/// [`Mmap::as_slice`] is the whole committed file image.
pub struct Mmap {
    /// Base of the kernel mapping; null when `owned` backs the bytes.
    ptr: *mut u8,
    len: usize,
    /// The buffered-read fallback (non-Unix, zero-length, or mmap error).
    owned: Option<Vec<u8>>,
}

// SAFETY: the region is read-only for the lifetime of the value and the
// raw pointer is never exposed; sharing immutable bytes across threads
// is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the first `len` bytes of `path`'s already-opened file. The
    /// caller must have verified the file is at least `len` bytes long
    /// (readers stat against the manifest's committed length first).
    pub fn map(file: &fs::File, len: u64, path: &Path) -> Result<Mmap, StoreError> {
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
                owned: Some(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a live descriptor for the whole call; we
            // request a fresh read-only private mapping and check the
            // result before using it. See the module-level argument for
            // why dereferencing the region stays sound afterwards.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len as usize,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if !sys::map_failed(ptr) && !ptr.is_null() {
                mev_obs::counter("store.mmap.maps").inc();
                return Ok(Mmap {
                    ptr: ptr as *mut u8,
                    len: len as usize,
                    owned: None,
                });
            }
            // Fall through to the buffered read; a refused map (ulimit,
            // exotic filesystem) must not fail the query.
        }
        Mmap::read_fallback(file, len, path)
    }

    /// The degraded path: read the committed bytes into an owned buffer.
    fn read_fallback(file: &fs::File, len: u64, path: &Path) -> Result<Mmap, StoreError> {
        use std::io::Read;
        mev_obs::counter("store.mmap.fallback_reads").inc();
        let mut buf = vec![0u8; len as usize];
        let mut take = file;
        let mut read = 0usize;
        while read < buf.len() {
            match take.read(&mut buf[read..]) {
                Ok(0) => {
                    // Shorter than the stat'd length: surface as the
                    // same truncation error a frame read would.
                    return Err(StoreError::TruncatedFrame {
                        path: path.to_path_buf(),
                        offset: read as u64,
                    });
                }
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StoreError::io("read segment", path, e)),
            }
        }
        Ok(Mmap {
            ptr: std::ptr::null_mut(),
            len: len as usize,
            owned: Some(buf),
        })
    }

    /// The mapped (or buffered) bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.owned {
            Some(v) => v.as_slice(),
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (module-level argument); u8 has no alignment or
            // validity requirements.
            None => unsafe { std::slice::from_raw_parts(self.ptr, self.len) },
        }
    }

    /// True when the kernel granted a real mapping (false on the
    /// buffered fallback) — tests and counters use this.
    pub fn is_mapped(&self) -> bool {
        self.owned.is_none()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.owned.is_none() && !self.ptr.is_null() {
            // SAFETY: `ptr`/`len` are exactly what mmap returned; after
            // this the value is gone, so no slice can outlive the unmap
            // (borrows of `as_slice` pin `self`).
            unsafe {
                sys::munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;

    #[test]
    fn map_exposes_the_file_bytes() {
        let dir = scratch_dir("mmap-basic");
        let path = dir.join("f.bin");
        let bytes: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &bytes).unwrap();
        let file = fs::File::open(&path).unwrap();
        let map = Mmap::map(&file, bytes.len() as u64, &path).unwrap();
        assert_eq!(map.as_slice(), bytes.as_slice());
        #[cfg(unix)]
        assert!(map.is_mapped(), "unix should grant a real mapping");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn map_clamps_to_requested_length() {
        let dir = scratch_dir("mmap-clamp");
        let path = dir.join("f.bin");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let file = fs::File::open(&path).unwrap();
        let map = Mmap::map(&file, 100, &path).unwrap();
        assert_eq!(map.as_slice().len(), 100);
        assert!(map.as_slice().iter().all(|&b| b == 7));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_length_map_is_empty() {
        let dir = scratch_dir("mmap-empty");
        let path = dir.join("f.bin");
        std::fs::write(&path, b"").unwrap();
        let file = fs::File::open(&path).unwrap();
        let map = Mmap::map(&file, 0, &path).unwrap();
        assert!(map.as_slice().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
