//! Persisted rollups: pre-aggregated per-address, per-kind, and
//! per-epoch (calendar month) log counts and saturating wei sums,
//! committed inside `MANIFEST.json` through the store's atomic commit
//! path.
//!
//! Every paper table is a group-by over crawled logs; rollups let the
//! planner answer whole-archive aggregates (per-kind activity, monthly
//! volume curves) from the manifest alone — zero segment or index bytes
//! read. Because the rollup block rides the same atomic rename as the
//! segment metadata, it is always exactly in sync with the committed
//! blocks: a crash between appends loses the appends *and* their rollup
//! contribution together.
//!
//! Wei sums are stored as raw `u128` and accumulated with
//! `saturating_add` — aggregate volume across months can exceed any
//! single balance, and a saturated sum is preferable to a panic or wrap
//! in an accounting pipeline.

use crate::segment::BlockEntry;
use mev_chain::EventKind;
use mev_types::{Address, LogEvent, Month, Timeline};
use std::collections::BTreeMap;

/// Count + saturating wei sum of one aggregation bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct RollupStat {
    pub count: u64,
    /// Saturating sum of each log's wei-denominated principal amount
    /// ([`wei_value`]).
    pub wei_sum: u128,
}

impl RollupStat {
    /// Fold one log's value in.
    pub fn absorb(&mut self, wei: u128) {
        self.count += 1;
        self.wei_sum = self.wei_sum.saturating_add(wei);
    }

    /// Fold another bucket in (used when summing across rollup rows).
    pub fn merge(&mut self, other: &RollupStat) {
        self.count += other.count;
        self.wei_sum = self.wei_sum.saturating_add(other.wei_sum);
    }
}

/// One per-address rollup row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AddrRollup {
    pub addr: Address,
    pub stat: RollupStat,
}

/// One per-epoch (month) rollup row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EpochRollup {
    pub month: Month,
    pub stat: RollupStat,
}

/// The committed rollup tables, exactly covering blocks up to
/// `head_block`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RollupBlock {
    /// Height of the last block folded in — must equal the manifest's
    /// committed head.
    pub head_block: u64,
    /// Total logs folded in.
    pub logs: u64,
    /// Indexed by the frozen [`EventKind::tag`] order (9 entries).
    pub per_kind: Vec<RollupStat>,
    /// Sorted by address, strictly ascending.
    pub per_addr: Vec<AddrRollup>,
    /// Sorted by month, strictly ascending.
    pub per_epoch: Vec<EpochRollup>,
}

/// The wei-denominated principal of a log event — the amount each rollup
/// sums. Events without a wei principal (oracle prints) contribute 0.
pub fn wei_value(event: &LogEvent) -> u128 {
    match event {
        LogEvent::Transfer { amount, .. } => *amount,
        LogEvent::Swap { amount_in, .. } => *amount_in,
        LogEvent::Deposit { amount, .. } => *amount,
        LogEvent::Borrow { amount, .. } => *amount,
        LogEvent::Repay { amount, .. } => *amount,
        LogEvent::Liquidation { debt_repaid, .. } => *debt_repaid,
        LogEvent::FlashLoan { amount, .. } => *amount,
        LogEvent::OracleUpdate { .. } => 0,
        LogEvent::Payout { total, .. } => total.0,
    }
}

/// Mutable accumulator behind the committed [`RollupBlock`]. The writer
/// folds every appended block in and serializes a sorted snapshot at
/// commit time; iteration is over `BTreeMap`s, so snapshots are
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct RollupBuilder {
    head_block: Option<u64>,
    logs: u64,
    per_kind: Vec<RollupStat>,
    per_addr: BTreeMap<Address, RollupStat>,
    per_epoch: BTreeMap<Month, RollupStat>,
}

impl RollupBuilder {
    pub fn new() -> RollupBuilder {
        RollupBuilder {
            head_block: None,
            logs: 0,
            per_kind: vec![RollupStat::default(); EventKind::ALL.len()],
            per_addr: BTreeMap::new(),
            per_epoch: BTreeMap::new(),
        }
    }

    /// Resume from a committed rollup block (store reopen).
    pub fn from_block(block: &RollupBlock) -> RollupBuilder {
        let mut b = RollupBuilder::new();
        b.head_block = Some(block.head_block);
        b.logs = block.logs;
        for (slot, stat) in b.per_kind.iter_mut().zip(block.per_kind.iter()) {
            *slot = *stat;
        }
        b.per_addr = block.per_addr.iter().map(|r| (r.addr, r.stat)).collect();
        b.per_epoch = block.per_epoch.iter().map(|r| (r.month, r.stat)).collect();
        b
    }

    /// Height of the last block folded in.
    pub fn head_block(&self) -> Option<u64> {
        self.head_block
    }

    /// Fold one block's logs into every table.
    pub fn add_block(&mut self, timeline: &Timeline, entry: &BlockEntry) {
        let number = entry.block.header.number;
        let month = timeline.at(number).month();
        for r in &entry.receipts {
            for log in &r.logs {
                let wei = wei_value(&log.event);
                let tag = EventKind::of(&log.event).tag() as usize;
                if let Some(stat) = self.per_kind.get_mut(tag) {
                    stat.absorb(wei);
                }
                self.per_addr.entry(log.address).or_default().absorb(wei);
                self.per_epoch.entry(month).or_default().absorb(wei);
                self.logs += 1;
            }
        }
        self.head_block = Some(number);
    }

    /// Sorted, committable snapshot; `None` until a block has landed.
    pub fn to_block(&self) -> Option<RollupBlock> {
        let head_block = self.head_block?;
        Some(RollupBlock {
            head_block,
            logs: self.logs,
            per_kind: self.per_kind.clone(),
            per_addr: self
                .per_addr
                .iter()
                .map(|(&addr, &stat)| AddrRollup { addr, stat })
                .collect(),
            per_epoch: self
                .per_epoch
                .iter()
                .map(|(&month, &stat)| EpochRollup { month, stat })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_block;
    use mev_types::Address;

    fn entries(n: u64, txs: u64) -> Vec<BlockEntry> {
        let g = 10_000_000;
        (0..n)
            .map(|i| {
                let (block, receipts) = test_block(g + i, txs);
                BlockEntry { block, receipts }
            })
            .collect()
    }

    #[test]
    fn builder_counts_match_a_manual_fold() {
        let tl = Timeline::paper_span(100);
        let es = entries(10, 2);
        let mut b = RollupBuilder::new();
        assert!(b.to_block().is_none(), "empty builder commits nothing");
        for e in &es {
            b.add_block(&tl, e);
        }
        let block = b.to_block().unwrap();
        assert_eq!(block.head_block, 10_000_009);
        // test_block: 2 transfers per block + 1 swap on the 5 even blocks.
        assert_eq!(block.logs, 25);
        assert_eq!(block.per_kind[EventKind::Transfer.tag() as usize].count, 20);
        assert_eq!(block.per_kind[EventKind::Swap.tag() as usize].count, 5);
        assert_eq!(block.per_kind[EventKind::Payout.tag() as usize].count, 0);
        // Two emitting addresses, sorted.
        assert_eq!(block.per_addr.len(), 2);
        assert!(block.per_addr.windows(2).all(|w| w[0].addr < w[1].addr));
        let a1 = block
            .per_addr
            .iter()
            .find(|r| r.addr == Address::from_index(1))
            .unwrap();
        assert_eq!(a1.stat.count, 20);
        // 10 blocks at 100 blocks/month land in one epoch.
        assert_eq!(block.per_epoch.len(), 1);
        assert_eq!(block.per_epoch[0].stat.count, 25);
        // Totals agree across every table.
        let kind_total: u64 = block.per_kind.iter().map(|s| s.count).sum();
        let addr_total: u64 = block.per_addr.iter().map(|r| r.stat.count).sum();
        assert_eq!(kind_total, block.logs);
        assert_eq!(addr_total, block.logs);
    }

    #[test]
    fn from_block_round_trips() {
        let tl = Timeline::paper_span(100);
        let es = entries(8, 3);
        let mut b = RollupBuilder::new();
        for e in &es[..5] {
            b.add_block(&tl, e);
        }
        let snapshot = b.to_block().unwrap();
        // Resuming from the snapshot and folding the rest equals folding
        // everything in one pass.
        let mut resumed = RollupBuilder::from_block(&snapshot);
        let mut oneshot = RollupBuilder::new();
        for e in &es[5..] {
            resumed.add_block(&tl, e);
        }
        for e in &es {
            oneshot.add_block(&tl, e);
        }
        assert_eq!(resumed.to_block(), oneshot.to_block());
    }

    #[test]
    fn wei_sums_saturate() {
        let mut s = RollupStat::default();
        s.absorb(u128::MAX);
        s.absorb(u128::MAX);
        assert_eq!(s.wei_sum, u128::MAX);
        assert_eq!(s.count, 2);
        let mut t = RollupStat::default();
        t.absorb(7);
        t.merge(&s);
        assert_eq!(t.wei_sum, u128::MAX);
        assert_eq!(t.count, 3);
    }

    #[test]
    fn wei_value_covers_every_family() {
        use mev_types::{LendingPlatformId, TokenId, Wei};
        assert_eq!(
            wei_value(&LogEvent::OracleUpdate {
                token: TokenId(1),
                price_wei: 123
            }),
            0
        );
        assert_eq!(
            wei_value(&LogEvent::Payout {
                payer: Address::ZERO,
                recipients: 3,
                total: Wei(42)
            }),
            42
        );
        assert_eq!(
            wei_value(&LogEvent::FlashLoan {
                platform: LendingPlatformId::DyDx,
                initiator: Address::ZERO,
                token: TokenId(1),
                amount: 9,
                fee: 1
            }),
            9
        );
    }
}
