//! Per-segment secondary index: inverted postings plus columnar row
//! chunks, persisted as a checksummed sidecar file next to the segment.
//!
//! Sealing a segment also writes `seg-XXXXX.idx`, framed exactly like
//! segment files (`[len][kind][crc32][payload]`, committed-byte-limit
//! reads):
//!
//! ```text
//! [IndexHeader]  frame kind 3 — version, segment, rows, chunk size
//! [PostingsTable] frame kind 4 — AddrId → per-kind row ranges,
//!                 kind → row ranges, and the chunk offset table
//! [RowChunk]*    frame kind 5 — ROWS_PER_CHUNK log rows per frame,
//!                 columnar (block / tx_index / tx_hash / log)
//! ```
//!
//! A *row* is one log of the segment, numbered in `(block, tx_index,
//! log position)` order — the exact order a full scan of the segment
//! emits, so serving a filter from postings is bit-identical to scanning.
//! Row ids index the postings tables; `AddrId`s are dense u32 ids from a
//! per-segment first-intern-order [`Interner`] (the same id discipline
//! the detection `BlockIndex` uses), so the address table is
//! `postings.addrs[addr_id]` with no hashing at query time.
//!
//! The postings frame carries byte offsets of every row-chunk frame
//! *relative to the end of the postings frame*, so an address-history
//! query seeks straight to the chunks it needs: a warm postings-planned
//! query reads the two leading index frames plus the touched chunks and
//! **zero** segment data frames.
//!
//! Crash safety mirrors the manifest: the sidecar is written complete to
//! a temp file and atomically renamed, and its committed byte count
//! rides `SegmentMeta::postings` through the atomic manifest commit. A
//! sidecar that is missing, truncated, or fails any checksum degrades
//! the segment to a full scan — never a query error.

use crate::error::StoreError;
use crate::frame::{encode_frame, Frame, FrameReader};
use crate::manifest::{atomic_write, SegmentMeta, FORMAT_VERSION};
use crate::segment::BlockEntry;
use mev_chain::{EventKind, LogFilter};
use mev_types::{Address, Interner, Log, TxHash};
use std::fs;
use std::io::{BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Frame kind of the index header (first frame of every sidecar).
pub const FRAME_INDEX_HEADER: u8 = 3;
/// Frame kind of the postings table (second frame).
pub const FRAME_POSTINGS: u8 = 4;
/// Frame kind of a columnar row chunk.
pub const FRAME_ROW_CHUNK: u8 = 5;

/// Rows per [`RowChunk`] frame. Fixed so `chunk = row / ROWS_PER_CHUNK`
/// without consulting per-chunk metadata.
pub const ROWS_PER_CHUNK: u32 = 512;

/// Number of event families in the frozen tag space (`EventKind::ALL`).
const KIND_SLOTS: usize = EventKind::ALL.len();

/// Sidecar file name of segment `index` under the store root.
pub fn index_file_name(index: u64) -> String {
    format!("seg-{index:05}.idx")
}

/// Sidecar file name belonging to an arbitrary segment file name —
/// `seg-00003.seg → seg-00003.idx`, `seg-c7-00001.seg →
/// seg-c7-00001.idx`. Keeping the bases equal means a segment and its
/// sidecar are always adjacent in a directory listing and can never
/// collide across the plain/compacted namespaces.
pub fn sidecar_file_name(segment_file: &str) -> String {
    format!(
        "{}.idx",
        segment_file.strip_suffix(".seg").unwrap_or(segment_file)
    )
}

/// First frame of every sidecar index file.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IndexHeader {
    pub version: u32,
    /// Segment this sidecar indexes.
    pub segment: u64,
    pub first_block: u64,
    /// Total log rows in the segment.
    pub rows: u64,
    /// Rows per chunk frame ([`ROWS_PER_CHUNK`] at write time).
    pub chunk_rows: u32,
}

/// Inclusive-start `(first_row, len)` run of consecutive rows.
pub type RowRange = (u32, u32);

/// The inverted postings of one segment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PostingsTable {
    /// Addresses in first-intern order; the position *is* the `AddrId`.
    pub addrs: Vec<Address>,
    /// `addrs`-parallel: for each address, `(kind tag, row ranges)`
    /// entries sorted by tag — the rows where that address emitted that
    /// event family.
    pub by_addr_kind: Vec<Vec<(u8, Vec<RowRange>)>>,
    /// Kind tag → row ranges, for address-free kind filters.
    pub by_kind: Vec<Vec<RowRange>>,
    /// Byte offset of each row-chunk frame, relative to the first byte
    /// after the postings frame (relative so this table's own encoded
    /// size cannot perturb it).
    pub chunk_offsets: Vec<u64>,
}

/// One columnar chunk of log rows. Two encodings share the frame kind:
/// the plain one carries whole [`Log`]s in `logs`; the
/// dictionary-compressed one (compacted tiers) leaves `logs` empty and
/// instead carries `addr_ids` (dense u32 ids into the postings address
/// table — the same id discipline as the postings themselves) plus the
/// address-free `events` column. Readers reconstruct
/// `Log { address: addrs[addr_id], event }` losslessly.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RowChunk {
    /// Row id of the first row in this chunk.
    pub start_row: u32,
    pub blocks: Vec<u64>,
    pub tx_indices: Vec<u32>,
    pub tx_hashes: Vec<TxHash>,
    pub logs: Vec<Log>,
    /// Dictionary encoding (empty on plain chunks).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub addr_ids: Vec<u32>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub events: Vec<mev_types::LogEvent>,
}

/// Committed shape of a segment's sidecar, recorded in `SegmentMeta` and
/// thus in the atomically-committed manifest. Absent (`None`) on
/// archives written before secondary indexes existed — those segments
/// fall back to full scans.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IndexMeta {
    pub file: String,
    /// Committed sidecar bytes; reads never cross this.
    pub bytes: u64,
    pub rows: u64,
    /// Distinct emitting addresses in the segment.
    pub addrs: u64,
    pub chunk_rows: u32,
    /// Row chunks carry dictionary-compressed address/event columns
    /// instead of whole logs (written by compaction). Defaults false so
    /// pre-compaction manifests decode unchanged.
    #[serde(default)]
    pub dict_addrs: bool,
}

fn codec(path: &Path, detail: String) -> StoreError {
    StoreError::Codec {
        path: path.to_path_buf(),
        detail,
    }
}

fn decode_payload<T: serde::de::DeserializeOwned>(
    path: &Path,
    frame: &Frame,
) -> Result<T, StoreError> {
    serde_json::from_slice(&frame.payload)
        .map_err(|e| codec(path, format!("index frame at byte {}: {e}", frame.offset)))
}

fn encode_payload<T: serde::Serialize>(path: &Path, value: &T) -> Result<Vec<u8>, StoreError> {
    serde_json::to_vec(value).map_err(|e| codec(path, format!("encode index: {e}")))
}

/// Extend the trailing range if `row` continues it, else open a new one.
fn push_row(ranges: &mut Vec<RowRange>, row: u32) {
    if let Some((start, len)) = ranges.last_mut() {
        if *start + *len == row {
            *len += 1;
            return;
        }
    }
    ranges.push((row, 1));
}

/// Sort and coalesce ranges from several postings lists into one
/// ascending, non-overlapping run list.
pub fn merge_ranges(mut ranges: Vec<RowRange>) -> Vec<RowRange> {
    ranges.sort_unstable();
    let mut out: Vec<RowRange> = Vec::with_capacity(ranges.len());
    for (start, len) in ranges {
        if let Some((last_start, last_len)) = out.last_mut() {
            let last_end = *last_start + *last_len;
            if start <= last_end {
                let end = (start + len).max(last_end);
                *last_len = end - *last_start;
                continue;
            }
        }
        out.push((start, len));
    }
    out
}

/// Accumulates a segment's postings and rows while the segment is being
/// written; [`IndexBuilder::write`] persists the sidecar.
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    interner: Interner<Address>,
    by_addr_kind: Vec<Vec<(u8, Vec<RowRange>)>>,
    by_kind: Vec<Vec<RowRange>>,
    blocks: Vec<u64>,
    tx_indices: Vec<u32>,
    tx_hashes: Vec<TxHash>,
    logs: Vec<Log>,
}

impl IndexBuilder {
    pub fn new() -> IndexBuilder {
        IndexBuilder {
            interner: Interner::new(),
            by_addr_kind: Vec::new(),
            by_kind: vec![Vec::new(); KIND_SLOTS],
            blocks: Vec::new(),
            tx_indices: Vec::new(),
            tx_hashes: Vec::new(),
            logs: Vec::new(),
        }
    }

    /// Rebuild the index of an already-written run of entries (reopened
    /// tail segments, verification).
    pub fn from_entries(entries: &[BlockEntry]) -> IndexBuilder {
        let mut b = IndexBuilder::new();
        for entry in entries {
            b.add_block(entry);
        }
        b
    }

    /// Total log rows accumulated.
    pub fn rows(&self) -> u64 {
        self.logs.len() as u64
    }

    /// Distinct emitting addresses seen.
    pub fn addrs(&self) -> u64 {
        self.interner.len() as u64
    }

    /// Index one block's logs. Must be fed blocks in the same order they
    /// are appended to the segment — row order is append order.
    pub fn add_block(&mut self, entry: &BlockEntry) {
        let number = entry.block.header.number;
        for r in &entry.receipts {
            for log in &r.logs {
                let row = self.logs.len() as u32;
                let tag = EventKind::of(&log.event).tag();
                let aid = self.interner.intern(log.address).raw() as usize;
                if self.by_addr_kind.len() <= aid {
                    self.by_addr_kind.resize_with(aid + 1, Vec::new);
                }
                if let Some(entries) = self.by_addr_kind.get_mut(aid) {
                    match entries.binary_search_by_key(&tag, |(t, _)| *t) {
                        Ok(pos) => {
                            if let Some((_, ranges)) = entries.get_mut(pos) {
                                push_row(ranges, row);
                            }
                        }
                        Err(pos) => entries.insert(pos, (tag, vec![(row, 1)])),
                    }
                }
                if let Some(ranges) = self.by_kind.get_mut(tag as usize) {
                    push_row(ranges, row);
                }
                self.blocks.push(number);
                self.tx_indices.push(r.index);
                self.tx_hashes.push(r.tx_hash);
                self.logs.push(log.clone());
            }
        }
    }

    /// Encode the complete sidecar byte stream for segment
    /// `segment_index` starting at `first_block` (plain row chunks).
    pub fn encode(
        &self,
        path: &Path,
        segment_index: u64,
        first_block: u64,
    ) -> Result<Vec<u8>, StoreError> {
        self.encode_with(path, segment_index, first_block, false)
    }

    /// [`IndexBuilder::encode`] with an explicit row-chunk encoding:
    /// `dict_addrs` swaps the `logs` column for dictionary-compressed
    /// `addr_ids` + `events` columns (ids into the postings address
    /// table).
    pub fn encode_with(
        &self,
        path: &Path,
        segment_index: u64,
        first_block: u64,
        dict_addrs: bool,
    ) -> Result<Vec<u8>, StoreError> {
        let rows = self.logs.len() as u64;
        let chunk_rows = ROWS_PER_CHUNK;
        // Encode every chunk first so the offset table is exact.
        let mut chunk_payloads = Vec::new();
        let mut chunk_offsets = Vec::new();
        let mut rel = 0u64;
        let mut start = 0usize;
        let mut interner = self.interner.clone();
        while start < self.logs.len() {
            let end = (start + chunk_rows as usize).min(self.logs.len());
            let slice = &self.logs[start..end];
            let (logs, addr_ids, events) = if dict_addrs {
                (
                    Vec::new(),
                    // `intern` on an already-seen key returns its id;
                    // every address here was interned by `add_block`.
                    slice
                        .iter()
                        .map(|l| interner.intern(l.address).raw())
                        .collect(),
                    slice.iter().map(|l| l.event.clone()).collect(),
                )
            } else {
                (slice.to_vec(), Vec::new(), Vec::new())
            };
            let chunk = RowChunk {
                start_row: start as u32,
                blocks: self.blocks[start..end].to_vec(),
                tx_indices: self.tx_indices[start..end].to_vec(),
                tx_hashes: self.tx_hashes[start..end].to_vec(),
                logs,
                addr_ids,
                events,
            };
            let payload = encode_payload(path, &chunk)?;
            chunk_offsets.push(rel);
            rel += crate::frame::FRAME_HEADER_BYTES + payload.len() as u64;
            chunk_payloads.push(payload);
            start = end;
        }
        let postings = PostingsTable {
            addrs: self.interner.keys_in_order().to_vec(),
            by_addr_kind: self.by_addr_kind.clone(),
            by_kind: self.by_kind.clone(),
            chunk_offsets,
        };
        let header = IndexHeader {
            version: FORMAT_VERSION,
            segment: segment_index,
            first_block,
            rows,
            chunk_rows,
        };
        let mut out = Vec::new();
        let header_payload = encode_payload(path, &header)?;
        encode_frame(&mut out, FRAME_INDEX_HEADER, &header_payload);
        let postings_payload = encode_payload(path, &postings)?;
        encode_frame(&mut out, FRAME_POSTINGS, &postings_payload);
        for payload in &chunk_payloads {
            encode_frame(&mut out, FRAME_ROW_CHUNK, payload);
        }
        Ok(out)
    }

    /// Write the sidecar for segment `segment_index` under `root`
    /// (complete temp file + atomic rename, like the manifest) and
    /// return the [`IndexMeta`] to commit.
    pub fn write(
        &self,
        root: &Path,
        segment_index: u64,
        first_block: u64,
    ) -> Result<IndexMeta, StoreError> {
        self.write_named(
            root,
            index_file_name(segment_index),
            segment_index,
            first_block,
        )
    }

    /// [`IndexBuilder::write`] under an explicit sidecar file name
    /// (plain row chunks).
    pub fn write_named(
        &self,
        root: &Path,
        file: String,
        segment_index: u64,
        first_block: u64,
    ) -> Result<IndexMeta, StoreError> {
        self.write_named_with(root, file, segment_index, first_block, false)
    }

    /// [`IndexBuilder::write_named`] with an explicit row-chunk encoding
    /// — compaction passes `dict_addrs = true`.
    pub fn write_named_with(
        &self,
        root: &Path,
        file: String,
        segment_index: u64,
        first_block: u64,
        dict_addrs: bool,
    ) -> Result<IndexMeta, StoreError> {
        let path = root.join(&file);
        let bytes = self.encode_with(&path, segment_index, first_block, dict_addrs)?;
        atomic_write(&path, &bytes)?;
        Ok(IndexMeta {
            file,
            bytes: bytes.len() as u64,
            rows: self.rows(),
            addrs: self.addrs(),
            chunk_rows: ROWS_PER_CHUNK,
            dict_addrs,
        })
    }
}

impl Default for IndexBuilder {
    fn default() -> IndexBuilder {
        IndexBuilder::new()
    }
}

/// An opened, validated sidecar: header and postings loaded, row chunks
/// read on demand through [`RowReader`].
pub struct SegmentIndex {
    pub header: IndexHeader,
    pub postings: PostingsTable,
    path: PathBuf,
    /// Committed sidecar bytes (from the manifest, not the file system).
    committed_bytes: u64,
    /// Absolute byte offset of the first row-chunk frame.
    data_start: u64,
    /// Index pages (frames) read while opening: header + postings.
    pub pages_read: u64,
}

impl SegmentIndex {
    /// Open and validate a segment's sidecar against its committed meta.
    /// Any error here means the caller must fall back to scanning the
    /// segment's data frames; results stay correct either way.
    pub fn open(root: &Path, meta: &SegmentMeta) -> Result<SegmentIndex, StoreError> {
        let im = meta.postings.as_ref().ok_or_else(|| {
            codec(
                root,
                format!("segment {} has no committed index", meta.index),
            )
        })?;
        let path = root.join(&im.file);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::SegmentMissing { path })
            }
            Err(e) => return Err(StoreError::io("open index", &path, e)),
        };
        let actual = file
            .metadata()
            .map_err(|e| StoreError::io("stat index", &path, e))?
            .len();
        if actual < im.bytes {
            return Err(StoreError::SegmentTruncated {
                path,
                committed: im.bytes,
                actual,
            });
        }
        let mut reader = FrameReader::new(BufReader::new(file), &path, im.bytes);
        let header_frame = reader
            .next_frame()?
            .ok_or_else(|| codec(&path, "index has no header frame".to_string()))?;
        if header_frame.kind != FRAME_INDEX_HEADER {
            return Err(codec(
                &path,
                format!(
                    "first frame kind {} is not an index header",
                    header_frame.kind
                ),
            ));
        }
        let header: IndexHeader = decode_payload(&path, &header_frame)?;
        if header.version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: header.version,
                supported: FORMAT_VERSION,
            });
        }
        // The header's recorded segment position may lag the manifest's
        // after compaction renumbers survivors in place; `first_block`
        // alone pins content identity.
        if header.first_block != meta.first_block
            || header.rows != im.rows
            || header.chunk_rows != im.chunk_rows
            || header.chunk_rows == 0
        {
            return Err(codec(
                &path,
                format!(
                    "index header (first_block {}, rows {}, chunk_rows {}) \
                     disagrees with manifest (first_block {}, rows {}, chunk_rows {})",
                    header.first_block,
                    header.rows,
                    header.chunk_rows,
                    meta.first_block,
                    im.rows,
                    im.chunk_rows
                ),
            ));
        }
        let postings_frame = reader
            .next_frame()?
            .ok_or_else(|| codec(&path, "index has no postings frame".to_string()))?;
        if postings_frame.kind != FRAME_POSTINGS {
            return Err(codec(
                &path,
                format!(
                    "second frame kind {} is not a postings table",
                    postings_frame.kind
                ),
            ));
        }
        let postings: PostingsTable = decode_payload(&path, &postings_frame)?;
        let want_chunks = header.rows.div_ceil(header.chunk_rows as u64);
        if postings.addrs.len() != postings.by_addr_kind.len()
            || postings.by_kind.len() != KIND_SLOTS
            || postings.chunk_offsets.len() as u64 != want_chunks
            || postings.chunk_offsets.first().is_some_and(|&o| o != 0)
            || postings.chunk_offsets.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(codec(&path, "postings table is inconsistent".to_string()));
        }
        Ok(SegmentIndex {
            header,
            postings,
            path,
            committed_bytes: im.bytes,
            data_start: reader.offset(),
            pages_read: 2,
        })
    }

    /// The ascending, coalesced row ranges a filter's address/kind
    /// predicate selects. Row order is scan order, so walking these
    /// ranges front to back reproduces a full scan of the matches.
    pub fn rows_for_filter(&self, filter: &LogFilter) -> Vec<RowRange> {
        let mut ranges: Vec<RowRange> = Vec::new();
        if !filter.addresses.is_empty() {
            for addr in &filter.addresses {
                let Some(aid) = self.postings.addrs.iter().position(|a| a == addr) else {
                    continue;
                };
                let Some(entries) = self.postings.by_addr_kind.get(aid) else {
                    continue;
                };
                for (tag, rs) in entries {
                    if filter.kinds.is_empty() || filter.kinds.iter().any(|k| k.tag() == *tag) {
                        ranges.extend_from_slice(rs);
                    }
                }
            }
        } else if !filter.kinds.is_empty() {
            for kind in &filter.kinds {
                if let Some(rs) = self.postings.by_kind.get(kind.tag() as usize) {
                    ranges.extend_from_slice(rs);
                }
            }
        } else if self.header.rows > 0 {
            ranges.push((0, self.header.rows as u32));
        }
        merge_ranges(ranges)
    }

    /// A chunk-caching row accessor over this sidecar.
    pub fn rows(&self) -> RowReader<'_> {
        RowReader {
            index: self,
            file: None,
            current: None,
            pages_read: 0,
        }
    }

    fn read_chunk(&self, file: &mut fs::File, chunk_no: u32) -> Result<RowChunk, StoreError> {
        let rel = *self
            .postings
            .chunk_offsets
            .get(chunk_no as usize)
            .ok_or_else(|| codec(&self.path, format!("chunk {chunk_no} out of range")))?;
        let abs = self.data_start + rel;
        if abs >= self.committed_bytes {
            return Err(codec(
                &self.path,
                format!("chunk {chunk_no} offset {abs} past committed bytes"),
            ));
        }
        file.seek(SeekFrom::Start(abs))
            .map_err(|e| StoreError::io("seek index chunk", &self.path, e))?;
        let mut reader = FrameReader::new(file, &self.path, self.committed_bytes - abs);
        let frame = reader
            .next_frame()?
            .ok_or_else(|| codec(&self.path, format!("chunk {chunk_no} frame missing")))?;
        if frame.kind != FRAME_ROW_CHUNK {
            return Err(codec(
                &self.path,
                format!(
                    "frame kind {} at chunk {chunk_no} is not a row chunk",
                    frame.kind
                ),
            ));
        }
        let chunk: RowChunk = decode_payload(&self.path, &frame)?;
        let rows = chunk.blocks.len();
        // Either the plain `logs` column or the dictionary pair must be
        // row-parallel (and ids must land inside the address table).
        let columns_ok = if chunk.logs.is_empty() && rows > 0 {
            chunk.addr_ids.len() == rows
                && chunk.events.len() == rows
                && chunk
                    .addr_ids
                    .iter()
                    .all(|&id| (id as usize) < self.postings.addrs.len())
        } else {
            chunk.logs.len() == rows && chunk.addr_ids.is_empty() && chunk.events.is_empty()
        };
        if chunk.start_row != chunk_no * self.header.chunk_rows
            || chunk.tx_indices.len() != rows
            || chunk.tx_hashes.len() != rows
            || !columns_ok
            || rows == 0
        {
            return Err(codec(
                &self.path,
                format!("chunk {chunk_no} is inconsistent"),
            ));
        }
        Ok(chunk)
    }
}

/// One log row resolved from a chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct RowData {
    pub block: u64,
    pub tx_index: u32,
    pub tx_hash: TxHash,
    pub log: Log,
}

/// Random access to a sidecar's rows, caching the most recently read
/// chunk. Ascending row access (the planner's access pattern) reads each
/// touched chunk exactly once.
pub struct RowReader<'a> {
    index: &'a SegmentIndex,
    file: Option<fs::File>,
    current: Option<(u32, RowChunk)>,
    /// Chunk frames read so far.
    pub pages_read: u64,
}

impl RowReader<'_> {
    /// Fetch row `row`, reading its chunk frame if not already cached.
    pub fn get(&mut self, row: u32) -> Result<RowData, StoreError> {
        let chunk_no = row / self.index.header.chunk_rows;
        let cached = matches!(self.current, Some((no, _)) if no == chunk_no);
        if !cached {
            if self.file.is_none() {
                let f = fs::File::open(&self.index.path)
                    .map_err(|e| StoreError::io("open index", &self.index.path, e))?;
                self.file = Some(f);
            }
            let Some(file) = self.file.as_mut() else {
                return Err(codec(
                    &self.index.path,
                    "index file unavailable".to_string(),
                ));
            };
            let chunk = self.index.read_chunk(file, chunk_no)?;
            self.pages_read += 1;
            self.current = Some((chunk_no, chunk));
        }
        let Some((_, chunk)) = self.current.as_ref() else {
            return Err(codec(&self.index.path, "chunk cache empty".to_string()));
        };
        let i = (row - chunk.start_row) as usize;
        let log = match chunk.logs.get(i) {
            Some(log) => Some(log.clone()),
            // Dictionary-compressed chunk: rebuild the log from the
            // address table and the event column.
            None => match (chunk.addr_ids.get(i), chunk.events.get(i)) {
                (Some(&aid), Some(event)) => {
                    self.index
                        .postings
                        .addrs
                        .get(aid as usize)
                        .map(|&address| Log {
                            address,
                            event: event.clone(),
                        })
                }
                _ => None,
            },
        };
        match (
            chunk.blocks.get(i),
            chunk.tx_indices.get(i),
            chunk.tx_hashes.get(i),
            log,
        ) {
            (Some(&block), Some(&tx_index), Some(&tx_hash), Some(log)) => Ok(RowData {
                block,
                tx_index,
                tx_hash,
                log,
            }),
            _ => Err(codec(
                &self.index.path,
                format!("row {row} out of chunk bounds"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment_file_name;
    use crate::testutil::{scratch_dir, test_block};
    use mev_types::Address;

    fn entries(n_blocks: u64, txs: u64) -> Vec<BlockEntry> {
        let g = 10_000_000;
        (0..n_blocks)
            .map(|i| {
                let (block, receipts) = test_block(g + i, txs);
                BlockEntry { block, receipts }
            })
            .collect()
    }

    fn meta_with_index(dir: &Path, entries: &[BlockEntry]) -> SegmentMeta {
        let builder = IndexBuilder::from_entries(entries);
        let first = entries[0].block.header.number;
        let im = builder.write(dir, 0, first).unwrap();
        SegmentMeta {
            index: 0,
            file: segment_file_name(0),
            first_block: first,
            last_block: entries.last().unwrap().block.header.number,
            blocks: entries.len() as u64,
            tx_count: 0,
            log_count: im.rows,
            bytes: 0,
            bloom: crate::bloom::LogBloom::new(),
            postings: Some(im),
        }
    }

    #[test]
    fn builder_rows_are_scan_order_and_round_trip() {
        let dir = scratch_dir("postings-roundtrip");
        let es = entries(6, 2);
        let meta = meta_with_index(&dir, &es);
        let idx = SegmentIndex::open(&dir, &meta).unwrap();
        assert_eq!(idx.pages_read, 2);
        // Walk every row and compare against a manual scan.
        let mut expect = Vec::new();
        for e in &es {
            for r in &e.receipts {
                for log in &r.logs {
                    expect.push(RowData {
                        block: e.block.header.number,
                        tx_index: r.index,
                        tx_hash: r.tx_hash,
                        log: log.clone(),
                    });
                }
            }
        }
        assert_eq!(idx.header.rows, expect.len() as u64);
        let mut rows = idx.rows();
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(&rows.get(i as u32).unwrap(), want);
        }
        // 6 blocks × 2 txs ≤ 512 rows → a single chunk, read once.
        assert_eq!(rows.pages_read, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn postings_select_the_scan_matches() {
        let dir = scratch_dir("postings-select");
        let es = entries(8, 2);
        let meta = meta_with_index(&dir, &es);
        let idx = SegmentIndex::open(&dir, &meta).unwrap();
        // test_block: every tx emits a Transfer from A(1); even blocks'
        // first tx also emits a Swap from A(2).
        let swaps = idx.rows_for_filter(&LogFilter::new().address(Address::from_index(2)));
        let total: u32 = swaps.iter().map(|(_, len)| len).sum();
        assert_eq!(total, 4, "4 even blocks emit one swap each");
        let by_kind = idx.rows_for_filter(&LogFilter::new().kind(EventKind::Swap));
        assert_eq!(swaps, by_kind, "A(2) emits exactly the swaps");
        let cross = idx.rows_for_filter(
            &LogFilter::new()
                .address(Address::from_index(2))
                .kind(EventKind::Transfer),
        );
        assert!(cross.is_empty(), "A(2) never emits transfers");
        let all = idx.rows_for_filter(&LogFilter::new());
        assert_eq!(all, vec![(0, idx.header.rows as u32)]);
        // Absent address selects nothing.
        assert!(idx
            .rows_for_filter(&LogFilter::new().address(Address::from_index(999)))
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_chunk_sidecars_seek_per_chunk() {
        let dir = scratch_dir("postings-chunks");
        // 300 blocks × 2 txs ≈ 750 rows → 2 chunks of 512.
        let es = entries(300, 2);
        let meta = meta_with_index(&dir, &es);
        let idx = SegmentIndex::open(&dir, &meta).unwrap();
        assert!(idx.header.rows > ROWS_PER_CHUNK as u64);
        assert_eq!(idx.postings.chunk_offsets.len(), 2);
        let mut rows = idx.rows();
        let first = rows.get(0).unwrap();
        assert_eq!(first.block, 10_000_000);
        let last = rows.get((idx.header.rows - 1) as u32).unwrap();
        assert_eq!(last.block, 10_000_000 + 299);
        assert_eq!(rows.pages_read, 2);
        // Re-reading within the cached chunk costs nothing.
        rows.get((idx.header.rows - 2) as u32).unwrap();
        assert_eq!(rows.pages_read, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_anywhere_is_rejected() {
        let dir = scratch_dir("postings-bitflip");
        let es = entries(4, 2);
        let meta = meta_with_index(&dir, &es);
        let path = dir.join(&meta.postings.as_ref().unwrap().file);
        let clean = fs::read(&path).unwrap();
        // Flip a bit in each structural region: header frame, postings
        // frame, and the last chunk frame.
        for pos in [12usize, clean.len() / 2, clean.len() - 3] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            fs::write(&path, &bytes).unwrap();
            let outcome = SegmentIndex::open(&dir, &meta).and_then(|idx| {
                let ranges = idx.rows_for_filter(&LogFilter::new());
                let mut rows = idx.rows();
                for (start, len) in ranges {
                    for row in start..start + len {
                        rows.get(row)?;
                    }
                }
                Ok(())
            });
            assert!(outcome.is_err(), "bitflip at byte {pos} went undetected");
        }
        fs::write(&path, &clean).unwrap();
        assert!(SegmentIndex::open(&dir, &meta).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_ranges_coalesces_and_sorts() {
        assert_eq!(merge_ranges(vec![]), vec![]);
        assert_eq!(
            merge_ranges(vec![(5, 2), (0, 3), (3, 2)]),
            vec![(0, 7)],
            "adjacent runs coalesce"
        );
        assert_eq!(
            merge_ranges(vec![(10, 5), (0, 2), (12, 1)]),
            vec![(0, 2), (10, 5)],
            "contained runs collapse"
        );
    }

    #[test]
    fn dict_compressed_rows_round_trip_bit_identically() {
        let dir = scratch_dir("postings-dict");
        let es = entries(300, 2);
        let builder = IndexBuilder::from_entries(&es);
        let first = es[0].block.header.number;
        let plain = builder
            .write_named_with(&dir, "plain.idx".to_string(), 0, first, false)
            .unwrap();
        let dict = builder
            .write_named_with(&dir, "dict.idx".to_string(), 0, first, true)
            .unwrap();
        assert!(dict.dict_addrs && !plain.dict_addrs);
        assert!(
            dict.bytes < plain.bytes,
            "dictionary column should shrink the sidecar ({} vs {})",
            dict.bytes,
            plain.bytes
        );
        let mk_meta = |im: &IndexMeta| SegmentMeta {
            index: 0,
            file: segment_file_name(0),
            first_block: first,
            last_block: es.last().unwrap().block.header.number,
            blocks: es.len() as u64,
            tx_count: 0,
            log_count: im.rows,
            bytes: 0,
            bloom: crate::bloom::LogBloom::new(),
            postings: Some(im.clone()),
        };
        let pi = SegmentIndex::open(&dir, &mk_meta(&plain)).unwrap();
        let di = SegmentIndex::open(&dir, &mk_meta(&dict)).unwrap();
        let (mut pr, mut dr) = (pi.rows(), di.rows());
        for row in 0..pi.header.rows as u32 {
            assert_eq!(pr.get(row).unwrap(), dr.get(row).unwrap(), "row {row}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encode_is_deterministic() {
        let es = entries(5, 3);
        let a = IndexBuilder::from_entries(&es);
        let b = IndexBuilder::from_entries(&es);
        let pa = a.encode(Path::new("a"), 0, 10_000_000).unwrap();
        let pb = b.encode(Path::new("b"), 0, 10_000_000).unwrap();
        assert_eq!(pa, pb);
    }
}
