//! # mev-store
//!
//! A persistent, append-only, segmented archive store for
//! blocks/transactions/receipts/logs — the durable substitute for the
//! paper's 18 TB archive node. The in-memory [`ChainStore`] dies with
//! the process and forces every `goal_audit`/`detect_throughput` run to
//! rebuild the world; this crate makes the archive a *dataset*: ingest
//! once, then re-open, re-query, and incrementally re-detect across
//! processes and runs.
//!
//! ## Format (version 1)
//!
//! ```text
//! <root>/
//!   MANIFEST.json          versioned, atomically replaced on commit
//!   seg-00000.seg          fixed-span segments of frames
//!   seg-00000.idx          per-segment sidecar index (postings + rows)
//!   seg-00001.seg
//!   seg-00001.idx
//!   ...
//! ```
//!
//! * **Frames** — `[len u32][kind u8][crc32 u32][payload]`; CRC-32
//!   (IEEE) over kind+payload detects torn and bit-flipped writes
//!   ([`frame`]).
//! * **Segments** — a header frame plus one block entry frame per block;
//!   sealed segments hold exactly `segment_blocks` blocks ([`segment`]).
//! * **Zone maps & blooms** — the manifest carries, per segment, its
//!   block range and tx/log counts plus a 2048-bit bloom filter over
//!   `(address, event-kind)` in the spirit of Ethereum's own log blooms
//!   ([`bloom`]); `get_logs` prunes whole segments with them.
//! * **Sidecar indexes** — per segment, inverted postings
//!   (`address × kind → row ranges`) over interned address ids plus
//!   columnar row chunks, in the same checksummed frame format
//!   ([`postings`]); a selective filter reads index pages only, never
//!   data frames.
//! * **Rollups** — per-kind, per-address, and per-epoch counts and
//!   saturating wei sums committed inside the manifest ([`rollup`]);
//!   whole-archive aggregates are answered without opening a segment.
//! * **Planner** — per query, picks full-scan vs postings vs rollup and
//!   records the choice in [`QueryStats`] and `store.plan.*` counters
//!   ([`planner`]); every strategy is bit-identical to the scan.
//! * **Commit protocol** — write temp + fsync + rename of
//!   `MANIFEST.json` ([`manifest::atomic_write`]); sidecars are
//!   rewritten whole the same way before the manifest rename, and bytes
//!   beyond the manifest's per-segment counts are crash residue,
//!   invisible to readers and truncated on the next append. Archives
//!   written before indexes existed (no `postings`/`rollups` in the
//!   manifest) open fine and are served by scans.
//!
//! ## Layers
//!
//! [`StoreWriter`] ingests a [`ChainStore`] (incrementally: re-ingest
//! appends only new blocks). [`StoreReader`] serves the archive-node
//! query surface (`get_block`/`get_receipts`/`get_logs`/`aggregate`)
//! through the shared [`ArchiveQuery`] trait, with full-store
//! [`StoreReader::verify`] (segments, sidecars, and rollups) and
//! [`StoreReader::load_chain`] rehydration. `mev-core` builds its
//! `BlockIndex` straight from a reader and runs the `Inspector` over
//! segments with per-segment resume checkpoints.
//!
//! Instrumented via `mev-obs`: `store.ingest.*`, `store.scan.*`,
//! `store.plan.*`, `store.postings.*`, `store.segment_cache_hits`, and
//! span timers `store.*.ns`.

pub mod bloom;
pub mod error;
pub mod frame;
pub mod manifest;
pub mod mmap;
pub mod planner;
pub mod postings;
pub mod reader;
pub mod rollup;
pub mod segment;
pub mod testutil;
pub mod writer;

pub use bloom::{kind_of, kind_tag, BloomQuery, LogBloom, BLOOM_BITS};
pub use error::StoreError;
pub use frame::{encode_frame, frame_crc, Crc32, Frame, FrameReader, FrameSlice, SliceFrameReader};
pub use manifest::{atomic_write, Manifest, SegmentMeta, FORMAT_VERSION, MANIFEST_FILE};
pub use mmap::Mmap;
pub use planner::{plan_aggregate, plan_logs, GroupBy};
pub use postings::{index_file_name, sidecar_file_name, IndexBuilder, IndexMeta, SegmentIndex};
pub use reader::{AggregateKey, AggregateRow, StoreReader, VerifyReport};
pub use rollup::{wei_value, RollupBlock, RollupStat};
pub use segment::{
    compacted_file_name, segment_file_name, BlockEntry, SegmentHeader, SegmentWriter,
};
pub use writer::{CompactionStats, IngestStats, StoreWriter};

// Re-exported so store users name the chain query surface without a
// separate import.
pub use mev_chain::{
    ArchiveQuery, ChainStore, Cursor, EventKind, LogEntry, LogFilter, LogPage, QueryPlan,
    QueryStats,
};
