//! The versioned `MANIFEST.json`: the store's single source of truth.
//!
//! Everything durable is committed by atomically replacing the manifest —
//! write to a temp file, `fsync` it, `rename` over `MANIFEST.json`,
//! `fsync` the directory. Segment bytes past what the manifest records
//! are uncommitted crash residue and are ignored (and truncated away on
//! the next append). A reader therefore always observes either the old
//! or the new committed state, never a torn one.

use crate::bloom::LogBloom;
use crate::error::StoreError;
use crate::postings::IndexMeta;
use crate::rollup::RollupBlock;
use mev_types::Timeline;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Manifest file name under the store root.
pub const MANIFEST_FILE: &str = "MANIFEST.json";
/// Magic string embedded in the manifest.
pub const FORMAT_MAGIC: &str = "mev-store";

/// Zone map plus bloom filter for one segment — everything a scan needs
/// to decide whether to read the segment's bytes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SegmentMeta {
    /// Position in the store; also determines the file name.
    pub index: u64,
    /// File name relative to the store root.
    pub file: String,
    /// Zone map: lowest block height in the segment.
    pub first_block: u64,
    /// Zone map: highest block height in the segment.
    pub last_block: u64,
    /// Blocks committed in this segment.
    pub blocks: u64,
    /// Transactions across the committed blocks.
    pub tx_count: u64,
    /// Logs across the committed blocks.
    pub log_count: u64,
    /// Committed byte length of the segment file.
    pub bytes: u64,
    /// Bloom filter over (address, event-kind) of the committed logs.
    pub bloom: LogBloom,
    /// Committed sidecar index (`seg-XXXXX.idx`), when one exists.
    /// Absent on archives written before secondary indexes; such
    /// segments are answered by full scans.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub postings: Option<IndexMeta>,
}

impl SegmentMeta {
    /// Does the zone map overlap the inclusive height window?
    pub fn overlaps(&self, from: u64, to: u64) -> bool {
        self.first_block <= to && self.last_block >= from
    }
}

/// The committed state of a store.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Manifest {
    /// Always [`FORMAT_MAGIC`].
    pub format: String,
    /// On-disk format version; bumped on incompatible layout changes.
    pub version: u32,
    /// Monotone commit counter — each successful commit increments it.
    pub commit_seq: u64,
    /// Target blocks per sealed segment.
    pub segment_blocks: u64,
    /// The block-number ↔ wall-clock mapping of the archived chain.
    pub timeline: Timeline,
    /// Committed segments in height order; the last may be partial.
    pub segments: Vec<SegmentMeta>,
    /// Pre-aggregated per-address / per-kind / per-epoch rollups over
    /// every committed block. Rides the same atomic commit as the
    /// segment list, so it is never out of sync with the data. Absent on
    /// archives written before rollups existed; the writer rebuilds it
    /// on the next open.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rollups: Option<RollupBlock>,
}

impl Manifest {
    pub fn new(timeline: Timeline, segment_blocks: u64) -> Manifest {
        Manifest {
            format: FORMAT_MAGIC.to_string(),
            version: FORMAT_VERSION,
            commit_seq: 0,
            segment_blocks: segment_blocks.max(1),
            timeline,
            segments: Vec::new(),
            rollups: None,
        }
    }

    /// Height of the last committed block, if any.
    pub fn head_block(&self) -> Option<u64> {
        self.segments.last().map(|s| s.last_block)
    }

    /// Total committed blocks.
    pub fn block_count(&self) -> u64 {
        self.segments.iter().map(|s| s.blocks).sum()
    }

    /// Total committed transactions.
    pub fn tx_count(&self) -> u64 {
        self.segments.iter().map(|s| s.tx_count).sum()
    }

    /// Total committed logs.
    pub fn log_count(&self) -> u64 {
        self.segments.iter().map(|s| s.log_count).sum()
    }

    /// Total committed segment bytes.
    pub fn byte_count(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// The segment whose zone map contains `block`, if committed.
    pub fn segment_for(&self, block: u64) -> Option<&SegmentMeta> {
        // Segments are contiguous and sorted; binary search the zone maps.
        let idx = self.segments.partition_point(|s| s.last_block < block);
        self.segments
            .get(idx)
            .filter(|s| s.first_block <= block && block <= s.last_block)
    }

    /// Structural validation: version, magic, contiguity of zone maps,
    /// bloom width.
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.format != FORMAT_MAGIC {
            return Err(StoreError::ManifestInvalid {
                detail: format!("format {:?} is not {FORMAT_MAGIC:?}", self.format),
            });
        }
        if self.version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: self.version,
                supported: FORMAT_VERSION,
            });
        }
        if self.segment_blocks == 0 {
            return Err(StoreError::ManifestInvalid {
                detail: "segment_blocks is zero".to_string(),
            });
        }
        let mut expected = self.timeline.genesis_number;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.index != i as u64 {
                return Err(StoreError::ManifestInvalid {
                    detail: format!("segment {i} carries index {}", seg.index),
                });
            }
            if seg.first_block != expected {
                return Err(StoreError::ManifestInvalid {
                    detail: format!(
                        "segment {i} starts at block {} (expected {expected})",
                        seg.first_block
                    ),
                });
            }
            if seg.last_block < seg.first_block
                || seg.blocks != seg.last_block - seg.first_block + 1
            {
                return Err(StoreError::ManifestInvalid {
                    detail: format!(
                        "segment {i} zone map inconsistent: [{}, {}] with {} blocks",
                        seg.first_block, seg.last_block, seg.blocks
                    ),
                });
            }
            if !seg.bloom.is_well_formed() {
                return Err(StoreError::ManifestInvalid {
                    detail: format!("segment {i} bloom has the wrong width"),
                });
            }
            // Only the final segment may be partial. Compacted tiers are
            // whole multiples of the base span, so interior segments
            // hold a positive multiple of `segment_blocks`.
            if i + 1 < self.segments.len()
                && (seg.blocks == 0 || seg.blocks % self.segment_blocks != 0)
            {
                return Err(StoreError::ManifestInvalid {
                    detail: format!(
                        "interior segment {i} holds {} blocks (sealed segments hold a positive multiple of {})",
                        seg.blocks, self.segment_blocks
                    ),
                });
            }
            if let Some(idx) = &seg.postings {
                if idx.rows != seg.log_count || idx.chunk_rows == 0 || idx.file.is_empty() {
                    return Err(StoreError::ManifestInvalid {
                        detail: format!(
                            "segment {i} index meta inconsistent: {} rows for {} logs",
                            idx.rows, seg.log_count
                        ),
                    });
                }
            }
            expected = seg.last_block + 1;
        }
        if let Some(rollups) = &self.rollups {
            if Some(rollups.head_block) != self.head_block() {
                return Err(StoreError::ManifestInvalid {
                    detail: format!(
                        "rollups cover head {} but the store head is {:?}",
                        rollups.head_block,
                        self.head_block()
                    ),
                });
            }
            if rollups.logs != self.log_count() {
                return Err(StoreError::ManifestInvalid {
                    detail: format!(
                        "rollups fold {} logs but segments commit {}",
                        rollups.logs,
                        self.log_count()
                    ),
                });
            }
            if rollups.per_kind.len() != mev_chain::EventKind::ALL.len() {
                return Err(StoreError::ManifestInvalid {
                    detail: format!("rollups carry {} kind slots", rollups.per_kind.len()),
                });
            }
            if rollups.per_addr.windows(2).any(|w| w[0].addr >= w[1].addr)
                || rollups
                    .per_epoch
                    .windows(2)
                    .any(|w| w[0].month >= w[1].month)
            {
                return Err(StoreError::ManifestInvalid {
                    detail: "rollup tables are not strictly sorted".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Load and validate the manifest under `root`.
    pub fn load(root: &Path) -> Result<Manifest, StoreError> {
        let path = root.join(MANIFEST_FILE);
        let raw = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingManifest {
                    root: root.to_path_buf(),
                })
            }
            Err(e) => return Err(StoreError::io("read manifest", &path, e)),
        };
        let manifest: Manifest =
            serde_json::from_str(&raw).map_err(|e| StoreError::ManifestInvalid {
                detail: e.to_string(),
            })?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// Atomically commit this manifest under `root`, bumping `commit_seq`.
    pub fn commit(&mut self, root: &Path) -> Result<(), StoreError> {
        self.commit_seq += 1;
        let json = serde_json::to_string_pretty(self).map_err(|e| StoreError::ManifestInvalid {
            detail: format!("serialize: {e}"),
        })?;
        atomic_write(&root.join(MANIFEST_FILE), json.as_bytes())
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, `rename`, directory `fsync`. Readers see the old or the new
/// content, never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp: PathBuf = match path.file_name() {
        Some(name) => {
            let mut tmp_name = std::ffi::OsString::from(".");
            tmp_name.push(name);
            tmp_name.push(".tmp");
            dir.join(tmp_name)
        }
        None => {
            return Err(StoreError::ManifestInvalid {
                detail: format!("not a file path: {}", path.display()),
            })
        }
    };
    {
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io("create temp", &tmp, e))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::io("write temp", &tmp, e))?;
        f.sync_all()
            .map_err(|e| StoreError::io("fsync temp", &tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename temp", path, e))?;
    // Persist the rename itself. Directory fsync is advisory on some
    // platforms; failure to open the directory is not a commit failure.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(index: u64, first: u64, last: u64) -> SegmentMeta {
        SegmentMeta {
            index,
            file: format!("seg-{index:05}.seg"),
            first_block: first,
            last_block: last,
            blocks: last - first + 1,
            tx_count: 0,
            log_count: 0,
            bytes: 0,
            bloom: LogBloom::new(),
            postings: None,
        }
    }

    fn manifest_with(segments: Vec<SegmentMeta>) -> Manifest {
        let mut m = Manifest::new(Timeline::paper_span(100), 4);
        m.segments = segments;
        m
    }

    #[test]
    fn validate_accepts_contiguous_segments() {
        let g = 10_000_000;
        let m = manifest_with(vec![
            seg(0, g, g + 3),
            seg(1, g + 4, g + 7),
            seg(2, g + 8, g + 9),
        ]);
        assert!(m.validate().is_ok());
        assert_eq!(m.head_block(), Some(g + 9));
        assert_eq!(m.block_count(), 10);
    }

    #[test]
    fn validate_rejects_gaps_and_bad_indices() {
        let g = 10_000_000;
        let gap = manifest_with(vec![seg(0, g, g + 3), seg(1, g + 5, g + 8)]);
        assert!(matches!(
            gap.validate(),
            Err(StoreError::ManifestInvalid { .. })
        ));
        let idx = manifest_with(vec![seg(3, g, g + 3)]);
        assert!(matches!(
            idx.validate(),
            Err(StoreError::ManifestInvalid { .. })
        ));
        let interior_partial = manifest_with(vec![seg(0, g, g + 1), seg(1, g + 2, g + 5)]);
        assert!(matches!(
            interior_partial.validate(),
            Err(StoreError::ManifestInvalid { .. })
        ));
    }

    #[test]
    fn validate_rejects_foreign_versions() {
        let mut m = manifest_with(vec![]);
        m.version = 99;
        assert!(matches!(
            m.validate(),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
        let mut m2 = manifest_with(vec![]);
        m2.format = "something-else".to_string();
        assert!(matches!(
            m2.validate(),
            Err(StoreError::ManifestInvalid { .. })
        ));
    }

    #[test]
    fn segment_for_uses_zone_maps() {
        let g = 10_000_000;
        let m = manifest_with(vec![seg(0, g, g + 3), seg(1, g + 4, g + 7)]);
        assert_eq!(m.segment_for(g).map(|s| s.index), Some(0));
        assert_eq!(m.segment_for(g + 3).map(|s| s.index), Some(0));
        assert_eq!(m.segment_for(g + 4).map(|s| s.index), Some(1));
        assert_eq!(m.segment_for(g + 7).map(|s| s.index), Some(1));
        assert!(m.segment_for(g + 8).is_none());
        assert!(m.segment_for(g - 1).is_none());
    }

    #[test]
    fn commit_and_load_round_trip() {
        let dir = crate::testutil::scratch_dir("manifest-roundtrip");
        let g = 10_000_000;
        let mut m = manifest_with(vec![seg(0, g, g + 3)]);
        m.commit(&dir).unwrap();
        m.commit(&dir).unwrap();
        let loaded = Manifest::load(&dir).unwrap();
        assert_eq!(loaded.commit_seq, 2);
        assert_eq!(loaded.segments, m.segments);
        assert_eq!(loaded.timeline.genesis_number, m.timeline.genesis_number);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_checks_index_meta_and_rollups() {
        let g = 10_000_000;
        // Index meta whose row count disagrees with the segment's logs.
        let mut bad_idx = manifest_with(vec![seg(0, g, g + 3)]);
        bad_idx.segments[0].postings = Some(IndexMeta {
            file: "seg-00000.idx".to_string(),
            bytes: 100,
            rows: 7,
            addrs: 1,
            chunk_rows: 512,
            dict_addrs: false,
        });
        assert!(matches!(
            bad_idx.validate(),
            Err(StoreError::ManifestInvalid { .. })
        ));
        // Rollups whose head lags the committed head.
        let mut stale = manifest_with(vec![seg(0, g, g + 3)]);
        stale.rollups = Some(RollupBlock {
            head_block: g,
            logs: 0,
            per_kind: vec![Default::default(); 9],
            per_addr: vec![],
            per_epoch: vec![],
        });
        assert!(matches!(
            stale.validate(),
            Err(StoreError::ManifestInvalid { .. })
        ));
        // In-sync rollups pass.
        let mut ok = manifest_with(vec![seg(0, g, g + 3)]);
        ok.rollups = Some(RollupBlock {
            head_block: g + 3,
            logs: 0,
            per_kind: vec![Default::default(); 9],
            per_addr: vec![],
            per_epoch: vec![],
        });
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn pre_index_manifests_still_load() {
        // A manifest serialized before postings/rollups existed has
        // neither field; both must deserialize as absent.
        let dir = crate::testutil::scratch_dir("manifest-legacy");
        let g = 10_000_000;
        let m = manifest_with(vec![seg(0, g, g + 3)]);
        let mut json = serde_json::to_value(&m).unwrap();
        let obj = json.as_object_mut().unwrap();
        obj.remove("rollups");
        for s in obj["segments"].as_array_mut().unwrap() {
            s.as_object_mut().unwrap().remove("postings");
        }
        std::fs::write(
            dir.join(MANIFEST_FILE),
            serde_json::to_string(&json).unwrap(),
        )
        .unwrap();
        let loaded = Manifest::load(&dir).unwrap();
        assert!(loaded.rollups.is_none());
        assert!(loaded.segments[0].postings.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_and_garbage_manifests() {
        let dir = crate::testutil::scratch_dir("manifest-garbage");
        assert!(matches!(
            Manifest::load(&dir),
            Err(StoreError::MissingManifest { .. })
        ));
        std::fs::write(dir.join(MANIFEST_FILE), b"{ not json").unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(StoreError::ManifestInvalid { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
