//! Segment files: an append-only run of frames holding a fixed span of
//! blocks.
//!
//! Layout: one `SegmentHeader` frame, then one `BlockEntry` frame per
//! block in height order. Sealed segments hold exactly
//! `Manifest::segment_blocks` blocks; the tail segment grows in place
//! until it seals. The manifest's per-segment `bytes` field bounds what a
//! reader may consume, so uncommitted tail bytes after a crash are
//! invisible (and truncated before the next append).
//!
//! Alongside each segment the writer maintains a sidecar index file
//! (`seg-NNNNN.idx`, see [`crate::postings`]) built from the same
//! appended entries. The sidecar is rewritten whole (atomic rename) at
//! every commit, and the [`crate::postings::IndexMeta`] describing it
//! rides the manifest — so a crash can never commit a segment without
//! its matching index.

use crate::bloom::LogBloom;
use crate::error::StoreError;
use crate::frame::{encode_frame, FrameSlice, SliceFrameReader};
use crate::manifest::{SegmentMeta, FORMAT_VERSION};
use crate::mmap::Mmap;
use crate::postings::{IndexBuilder, IndexMeta};
use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame kind of the per-segment header.
pub const FRAME_SEGMENT_HEADER: u8 = 1;
/// Frame kind of a block entry.
pub const FRAME_BLOCK_ENTRY: u8 = 2;

/// File name of segment `index` under the store root.
pub fn segment_file_name(index: u64) -> String {
    format!("seg-{index:05}.seg")
}

/// File name of a compacted tier written at commit sequence `seq`,
/// landing at position `pos`. The `seg-c` prefix is disjoint from the
/// `seg-NNNNN` namespace, and seeding by the (monotone) commit sequence
/// keeps names fresh across crashed compactions.
pub fn compacted_file_name(seq: u64, pos: u64) -> String {
    format!("seg-c{seq}-{pos:05}.seg")
}

/// First frame of every segment file.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SegmentHeader {
    pub version: u32,
    pub index: u64,
    pub first_block: u64,
}

/// One archived block: the block body plus its receipts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockEntry {
    pub block: mev_types::Block,
    pub receipts: Vec<mev_types::Receipt>,
}

fn decode_payload<T: serde::de::DeserializeOwned>(
    path: &Path,
    frame: &FrameSlice<'_>,
) -> Result<T, StoreError> {
    serde_json::from_slice(frame.payload).map_err(|e| StoreError::Codec {
        path: path.to_path_buf(),
        detail: format!("frame at byte {}: {e}", frame.offset),
    })
}

fn encode_payload<T: serde::Serialize>(path: &Path, value: &T) -> Result<Vec<u8>, StoreError> {
    serde_json::to_vec(value).map_err(|e| StoreError::Codec {
        path: path.to_path_buf(),
        detail: format!("encode: {e}"),
    })
}

/// Open (appending) writer over one segment file, accumulating the zone
/// map and bloom that will become its [`SegmentMeta`].
pub struct SegmentWriter {
    path: PathBuf,
    /// On-disk file name; fixed at creation and never changed by a
    /// [`SegmentWriter::renumber`] (compaction shifts positions, not
    /// files).
    file_name: String,
    file: fs::File,
    index: u64,
    first_block: u64,
    last_block: Option<u64>,
    blocks: u64,
    tx_count: u64,
    log_count: u64,
    bytes: u64,
    bloom: LogBloom,
    index_builder: IndexBuilder,
    /// Sidecar shape as of the last [`SegmentWriter::write_index`] (or
    /// the committed state, after a reopen).
    index_meta: Option<IndexMeta>,
}

impl SegmentWriter {
    /// Start a fresh segment file (truncating any crash residue with the
    /// same name) and write its header frame.
    pub fn create(root: &Path, index: u64, first_block: u64) -> Result<SegmentWriter, StoreError> {
        SegmentWriter::create_named(root, segment_file_name(index), index, first_block)
    }

    /// [`SegmentWriter::create`] under an explicit file name — compaction
    /// writes merged tiers into the `seg-c…` namespace so a crash can
    /// never clobber a live segment file.
    pub fn create_named(
        root: &Path,
        file_name: String,
        index: u64,
        first_block: u64,
    ) -> Result<SegmentWriter, StoreError> {
        let path = root.join(&file_name);
        let file =
            fs::File::create(&path).map_err(|e| StoreError::io("create segment", &path, e))?;
        let mut w = SegmentWriter {
            path,
            file_name,
            file,
            index,
            first_block,
            last_block: None,
            blocks: 0,
            tx_count: 0,
            log_count: 0,
            bytes: 0,
            bloom: LogBloom::new(),
            index_builder: IndexBuilder::new(),
            index_meta: None,
        };
        let header = SegmentHeader {
            version: FORMAT_VERSION,
            index,
            first_block,
        };
        let payload = encode_payload(&w.path, &header)?;
        w.write_frame(FRAME_SEGMENT_HEADER, &payload)?;
        Ok(w)
    }

    /// Re-open a committed partial segment for further appends. The file
    /// is truncated to the committed length first, discarding any
    /// uncommitted tail bytes from a crashed writer. The sidecar index
    /// builder is rebuilt from the committed entries, so a stale or torn
    /// `.idx` left by a crash is simply rewritten at the next commit.
    pub fn reopen(root: &Path, meta: &SegmentMeta) -> Result<SegmentWriter, StoreError> {
        let entries = read_segment(root, meta)?;
        let index_builder = IndexBuilder::from_entries(&entries);
        drop(entries);
        let path = root.join(&meta.file);
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| StoreError::io("open segment", &path, e))?;
        file.set_len(meta.bytes)
            .map_err(|e| StoreError::io("truncate segment", &path, e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek segment", &path, e))?;
        Ok(SegmentWriter {
            path,
            file_name: meta.file.clone(),
            file,
            index: meta.index,
            first_block: meta.first_block,
            last_block: Some(meta.last_block),
            blocks: meta.blocks,
            tx_count: meta.tx_count,
            log_count: meta.log_count,
            bytes: meta.bytes,
            bloom: meta.bloom.clone(),
            index_builder,
            index_meta: meta.postings.clone(),
        })
    }

    fn write_frame(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(payload.len() + 16);
        let n = encode_frame(&mut buf, kind, payload);
        self.file
            .write_all(&buf)
            .map_err(|e| StoreError::io("append frame", &self.path, e))?;
        self.bytes += n;
        Ok(())
    }

    /// Append one block entry, updating zone map, counts, and bloom.
    pub fn append(&mut self, entry: &BlockEntry) -> Result<(), StoreError> {
        let number = entry.block.header.number;
        if entry.block.transactions.len() != entry.receipts.len() {
            return Err(StoreError::ReceiptCountMismatch {
                block: number,
                txs: entry.block.transactions.len(),
                receipts: entry.receipts.len(),
            });
        }
        let payload = encode_payload(&self.path, entry)?;
        self.write_frame(FRAME_BLOCK_ENTRY, &payload)?;
        self.last_block = Some(number);
        self.blocks += 1;
        self.tx_count += entry.block.transactions.len() as u64;
        for r in &entry.receipts {
            self.log_count += r.logs.len() as u64;
            for log in &r.logs {
                self.bloom.insert_log(log);
            }
        }
        self.index_builder.add_block(entry);
        Ok(())
    }

    /// Rewrite the segment's sidecar index to cover every appended block
    /// (whole-file atomic rename) and remember its [`IndexMeta`] for the
    /// next [`SegmentWriter::meta`]. No-op on an empty segment.
    pub fn write_index(&mut self, root: &Path) -> Result<(), StoreError> {
        self.write_index_with(root, false)
    }

    /// [`SegmentWriter::write_index`] with an explicit row-chunk
    /// encoding — compaction writes dictionary-compressed sidecars.
    pub fn write_index_with(&mut self, root: &Path, dict_addrs: bool) -> Result<(), StoreError> {
        if self.last_block.is_none() {
            return Ok(());
        }
        let meta = self.index_builder.write_named_with(
            root,
            crate::postings::sidecar_file_name(&self.file_name),
            self.index,
            self.first_block,
            dict_addrs,
        )?;
        self.index_meta = Some(meta);
        Ok(())
    }

    /// Flush buffered bytes to durable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("fsync segment", &self.path, e))
    }

    /// Blocks appended so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    pub fn index(&self) -> u64 {
        self.index
    }

    /// Reassign this writer's manifest position after compaction shifted
    /// earlier segments. The on-disk file (and its header frame) keep
    /// their original name/number — readers identify content by
    /// `first_block`, not position.
    pub fn renumber(&mut self, index: u64) {
        self.index = index;
    }

    /// The zone map + bloom as of the last append. `None` until the
    /// first block lands — empty segments are never committed.
    pub fn meta(&self) -> Option<SegmentMeta> {
        let last_block = self.last_block?;
        Some(SegmentMeta {
            index: self.index,
            file: self.file_name.clone(),
            first_block: self.first_block,
            last_block,
            blocks: self.blocks,
            tx_count: self.tx_count,
            log_count: self.log_count,
            bytes: self.bytes,
            bloom: self.bloom.clone(),
            postings: self.index_meta.clone(),
        })
    }
}

/// Fully decode a committed segment: header check plus every block
/// entry, bounded by the manifest's committed byte count. Returns the
/// entries in height order.
///
/// The committed byte image is memory-mapped (buffered fallback when the
/// platform refuses) and frames are CRC-verified over borrowed slices —
/// the decode never copies a payload.
pub fn read_segment(root: &Path, meta: &SegmentMeta) -> Result<Vec<BlockEntry>, StoreError> {
    let path = root.join(&meta.file);
    let file = match fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::SegmentMissing { path })
        }
        Err(e) => return Err(StoreError::io("open segment", &path, e)),
    };
    let actual = file
        .metadata()
        .map_err(|e| StoreError::io("stat segment", &path, e))?
        .len();
    if actual < meta.bytes {
        return Err(StoreError::SegmentTruncated {
            path,
            committed: meta.bytes,
            actual,
        });
    }
    let map = Mmap::map(&file, meta.bytes, &path)?;
    drop(file);
    let mut reader = SliceFrameReader::new(map.as_slice(), &path, meta.bytes);
    let header_frame = match reader.next_frame()? {
        Some(f) => f,
        None => {
            return Err(StoreError::Codec {
                path,
                detail: "segment has no header frame".to_string(),
            })
        }
    };
    if header_frame.kind != FRAME_SEGMENT_HEADER {
        return Err(StoreError::Codec {
            path,
            detail: format!(
                "first frame kind {} is not a segment header",
                header_frame.kind
            ),
        });
    }
    let header: SegmentHeader = decode_payload(&path, &header_frame)?;
    // Compaction renumbers surviving segments in place without rewriting
    // them, so the header's recorded position may lag the manifest's —
    // content identity is pinned by `first_block` alone.
    if header.first_block != meta.first_block {
        return Err(StoreError::ZoneMapMismatch {
            path,
            detail: format!(
                "header says first block {}, manifest says {}",
                header.first_block, meta.first_block
            ),
        });
    }
    let mut entries: Vec<BlockEntry> = Vec::with_capacity(meta.blocks as usize);
    let mut expected = meta.first_block;
    while let Some(frame) = reader.next_frame()? {
        if frame.kind != FRAME_BLOCK_ENTRY {
            return Err(StoreError::Codec {
                path,
                detail: format!(
                    "unexpected frame kind {} at byte {}",
                    frame.kind, frame.offset
                ),
            });
        }
        let entry: BlockEntry = decode_payload(&path, &frame)?;
        let number = entry.block.header.number;
        if number != expected {
            return Err(StoreError::ZoneMapMismatch {
                path,
                detail: format!("expected block {expected}, found {number}"),
            });
        }
        expected = number + 1;
        entries.push(entry);
    }
    if entries.len() as u64 != meta.blocks {
        return Err(StoreError::ZoneMapMismatch {
            path,
            detail: format!(
                "manifest commits {} blocks, segment holds {}",
                meta.blocks,
                entries.len()
            ),
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{scratch_dir, test_block};

    #[test]
    fn write_seal_read_round_trip() {
        let dir = scratch_dir("segment-roundtrip");
        let g = 10_000_000;
        let mut w = SegmentWriter::create(&dir, 0, g).unwrap();
        for i in 0..4u64 {
            let (block, receipts) = test_block(g + i, 2);
            w.append(&BlockEntry { block, receipts }).unwrap();
        }
        w.sync().unwrap();
        let meta = w.meta().unwrap();
        assert_eq!(meta.blocks, 4);
        assert_eq!(meta.first_block, g);
        assert_eq!(meta.last_block, g + 3);
        assert_eq!(meta.tx_count, 8);
        let entries = read_segment(&dir, &meta).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[3].block.header.number, g + 3);
        assert_eq!(entries[0].receipts.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_index_commits_sidecar_and_reopen_rebuilds_it() {
        let dir = scratch_dir("segment-sidecar");
        let g = 10_000_000;
        let mut w = SegmentWriter::create(&dir, 0, g).unwrap();
        for i in 0..3u64 {
            let (block, receipts) = test_block(g + i, 2);
            w.append(&BlockEntry { block, receipts }).unwrap();
        }
        w.write_index(&dir).unwrap();
        let meta = w.meta().unwrap();
        let im = meta.postings.clone().unwrap();
        // 2 transfers per block + swaps on the 2 even blocks.
        assert_eq!(im.rows, meta.log_count);
        assert_eq!(im.rows, 8);
        assert_eq!(im.addrs, 2);
        let sidecar = fs::read(dir.join(&im.file)).unwrap();
        assert_eq!(sidecar.len() as u64, im.bytes);
        drop(w);
        // A reopened writer re-derives the same index from the committed
        // entries: appending one more block and rewriting must equal a
        // one-shot build over all four.
        let mut w2 = SegmentWriter::reopen(&dir, &meta).unwrap();
        let (block, receipts) = test_block(g + 3, 2);
        w2.append(&BlockEntry { block, receipts }).unwrap();
        w2.write_index(&dir).unwrap();
        let reopened = fs::read(dir.join(&im.file)).unwrap();
        let entries = read_segment(&dir, &w2.meta().unwrap()).unwrap();
        let oneshot = crate::postings::IndexBuilder::from_entries(&entries)
            .encode(&dir.join(&im.file), 0, g)
            .unwrap();
        assert_eq!(reopened, oneshot);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_partial_segment() {
        let dir = scratch_dir("segment-reopen");
        let g = 10_000_000;
        let mut w = SegmentWriter::create(&dir, 0, g).unwrap();
        let (block, receipts) = test_block(g, 1);
        w.append(&BlockEntry { block, receipts }).unwrap();
        w.sync().unwrap();
        let committed = w.meta().unwrap();
        drop(w);
        // Crash residue after the committed bytes must be discarded.
        {
            use std::io::Write as _;
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join(&committed.file))
                .unwrap();
            f.write_all(b"torn half-frame garbage").unwrap();
        }
        let mut w2 = SegmentWriter::reopen(&dir, &committed).unwrap();
        let (block, receipts) = test_block(g + 1, 1);
        w2.append(&BlockEntry { block, receipts }).unwrap();
        w2.sync().unwrap();
        let meta = w2.meta().unwrap();
        assert_eq!(meta.blocks, 2);
        let entries = read_segment(&dir, &meta).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].block.header.number, g + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_detected_on_read() {
        let dir = scratch_dir("segment-truncated");
        let g = 10_000_000;
        let mut w = SegmentWriter::create(&dir, 0, g).unwrap();
        let (block, receipts) = test_block(g, 3);
        w.append(&BlockEntry { block, receipts }).unwrap();
        w.sync().unwrap();
        let meta = w.meta().unwrap();
        drop(w);
        let path = dir.join(&meta.file);
        let len = fs::metadata(&path).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        assert!(matches!(
            read_segment(&dir, &meta),
            Err(StoreError::SegmentTruncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_is_detected_on_read() {
        let dir = scratch_dir("segment-bitflip");
        let g = 10_000_000;
        let mut w = SegmentWriter::create(&dir, 0, g).unwrap();
        let (block, receipts) = test_block(g, 3);
        w.append(&BlockEntry { block, receipts }).unwrap();
        w.sync().unwrap();
        let meta = w.meta().unwrap();
        drop(w);
        let path = dir.join(&meta.file);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment(&dir, &meta),
            Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Codec { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_segment_file_is_reported() {
        let dir = scratch_dir("segment-missing");
        let meta = SegmentMeta {
            index: 0,
            file: segment_file_name(0),
            first_block: 10_000_000,
            last_block: 10_000_000,
            blocks: 1,
            tx_count: 0,
            log_count: 0,
            bytes: 64,
            bloom: LogBloom::new(),
            postings: None,
        };
        assert!(matches!(
            read_segment(&dir, &meta),
            Err(StoreError::SegmentMissing { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
