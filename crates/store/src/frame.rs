//! Length-prefixed, checksummed frames — the unit of on-disk storage.
//!
//! A frame is `[len: u32 LE][kind: u8][crc32: u32 LE][payload: len bytes]`
//! where the CRC-32 (IEEE polynomial, the same one Ethereum tooling and
//! gzip use) covers the kind byte followed by the payload. The header is
//! written before the payload so a writer can stream; the checksum in the
//! header means a reader detects torn or bit-flipped frames before it
//! attempts to decode them.
//!
//! Readers operate under a *committed byte limit* taken from the
//! manifest: bytes past the limit are an uncommitted crash residue and
//! are never read; a frame that crosses the limit, or a file that ends
//! mid-frame, is a [`StoreError::TruncatedFrame`].

use crate::error::StoreError;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Bytes of `[len][kind][crc32]` before each payload.
pub const FRAME_HEADER_BYTES: u64 = 9;

/// Largest payload a frame may declare. Segments hold a handful of
/// blocks; anything past this is a corrupt length field, not data.
pub const MAX_FRAME_PAYLOAD: u32 = 256 * 1024 * 1024;

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 over a kind byte plus payload.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a kind byte and payload — the frame checksum.
pub fn frame_crc(kind: u8, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&[kind]);
    c.update(payload);
    c.finish()
}

/// Serialize a frame into `out`. Returns the frame's total encoded size.
pub fn encode_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) -> u64 {
    let len = payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&frame_crc(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    FRAME_HEADER_BYTES + payload.len() as u64
}

/// A decoded frame with its position in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: u8,
    pub payload: Vec<u8>,
    /// Byte offset of the frame header within the file.
    pub offset: u64,
}

/// Streaming frame reader over any `Read`, bounded by the committed byte
/// count recorded in the manifest.
pub struct FrameReader<R: Read> {
    inner: R,
    path: PathBuf,
    offset: u64,
    /// Committed bytes; reading stops exactly here.
    limit: u64,
}

impl<R: Read> FrameReader<R> {
    /// `limit` is the committed length of the stream: the reader yields
    /// frames until `limit` and treats anything that crosses it as
    /// truncation.
    pub fn new(inner: R, path: &Path, limit: u64) -> FrameReader<R> {
        FrameReader {
            inner,
            path: path.to_path_buf(),
            offset: 0,
            limit,
        }
    }

    /// Bytes consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn truncated(&self) -> StoreError {
        StoreError::TruncatedFrame {
            path: self.path.clone(),
            offset: self.offset,
        }
    }

    fn fill(&mut self, buf: &mut [u8]) -> Result<(), StoreError> {
        let mut read = 0;
        while read < buf.len() {
            match self.inner.read(&mut buf[read..]) {
                Ok(0) => return Err(self.truncated()),
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StoreError::io("read frame", &self.path, e)),
            }
        }
        Ok(())
    }

    /// Read the next frame, or `None` at the committed limit.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, StoreError> {
        if self.offset == self.limit {
            return Ok(None);
        }
        if self.offset + FRAME_HEADER_BYTES > self.limit {
            return Err(self.truncated());
        }
        let mut header = [0u8; FRAME_HEADER_BYTES as usize];
        self.fill(&mut header)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let kind = header[4];
        let want_crc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
        if len > MAX_FRAME_PAYLOAD {
            return Err(StoreError::Codec {
                path: self.path.clone(),
                detail: format!(
                    "frame at byte {} declares implausible length {len}",
                    self.offset
                ),
            });
        }
        if self.offset + FRAME_HEADER_BYTES + len as u64 > self.limit {
            return Err(self.truncated());
        }
        let mut payload = vec![0u8; len as usize];
        self.fill(&mut payload)?;
        if frame_crc(kind, &payload) != want_crc {
            return Err(StoreError::ChecksumMismatch {
                path: self.path.clone(),
                offset: self.offset,
            });
        }
        let frame = Frame {
            kind,
            payload,
            offset: self.offset,
        };
        self.offset += FRAME_HEADER_BYTES + len as u64;
        Ok(Some(frame))
    }
}

/// A frame whose payload borrows the underlying byte image (an mmap'd
/// segment) instead of owning a copy — the zero-copy twin of [`Frame`].
/// The CRC has already been verified over the borrowed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSlice<'a> {
    pub kind: u8,
    pub payload: &'a [u8],
    /// Byte offset of the frame header within the file image.
    pub offset: u64,
}

/// Frame reader over an in-memory byte image (an [`crate::mmap::Mmap`]
/// or any `&[u8]`), bounded by the committed byte count exactly like
/// [`FrameReader`] — same `None`-at-limit rule and the same
/// [`StoreError`] variants for every corruption shape, so the two paths
/// are interchangeable. Payloads are borrowed, never copied.
pub struct SliceFrameReader<'a> {
    bytes: &'a [u8],
    path: PathBuf,
    offset: u64,
    /// Committed bytes; reading stops exactly here.
    limit: u64,
}

impl<'a> SliceFrameReader<'a> {
    /// `limit` is the committed length of the stream; it must not exceed
    /// `bytes.len()` (callers stat the file against the manifest first —
    /// a shorter image surfaces as [`StoreError::TruncatedFrame`], never
    /// an out-of-bounds read).
    pub fn new(bytes: &'a [u8], path: &Path, limit: u64) -> SliceFrameReader<'a> {
        SliceFrameReader {
            bytes,
            path: path.to_path_buf(),
            offset: 0,
            limit: limit.min(bytes.len() as u64),
        }
    }

    /// Bytes consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn truncated(&self) -> StoreError {
        StoreError::TruncatedFrame {
            path: self.path.clone(),
            offset: self.offset,
        }
    }

    /// Read the next frame, or `None` at the committed limit.
    pub fn next_frame(&mut self) -> Result<Option<FrameSlice<'a>>, StoreError> {
        if self.offset == self.limit {
            return Ok(None);
        }
        if self.offset + FRAME_HEADER_BYTES > self.limit {
            return Err(self.truncated());
        }
        let at = self.offset as usize;
        let header = match self.bytes.get(at..at + FRAME_HEADER_BYTES as usize) {
            Some(h) => h,
            None => return Err(self.truncated()),
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let kind = header[4];
        let want_crc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
        if len > MAX_FRAME_PAYLOAD {
            return Err(StoreError::Codec {
                path: self.path.clone(),
                detail: format!(
                    "frame at byte {} declares implausible length {len}",
                    self.offset
                ),
            });
        }
        if self.offset + FRAME_HEADER_BYTES + len as u64 > self.limit {
            return Err(self.truncated());
        }
        let start = at + FRAME_HEADER_BYTES as usize;
        let payload = match self.bytes.get(start..start + len as usize) {
            Some(p) => p,
            None => return Err(self.truncated()),
        };
        if frame_crc(kind, payload) != want_crc {
            return Err(StoreError::ChecksumMismatch {
                path: self.path.clone(),
                offset: self.offset,
            });
        }
        let frame = FrameSlice {
            kind,
            payload,
            offset: self.offset,
        };
        self.offset += FRAME_HEADER_BYTES + len as u64;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(bytes: &[u8]) -> Result<Vec<Frame>, StoreError> {
        let mut r = FrameReader::new(bytes, Path::new("test.seg"), bytes.len() as u64);
        let mut out = Vec::new();
        while let Some(f) = r.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 — the standard check value.
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_multiple_frames() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, b"hello");
        encode_frame(&mut buf, 2, b"");
        encode_frame(&mut buf, 2, &[0xAB; 1000]);
        let frames = read_all(&buf).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].kind, 1);
        assert_eq!(frames[0].payload, b"hello");
        assert_eq!(frames[1].payload, b"");
        assert_eq!(frames[2].payload, vec![0xAB; 1000]);
        assert_eq!(frames[1].offset, FRAME_HEADER_BYTES + 5);
    }

    #[test]
    fn corrupted_payload_is_checksum_error() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, b"payload-bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        match read_all(&buf) {
            Err(StoreError::ChecksumMismatch { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_tail_is_detected() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, b"first");
        encode_frame(&mut buf, 1, b"second");
        // Cut mid-way through the second frame's payload.
        buf.truncate(buf.len() - 3);
        match read_all(&buf) {
            Err(StoreError::TruncatedFrame { .. }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
        // Cut mid-way through the second frame's header.
        let mut buf2 = Vec::new();
        encode_frame(&mut buf2, 1, b"first");
        let first_len = buf2.len();
        encode_frame(&mut buf2, 1, b"second");
        buf2.truncate(first_len + 4);
        match read_all(&buf2) {
            Err(StoreError::TruncatedFrame { .. }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn implausible_length_is_codec_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&0u32.to_le_bytes());
        // Pad so the header itself is readable under a large limit.
        buf.extend_from_slice(&[0u8; 32]);
        let mut r = FrameReader::new(&buf[..], Path::new("t"), u32::MAX as u64 + 64);
        match r.next_frame() {
            Err(StoreError::Codec { .. }) => {}
            other => panic!("expected codec error, got {other:?}"),
        }
    }

    #[test]
    fn limit_hides_uncommitted_tail() {
        let mut buf = Vec::new();
        let committed = encode_frame(&mut buf, 1, b"committed");
        encode_frame(&mut buf, 1, b"uncommitted garbage");
        let mut r = FrameReader::new(&buf[..], Path::new("t"), committed);
        assert_eq!(r.next_frame().unwrap().unwrap().payload, b"committed");
        assert!(r.next_frame().unwrap().is_none());
    }

    /// Drain a `SliceFrameReader`, returning owned frames for comparison.
    fn slice_read_all(bytes: &[u8], limit: u64) -> Result<Vec<Frame>, StoreError> {
        let mut r = SliceFrameReader::new(bytes, Path::new("test.seg"), limit);
        let mut out = Vec::new();
        while let Some(f) = r.next_frame()? {
            out.push(Frame {
                kind: f.kind,
                payload: f.payload.to_vec(),
                offset: f.offset,
            });
        }
        Ok(out)
    }

    #[test]
    fn slice_reader_matches_stream_reader_on_clean_input() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, b"hello");
        encode_frame(&mut buf, 2, b"");
        let committed = buf.len() as u64;
        encode_frame(&mut buf, 1, b"uncommitted garbage");
        let streamed = {
            let mut r = FrameReader::new(&buf[..], Path::new("test.seg"), committed);
            let mut out = Vec::new();
            while let Some(f) = r.next_frame().unwrap() {
                out.push(f);
            }
            out
        };
        let sliced = slice_read_all(&buf, committed).unwrap();
        assert_eq!(streamed, sliced);
    }

    #[test]
    fn slice_reader_errors_match_stream_reader_errors() {
        // Bit-flipped payload → ChecksumMismatch at the same offset.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, b"payload-bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        match slice_read_all(&buf, buf.len() as u64) {
            Err(StoreError::ChecksumMismatch { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // Cut mid-payload and mid-header → TruncatedFrame, as the stream
        // reader reports, whether the limit or the slice itself is short.
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, b"first");
        let first_len = buf.len() as u64;
        encode_frame(&mut buf, 1, b"second");
        for cut in [buf.len() - 3, first_len as usize + 4] {
            match slice_read_all(&buf[..cut], cut as u64) {
                Err(StoreError::TruncatedFrame { .. }) => {}
                other => panic!("expected truncation at cut {cut}, got {other:?}"),
            }
            match slice_read_all(&buf, cut as u64) {
                Err(StoreError::TruncatedFrame { .. }) => {}
                other => panic!("expected truncation at limit {cut}, got {other:?}"),
            }
        }
        // Implausible declared length → Codec error.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        let mut r = SliceFrameReader::new(&buf, Path::new("t"), u32::MAX as u64 + 64);
        match r.next_frame() {
            Err(StoreError::Codec { .. }) => {}
            other => panic!("expected codec error, got {other:?}"),
        }
    }
}
