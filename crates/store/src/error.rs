//! Store errors. Every corruption path — bad checksum, truncated frame,
//! zone-map drift, manifest damage — surfaces as a variant here; the
//! crate never panics on malformed input (enforced by the `mev-lint` R4
//! panic-hygiene gate).

use std::path::PathBuf;

/// Anything that can go wrong opening, reading, or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        op: &'static str,
        path: PathBuf,
        source: std::io::Error,
    },
    /// The root directory has no `MANIFEST.json`.
    MissingManifest { root: PathBuf },
    /// The manifest exists but is not a valid store manifest.
    ManifestInvalid { detail: String },
    /// The manifest was written by an unsupported format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// A store already exists where `create` was asked to start fresh.
    AlreadyExists { root: PathBuf },
    /// A frame header or payload extends past the committed bytes — a
    /// torn write or a truncated file.
    TruncatedFrame { path: PathBuf, offset: u64 },
    /// A frame's checksum does not match its payload.
    ChecksumMismatch { path: PathBuf, offset: u64 },
    /// A frame payload failed to decode, or declared an implausible
    /// length.
    Codec { path: PathBuf, detail: String },
    /// A segment file named by the manifest is missing.
    SegmentMissing { path: PathBuf },
    /// A segment file is shorter than the bytes the manifest committed.
    SegmentTruncated {
        path: PathBuf,
        committed: u64,
        actual: u64,
    },
    /// A segment's decoded content disagrees with its manifest zone map
    /// (block range, counts, or bloom).
    ZoneMapMismatch { path: PathBuf, detail: String },
    /// An appended block does not extend the store head by exactly one.
    NonContiguous { expected: u64, got: u64 },
    /// A block and its receipt list disagree on transaction count.
    ReceiptCountMismatch {
        block: u64,
        txs: usize,
        receipts: usize,
    },
    /// Re-ingest from a chain whose timeline differs from the store's.
    TimelineMismatch { detail: String },
}

impl StoreError {
    /// Wrap an I/O error with the operation and path it came from.
    pub fn io(op: &'static str, path: &std::path::Path, source: std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            StoreError::MissingManifest { root } => {
                write!(f, "no MANIFEST.json under {}", root.display())
            }
            StoreError::ManifestInvalid { detail } => write!(f, "invalid manifest: {detail}"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "store format version {found} unsupported (this build reads {supported})"
            ),
            StoreError::AlreadyExists { root } => {
                write!(f, "store already exists at {}", root.display())
            }
            StoreError::TruncatedFrame { path, offset } => {
                write!(f, "truncated frame at byte {offset} of {}", path.display())
            }
            StoreError::ChecksumMismatch { path, offset } => write!(
                f,
                "frame checksum mismatch at byte {offset} of {}",
                path.display()
            ),
            StoreError::Codec { path, detail } => {
                write!(f, "undecodable frame in {}: {detail}", path.display())
            }
            StoreError::SegmentMissing { path } => {
                write!(f, "segment file missing: {}", path.display())
            }
            StoreError::SegmentTruncated {
                path,
                committed,
                actual,
            } => write!(
                f,
                "segment {} truncated: manifest committed {committed} bytes, file has {actual}",
                path.display()
            ),
            StoreError::ZoneMapMismatch { path, detail } => write!(
                f,
                "segment {} disagrees with its zone map: {detail}",
                path.display()
            ),
            StoreError::NonContiguous { expected, got } => write!(
                f,
                "non-contiguous append: expected block {expected}, got {got}"
            ),
            StoreError::ReceiptCountMismatch {
                block,
                txs,
                receipts,
            } => write!(
                f,
                "block {block} has {txs} transactions but {receipts} receipts"
            ),
            StoreError::TimelineMismatch { detail } => {
                write!(f, "ingest timeline mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
