//! [`StoreWriter`]: append-only ingest into a segmented store.
//!
//! Appends are durable only after [`StoreWriter::commit`], which fsyncs
//! the open tail segment and atomically replaces the manifest. A crash
//! between appends loses nothing that was committed: the stale manifest
//! still names the previous consistent state, and the next writer
//! truncates uncommitted tail bytes before appending.

use crate::error::StoreError;
use crate::manifest::{Manifest, SegmentMeta};
use crate::rollup::RollupBuilder;
use crate::segment::{compacted_file_name, read_segment, BlockEntry, SegmentWriter};
use mev_chain::ChainStore;
use mev_types::{Block, Receipt, Timeline};
use std::fs;
use std::path::{Path, PathBuf};

/// What an [`StoreWriter::ingest`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Blocks appended by this pass.
    pub appended: u64,
    /// Blocks the store already held (incremental re-ingest skips them).
    pub skipped: u64,
    /// Segments sealed during the pass.
    pub segments_sealed: u64,
}

/// What a [`StoreWriter::compact`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    pub segments_before: u64,
    pub segments_after: u64,
    /// Merged tier files written this pass.
    pub tiers_written: u64,
    /// Source segments that went into a merged tier.
    pub segments_merged: u64,
    /// Blocks now living in a newly-written tier.
    pub blocks_merged: u64,
    /// Replaced segment/sidecar files and crash orphans deleted.
    pub files_removed: u64,
    /// False only when the crash-before-commit test hook fired: the new
    /// tier files exist on disk but the old manifest is still the live
    /// one.
    pub committed: bool,
}

/// Append-only writer over a store directory.
pub struct StoreWriter {
    root: PathBuf,
    manifest: Manifest,
    tail: Option<SegmentWriter>,
    /// Height the next appended block must carry.
    next_block: u64,
    /// Segments sealed or grown since the last manifest commit.
    dirty: bool,
    /// Running aggregate tables; snapshotted into the manifest at commit.
    rollups: RollupBuilder,
    /// Crash-simulation test hook (see
    /// [`StoreWriter::simulate_crash_before_commit`]).
    crash_before_commit: bool,
}

impl StoreWriter {
    /// Create a fresh store at `root` (the directory is created). Errors
    /// with [`StoreError::AlreadyExists`] if a manifest is already there.
    pub fn create(
        root: &Path,
        timeline: Timeline,
        segment_blocks: u64,
    ) -> Result<StoreWriter, StoreError> {
        fs::create_dir_all(root).map_err(|e| StoreError::io("create store dir", root, e))?;
        if root.join(crate::manifest::MANIFEST_FILE).exists() {
            return Err(StoreError::AlreadyExists {
                root: root.to_path_buf(),
            });
        }
        let manifest = Manifest::new(timeline, segment_blocks);
        let next_block = manifest.timeline.genesis_number;
        let mut w = StoreWriter {
            root: root.to_path_buf(),
            manifest,
            tail: None,
            next_block,
            dirty: true,
            rollups: RollupBuilder::new(),
            crash_before_commit: false,
        };
        // Commit the empty store immediately so `open` and readers see a
        // valid (if empty) manifest.
        w.commit()?;
        Ok(w)
    }

    /// Open an existing store for appending. The committed partial tail
    /// segment (if any) is reopened in place; uncommitted bytes past the
    /// manifest's record are truncated away.
    pub fn open(root: &Path) -> Result<StoreWriter, StoreError> {
        let manifest = Manifest::load(root)?;
        let mut tail = None;
        if let Some(last) = manifest.segments.last() {
            if last.blocks < manifest.segment_blocks {
                tail = Some(SegmentWriter::reopen(root, last)?);
            }
        }
        let rollups = match &manifest.rollups {
            Some(block) => RollupBuilder::from_block(block),
            // Pre-rollup archive: re-derive the tables from the committed
            // segments once; the next commit persists them.
            None => {
                let mut b = RollupBuilder::new();
                if !manifest.segments.is_empty() {
                    for seg in &manifest.segments {
                        for entry in read_segment(root, seg)? {
                            b.add_block(&manifest.timeline, &entry);
                        }
                    }
                    mev_obs::counter("store.rollup.rebuilt").inc();
                }
                b
            }
        };
        let next_block = manifest
            .head_block()
            .map(|h| h + 1)
            .unwrap_or(manifest.timeline.genesis_number);
        let w = StoreWriter {
            root: root.to_path_buf(),
            manifest,
            tail,
            next_block,
            dirty: false,
            rollups,
            crash_before_commit: false,
        };
        // A crash mid-compaction can leave fresh tier files that never
        // made it into a manifest; they are dead weight, never live data.
        w.remove_orphans();
        Ok(w)
    }

    /// Open if a manifest exists, otherwise create.
    pub fn open_or_create(
        root: &Path,
        timeline: Timeline,
        segment_blocks: u64,
    ) -> Result<StoreWriter, StoreError> {
        if root.join(crate::manifest::MANIFEST_FILE).exists() {
            StoreWriter::open(root)
        } else {
            StoreWriter::create(root, timeline, segment_blocks)
        }
    }

    /// The store's timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.manifest.timeline
    }

    /// Height of the last *committed* block.
    pub fn committed_head(&self) -> Option<u64> {
        self.manifest.head_block()
    }

    /// Height the next append must carry (counts uncommitted appends).
    pub fn next_block(&self) -> u64 {
        self.next_block
    }

    /// Append one block. Must extend the store by exactly one height.
    /// Not durable until [`StoreWriter::commit`].
    pub fn append(&mut self, block: &Block, receipts: &[Receipt]) -> Result<(), StoreError> {
        let number = block.header.number;
        if number != self.next_block {
            return Err(StoreError::NonContiguous {
                expected: self.next_block,
                got: number,
            });
        }
        if self.tail.is_none() {
            let index = self.manifest.segments.len() as u64;
            // A committed partial tail was reopened by `open`; reaching
            // here means a fresh segment starts at this block.
            let file = self.fresh_segment_file(index);
            self.tail = Some(SegmentWriter::create_named(
                &self.root, file, index, number,
            )?);
        }
        let entry = BlockEntry {
            block: block.clone(),
            receipts: receipts.to_vec(),
        };
        let sealed = {
            let Some(tail) = self.tail.as_mut() else {
                // Unreachable by construction; surface as corruption
                // rather than panicking.
                return Err(StoreError::ManifestInvalid {
                    detail: "tail segment vanished mid-append".to_string(),
                });
            };
            tail.append(&entry)?;
            tail.blocks() >= self.manifest.segment_blocks
        };
        self.rollups.add_block(&self.manifest.timeline, &entry);
        self.next_block = number + 1;
        self.dirty = true;
        if sealed {
            self.seal_tail()?;
        }
        Ok(())
    }

    /// Name for a fresh tail segment at `index`. Normally the canonical
    /// `seg-{index:05}.seg`, but compaction lets surviving segments keep
    /// file names that no longer match their position, so the canonical
    /// name may already belong to a live file — skip forward until free.
    fn fresh_segment_file(&self, index: u64) -> String {
        let referenced: std::collections::HashSet<&str> = self
            .manifest
            .segments
            .iter()
            .map(|s| s.file.as_str())
            .collect();
        let mut k = index;
        loop {
            let name = crate::segment::segment_file_name(k);
            if !referenced.contains(name.as_str()) {
                return name;
            }
            k += 1;
        }
    }

    /// Fsync the full tail segment, write its final sidecar index,
    /// record its meta, and drop it.
    fn seal_tail(&mut self) -> Result<(), StoreError> {
        if let Some(mut tail) = self.tail.take() {
            tail.sync()?;
            tail.write_index(&self.root)?;
            if let Some(meta) = tail.meta() {
                self.record_meta(meta);
                mev_obs::counter("store.ingest.segments_sealed").inc();
            }
        }
        Ok(())
    }

    /// Replace-or-push `meta` in the in-memory manifest view.
    fn record_meta(&mut self, meta: SegmentMeta) {
        match self
            .manifest
            .segments
            .iter_mut()
            .find(|s| s.index == meta.index)
        {
            Some(slot) => *slot = meta,
            None => self.manifest.segments.push(meta),
        }
    }

    /// Make every append durable: fsync the partial tail (if any),
    /// rewrite its sidecar index, record its zone map, snapshot the
    /// rollup tables, and atomically replace the manifest. The manifest
    /// rename is the single commit point — segment bytes, index bytes,
    /// and rollups land before it and become visible together.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if !self.dirty {
            return Ok(());
        }
        let tail_meta = match self.tail.as_mut() {
            Some(tail) => {
                tail.sync()?;
                tail.write_index(&self.root)?;
                tail.meta()
            }
            None => None,
        };
        if let Some(meta) = tail_meta {
            self.record_meta(meta);
        }
        self.manifest.rollups = self.rollups.to_block();
        self.manifest.validate()?;
        self.manifest.commit(&self.root)?;
        self.dirty = false;
        Ok(())
    }

    /// Ingest an in-memory archive: append every block the store does not
    /// yet hold, then commit. Re-running over the same (or a grown) chain
    /// appends only the new suffix — the incremental re-ingest path.
    pub fn ingest(&mut self, chain: &ChainStore) -> Result<IngestStats, StoreError> {
        let _t = mev_obs::span("store.ingest.ns");
        let tl = chain.timeline();
        let mine = &self.manifest.timeline;
        if tl.genesis_number != mine.genesis_number
            || tl.genesis_timestamp != mine.genesis_timestamp
            || tl.seconds_per_block != mine.seconds_per_block
        {
            return Err(StoreError::TimelineMismatch {
                detail: format!(
                    "chain genesis {} / store genesis {}",
                    tl.genesis_number, mine.genesis_number
                ),
            });
        }
        let sealed_before = mev_obs::counter("store.ingest.segments_sealed").get();
        let mut stats = IngestStats::default();
        for (block, receipts) in chain.iter() {
            if block.header.number < self.next_block {
                stats.skipped += 1;
                continue;
            }
            self.append(block, receipts)?;
            stats.appended += 1;
        }
        self.commit()?;
        stats.segments_sealed =
            mev_obs::counter("store.ingest.segments_sealed").get() - sealed_before;
        mev_obs::counter("store.ingest.blocks").add(stats.appended);
        Ok(stats)
    }

    /// Ingest only the chain's new tail: append every block past
    /// [`StoreWriter::next_block`], then commit. Equivalent to
    /// [`StoreWriter::ingest`] but O(tail) instead of O(chain) per call —
    /// the live-follow hot path, where the chain grows by a few blocks
    /// between cycles and re-walking the whole history to skip it would
    /// dominate.
    pub fn ingest_tail(&mut self, chain: &ChainStore) -> Result<IngestStats, StoreError> {
        let _t = mev_obs::span("store.ingest_tail.ns");
        let tl = chain.timeline();
        let mine = &self.manifest.timeline;
        if tl.genesis_number != mine.genesis_number
            || tl.genesis_timestamp != mine.genesis_timestamp
            || tl.seconds_per_block != mine.seconds_per_block
        {
            return Err(StoreError::TimelineMismatch {
                detail: format!(
                    "chain genesis {} / store genesis {}",
                    tl.genesis_number, mine.genesis_number
                ),
            });
        }
        let sealed_before = mev_obs::counter("store.ingest.segments_sealed").get();
        let mut stats = IngestStats::default();
        if let Some(head) = chain.head_number() {
            for (block, receipts) in chain.range(self.next_block, head) {
                self.append(block, receipts)?;
                stats.appended += 1;
            }
        }
        self.commit()?;
        stats.segments_sealed =
            mev_obs::counter("store.ingest.segments_sealed").get() - sealed_before;
        mev_obs::counter("store.ingest.blocks").add(stats.appended);
        Ok(stats)
    }

    /// Merge runs of small sealed segments into larger tiers holding up to
    /// `factor` × `segment_blocks` blocks each, with the address column of
    /// the rebuilt sidecars dictionary-compressed. The partial tail (if
    /// any) is never rewritten, only renumbered. The swap is atomic: new
    /// tier files and sidecars are written and fsynced first, then one
    /// manifest rename makes them live; a crash at any earlier point
    /// leaves the old manifest fully live and the next open sweeps the
    /// orphaned tier files.
    pub fn compact(&mut self, factor: u64) -> Result<CompactionStats, StoreError> {
        self.compact_opts(factor, true)
    }

    /// [`StoreWriter::compact`] with an explicit choice of sidecar
    /// encoding for the rebuilt tiers.
    pub fn compact_opts(
        &mut self,
        factor: u64,
        dict_addrs: bool,
    ) -> Result<CompactionStats, StoreError> {
        let _t = mev_obs::span("store.compact.ns");
        // Start from a committed state so the manifest we rewrite is the
        // one on disk and the tail's committed meta is current.
        self.commit()?;
        let segment_blocks = self.manifest.segment_blocks;
        let tier_blocks = factor.max(2) * segment_blocks;
        let mut stats = CompactionStats {
            segments_before: self.manifest.segments.len() as u64,
            committed: true,
            ..CompactionStats::default()
        };

        // Greedily group consecutive segments into tiers. Sealed segments
        // accumulate until the tier is full; the partial tail always
        // stands alone (it is still being appended to, in place).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut current_blocks = 0u64;
        for (i, seg) in self.manifest.segments.iter().enumerate() {
            let partial = seg.blocks < segment_blocks;
            if (partial || current_blocks + seg.blocks > tier_blocks) && !current.is_empty() {
                groups.push(std::mem::take(&mut current));
                current_blocks = 0;
            }
            if partial {
                groups.push(vec![i]);
            } else {
                current.push(i);
                current_blocks += seg.blocks;
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }
        if !groups.iter().any(|g| g.len() >= 2) {
            stats.segments_after = stats.segments_before;
            return Ok(stats);
        }

        // Fresh tier files are named after the commit sequence the swap
        // will carry; the sequence only moves forward, so a crashed pass
        // can never collide with a committed file.
        let name_seq = self.manifest.commit_seq + 1;
        let mut new_segments: Vec<SegmentMeta> = Vec::with_capacity(groups.len());
        for (pos, group) in groups.iter().enumerate() {
            if group.len() == 1 {
                let mut meta = self.manifest.segments[group[0]].clone();
                meta.index = pos as u64;
                new_segments.push(meta);
                continue;
            }
            let first_block = self.manifest.segments[group[0]].first_block;
            let mut w = SegmentWriter::create_named(
                &self.root,
                compacted_file_name(name_seq, pos as u64),
                pos as u64,
                first_block,
            )?;
            for &i in group {
                let src = &self.manifest.segments[i];
                for entry in read_segment(&self.root, src)? {
                    w.append(&entry)?;
                }
                stats.segments_merged += 1;
            }
            w.sync()?;
            w.write_index_with(&self.root, dict_addrs)?;
            let Some(meta) = w.meta() else {
                return Err(StoreError::ManifestInvalid {
                    detail: format!("compacted tier {pos} sealed empty"),
                });
            };
            stats.blocks_merged += meta.blocks;
            stats.tiers_written += 1;
            new_segments.push(meta);
        }

        if self.crash_before_commit {
            // Test hook: the new tier files are on disk but the manifest
            // swap never happens — exactly a crash between fsync and
            // rename. The in-memory view stays on the old manifest too.
            stats.committed = false;
            return Ok(stats);
        }

        let old_segments = std::mem::replace(&mut self.manifest.segments, new_segments);
        if let Err(e) = self.manifest.validate() {
            self.manifest.segments = old_segments;
            return Err(e);
        }
        self.manifest.commit(&self.root)?;
        if let Some(tail) = self.tail.as_mut() {
            tail.renumber(self.manifest.segments.len() as u64 - 1);
        }
        stats.segments_after = self.manifest.segments.len() as u64;
        stats.files_removed = self.remove_orphans();
        mev_obs::counter("store.compact.tiers").add(stats.tiers_written);
        mev_obs::counter("store.compact.segments_merged").add(stats.segments_merged);
        Ok(stats)
    }

    /// Crash-simulation hook for compaction tests: when set, the next
    /// [`StoreWriter::compact`] writes its tier files but returns just
    /// before the manifest swap, as a crash there would.
    pub fn simulate_crash_before_commit(&mut self, yes: bool) {
        self.crash_before_commit = yes;
    }

    /// Delete store files the live manifest does not reference: segment
    /// and sidecar files replaced by a committed compaction, tier files
    /// from a compaction that crashed before its commit, and stray
    /// atomic-write temporaries. Best-effort; returns the count removed.
    fn remove_orphans(&self) -> u64 {
        let mut referenced = std::collections::HashSet::new();
        for seg in &self.manifest.segments {
            referenced.insert(seg.file.clone());
            // Protect the conventional sidecar name even when the meta
            // predates postings (pre-rollup archives degrade to scans and
            // may still adopt the sidecar later).
            referenced.insert(crate::postings::sidecar_file_name(&seg.file));
            if let Some(im) = &seg.postings {
                referenced.insert(im.file.clone());
            }
        }
        let Ok(dir) = fs::read_dir(&self.root) else {
            return 0;
        };
        let mut removed = 0u64;
        for entry in dir.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_store_file = name.starts_with("seg-")
                && (name.ends_with(".seg") || name.ends_with(".idx"))
                && !referenced.contains(name);
            let stale_tmp = name.starts_with('.') && name.ends_with(".tmp");
            if (stale_store_file || stale_tmp) && fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        mev_obs::counter("store.compact.orphans_removed").add(removed);
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{scratch_dir, test_chain};

    #[test]
    fn create_then_open_empty() {
        let dir = scratch_dir("writer-empty");
        let w = StoreWriter::create(&dir, Timeline::paper_span(100), 4).unwrap();
        assert_eq!(w.committed_head(), None);
        drop(w);
        let w2 = StoreWriter::open(&dir).unwrap();
        assert_eq!(w2.committed_head(), None);
        assert!(matches!(
            StoreWriter::create(&dir, Timeline::paper_span(100), 4),
            Err(StoreError::AlreadyExists { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_seals_and_commits() {
        let dir = scratch_dir("writer-ingest");
        let chain = test_chain(10, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        let stats = w.ingest(&chain).unwrap();
        assert_eq!(stats.appended, 10);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.segments_sealed, 2); // 4 + 4 + partial 2
        assert_eq!(w.committed_head(), Some(10_000_009));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reingest_is_incremental() {
        let dir = scratch_dir("writer-reingest");
        let small = test_chain(6, 2);
        let grown = test_chain(11, 2);
        let mut w = StoreWriter::create(&dir, small.timeline().clone(), 4).unwrap();
        w.ingest(&small).unwrap();
        drop(w);
        let mut w2 = StoreWriter::open(&dir).unwrap();
        let again = w2.ingest(&small).unwrap();
        assert_eq!(again.appended, 0);
        assert_eq!(again.skipped, 6);
        let more = w2.ingest(&grown).unwrap();
        assert_eq!(more.appended, 5);
        assert_eq!(more.skipped, 6);
        assert_eq!(w2.committed_head(), Some(10_000_010));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_tail_appends_only_the_suffix() {
        let dir = scratch_dir("writer-ingest-tail");
        let small = test_chain(6, 2);
        let grown = test_chain(11, 2);
        let mut w = StoreWriter::create(&dir, small.timeline().clone(), 4).unwrap();
        w.ingest_tail(&small).unwrap();
        // Same chain again: nothing to append, nothing walked.
        let again = w.ingest_tail(&small).unwrap();
        assert_eq!(again, IngestStats::default());
        let more = w.ingest_tail(&grown).unwrap();
        assert_eq!(more.appended, 5);
        assert_eq!(more.skipped, 0);
        assert_eq!(w.committed_head(), Some(10_000_010));
        // The incremental result is identical to a one-shot ingest
        // (commit_seq aside, which counts commits, not content).
        let batch_dir = scratch_dir("writer-ingest-tail-batch");
        let mut batch = StoreWriter::create(&batch_dir, grown.timeline().clone(), 4).unwrap();
        batch.ingest(&grown).unwrap();
        let a = Manifest::load(&dir).unwrap();
        let b = Manifest::load(&batch_dir).unwrap();
        assert_eq!(a.segments, b.segments, "segment metas diverged");
        assert_eq!(a.rollups, b.rollups, "rollups diverged");
        for seg in &a.segments {
            let x = fs::read(dir.join(&seg.file)).unwrap();
            let y = fs::read(batch_dir.join(&seg.file)).unwrap();
            assert_eq!(x, y, "segment {} bytes diverged", seg.file);
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&batch_dir).ok();
    }

    #[test]
    fn rollups_and_sidecars_ride_the_manifest_commit() {
        let dir = scratch_dir("writer-rollups");
        let chain = test_chain(10, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        w.ingest(&chain).unwrap();
        let m = Manifest::load(&dir).unwrap();
        let rollups = m.rollups.as_ref().unwrap();
        assert_eq!(Some(rollups.head_block), m.head_block());
        assert_eq!(rollups.logs, m.log_count());
        // Every committed segment — sealed and tail alike — carries its
        // sidecar, and the sidecar file is exactly the committed length.
        for seg in &m.segments {
            let im = seg.postings.as_ref().unwrap();
            assert_eq!(im.rows, seg.log_count);
            let len = fs::metadata(dir.join(&im.file)).unwrap().len();
            assert_eq!(len, im.bytes);
        }
        // Growing the store keeps everything in sync.
        drop(w);
        let grown = test_chain(13, 2);
        let mut w2 = StoreWriter::open(&dir).unwrap();
        w2.ingest(&grown).unwrap();
        let m2 = Manifest::load(&dir).unwrap();
        assert_eq!(m2.rollups.as_ref().unwrap().logs, m2.log_count());
        assert!(m2.segments.iter().all(|s| s.postings.is_some()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_rollup_archive_is_rebuilt_on_open() {
        let dir = scratch_dir("writer-rebuild");
        let chain = test_chain(6, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        w.ingest(&chain).unwrap();
        drop(w);
        // Rewrite the manifest as an older archive would have written it:
        // no rollups, no per-segment index metadata.
        let path = dir.join(crate::manifest::MANIFEST_FILE);
        let mut v: serde_json::Value = serde_json::from_slice(&fs::read(&path).unwrap()).unwrap();
        v.as_object_mut().unwrap().remove("rollups");
        for seg in v["segments"].as_array_mut().unwrap() {
            seg.as_object_mut().unwrap().remove("postings");
        }
        fs::write(&path, serde_json::to_vec(&v).unwrap()).unwrap();
        // Opening rebuilds the rollup tables from segment bytes; the next
        // commit persists them again.
        let grown = test_chain(7, 2);
        let mut w2 = StoreWriter::open(&dir).unwrap();
        w2.ingest(&grown).unwrap();
        let m = Manifest::load(&dir).unwrap();
        let rollups = m.rollups.as_ref().unwrap();
        assert_eq!(Some(rollups.head_block), m.head_block());
        assert_eq!(rollups.logs, m.log_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_contiguous_append_is_an_error() {
        let dir = scratch_dir("writer-gap");
        let chain = test_chain(3, 1);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        let (b2, r2) = chain
            .iter()
            .nth(2)
            .map(|(b, r)| (b.clone(), r.to_vec()))
            .unwrap();
        assert!(matches!(
            w.append(&b2, &r2),
            Err(StoreError::NonContiguous {
                expected: 10_000_000,
                got: 10_000_002
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeline_mismatch_is_an_error() {
        let dir = scratch_dir("writer-timeline");
        let chain = test_chain(3, 1);
        let mut w = StoreWriter::create(&dir, Timeline::paper_span(500), 4).unwrap();
        assert!(matches!(
            w.ingest(&chain),
            Err(StoreError::TimelineMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_merges_sealed_segments_into_tiers() {
        let dir = scratch_dir("writer-compact");
        let chain = test_chain(11, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 2).unwrap();
        w.ingest(&chain).unwrap();
        // 5 sealed segments of 2 + a partial tail of 1.
        assert_eq!(Manifest::load(&dir).unwrap().segments.len(), 6);
        let stats = w.compact(2).unwrap();
        assert!(stats.committed);
        assert_eq!(stats.segments_before, 6);
        // [0,1] and [2,3] merge into 4-block tiers; segment 4 is a lone
        // sealed segment and the tail stands alone: 4 segments remain.
        assert_eq!(stats.segments_after, 4);
        assert_eq!(stats.tiers_written, 2);
        assert_eq!(stats.segments_merged, 4);
        assert_eq!(stats.blocks_merged, 8);
        let m = Manifest::load(&dir).unwrap();
        assert_eq!(m.segments.len(), 4);
        assert_eq!(m.head_block(), Some(10_000_010));
        // Every block survives, bit-identical, through the new metas.
        let mut numbers = Vec::new();
        for seg in &m.segments {
            for entry in read_segment(&dir, seg).unwrap() {
                numbers.push(entry.block.header.number);
            }
        }
        assert_eq!(numbers, (10_000_000..=10_000_010).collect::<Vec<_>>());
        // Replaced files are gone; the store keeps appending fine.
        assert!(!dir.join("seg-00000.seg").exists());
        let grown = test_chain(14, 2);
        w.ingest(&grown).unwrap();
        assert_eq!(w.committed_head(), Some(10_000_013));
        drop(w);
        let w2 = StoreWriter::open(&dir).unwrap();
        assert_eq!(w2.committed_head(), Some(10_000_013));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_without_enough_segments_is_a_no_op() {
        let dir = scratch_dir("writer-compact-noop");
        let chain = test_chain(5, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        w.ingest(&chain).unwrap();
        let before = Manifest::load(&dir).unwrap();
        let stats = w.compact(4).unwrap();
        assert!(stats.committed);
        assert_eq!(stats.tiers_written, 0);
        assert_eq!(stats.segments_before, stats.segments_after);
        assert_eq!(Manifest::load(&dir).unwrap().segments, before.segments);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_before_commit_leaves_the_old_manifest_live() {
        let dir = scratch_dir("writer-compact-crash");
        let chain = test_chain(9, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 2).unwrap();
        w.ingest(&chain).unwrap();
        let before = Manifest::load(&dir).unwrap();
        w.simulate_crash_before_commit(true);
        let stats = w.compact(2).unwrap();
        assert!(!stats.committed);
        assert_eq!(stats.tiers_written, 2);
        // The manifest on disk is untouched and every file it names is
        // still present and readable.
        let after = Manifest::load(&dir).unwrap();
        assert_eq!(after.segments, before.segments);
        assert_eq!(after.commit_seq, before.commit_seq);
        for seg in &after.segments {
            read_segment(&dir, seg).unwrap();
        }
        // Orphaned tier files exist until the next open sweeps them.
        let orphan = dir.join(compacted_file_name(before.commit_seq + 1, 0));
        assert!(orphan.exists());
        drop(w);
        let mut w2 = StoreWriter::open(&dir).unwrap();
        assert!(!orphan.exists(), "open() must sweep crashed tier files");
        // A clean retry then succeeds.
        let stats = w2.compact(2).unwrap();
        assert!(stats.committed);
        assert_eq!(stats.tiers_written, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_appends_are_invisible_after_reopen() {
        let dir = scratch_dir("writer-uncommitted");
        let chain = test_chain(6, 1);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 10).unwrap();
        let mut it = chain.iter();
        let (b0, r0) = it.next().unwrap();
        w.append(b0, r0).unwrap();
        w.commit().unwrap();
        let (b1, r1) = it.next().unwrap();
        w.append(b1, r1).unwrap();
        // No commit: simulate a crash by dropping the writer here.
        drop(w);
        let w2 = StoreWriter::open(&dir).unwrap();
        assert_eq!(w2.committed_head(), Some(10_000_000));
        assert_eq!(w2.next_block(), 10_000_001);
        std::fs::remove_dir_all(&dir).ok();
    }
}
