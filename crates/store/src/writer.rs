//! [`StoreWriter`]: append-only ingest into a segmented store.
//!
//! Appends are durable only after [`StoreWriter::commit`], which fsyncs
//! the open tail segment and atomically replaces the manifest. A crash
//! between appends loses nothing that was committed: the stale manifest
//! still names the previous consistent state, and the next writer
//! truncates uncommitted tail bytes before appending.

use crate::error::StoreError;
use crate::manifest::{Manifest, SegmentMeta};
use crate::rollup::RollupBuilder;
use crate::segment::{read_segment, BlockEntry, SegmentWriter};
use mev_chain::ChainStore;
use mev_types::{Block, Receipt, Timeline};
use std::fs;
use std::path::{Path, PathBuf};

/// What an [`StoreWriter::ingest`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Blocks appended by this pass.
    pub appended: u64,
    /// Blocks the store already held (incremental re-ingest skips them).
    pub skipped: u64,
    /// Segments sealed during the pass.
    pub segments_sealed: u64,
}

/// Append-only writer over a store directory.
pub struct StoreWriter {
    root: PathBuf,
    manifest: Manifest,
    tail: Option<SegmentWriter>,
    /// Height the next appended block must carry.
    next_block: u64,
    /// Segments sealed or grown since the last manifest commit.
    dirty: bool,
    /// Running aggregate tables; snapshotted into the manifest at commit.
    rollups: RollupBuilder,
}

impl StoreWriter {
    /// Create a fresh store at `root` (the directory is created). Errors
    /// with [`StoreError::AlreadyExists`] if a manifest is already there.
    pub fn create(
        root: &Path,
        timeline: Timeline,
        segment_blocks: u64,
    ) -> Result<StoreWriter, StoreError> {
        fs::create_dir_all(root).map_err(|e| StoreError::io("create store dir", root, e))?;
        if root.join(crate::manifest::MANIFEST_FILE).exists() {
            return Err(StoreError::AlreadyExists {
                root: root.to_path_buf(),
            });
        }
        let manifest = Manifest::new(timeline, segment_blocks);
        let next_block = manifest.timeline.genesis_number;
        let mut w = StoreWriter {
            root: root.to_path_buf(),
            manifest,
            tail: None,
            next_block,
            dirty: true,
            rollups: RollupBuilder::new(),
        };
        // Commit the empty store immediately so `open` and readers see a
        // valid (if empty) manifest.
        w.commit()?;
        Ok(w)
    }

    /// Open an existing store for appending. The committed partial tail
    /// segment (if any) is reopened in place; uncommitted bytes past the
    /// manifest's record are truncated away.
    pub fn open(root: &Path) -> Result<StoreWriter, StoreError> {
        let manifest = Manifest::load(root)?;
        let mut tail = None;
        if let Some(last) = manifest.segments.last() {
            if last.blocks < manifest.segment_blocks {
                tail = Some(SegmentWriter::reopen(root, last)?);
            }
        }
        let rollups = match &manifest.rollups {
            Some(block) => RollupBuilder::from_block(block),
            // Pre-rollup archive: re-derive the tables from the committed
            // segments once; the next commit persists them.
            None => {
                let mut b = RollupBuilder::new();
                if !manifest.segments.is_empty() {
                    for seg in &manifest.segments {
                        for entry in read_segment(root, seg)? {
                            b.add_block(&manifest.timeline, &entry);
                        }
                    }
                    mev_obs::counter("store.rollup.rebuilt").inc();
                }
                b
            }
        };
        let next_block = manifest
            .head_block()
            .map(|h| h + 1)
            .unwrap_or(manifest.timeline.genesis_number);
        Ok(StoreWriter {
            root: root.to_path_buf(),
            manifest,
            tail,
            next_block,
            dirty: false,
            rollups,
        })
    }

    /// Open if a manifest exists, otherwise create.
    pub fn open_or_create(
        root: &Path,
        timeline: Timeline,
        segment_blocks: u64,
    ) -> Result<StoreWriter, StoreError> {
        if root.join(crate::manifest::MANIFEST_FILE).exists() {
            StoreWriter::open(root)
        } else {
            StoreWriter::create(root, timeline, segment_blocks)
        }
    }

    /// The store's timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.manifest.timeline
    }

    /// Height of the last *committed* block.
    pub fn committed_head(&self) -> Option<u64> {
        self.manifest.head_block()
    }

    /// Height the next append must carry (counts uncommitted appends).
    pub fn next_block(&self) -> u64 {
        self.next_block
    }

    /// Append one block. Must extend the store by exactly one height.
    /// Not durable until [`StoreWriter::commit`].
    pub fn append(&mut self, block: &Block, receipts: &[Receipt]) -> Result<(), StoreError> {
        let number = block.header.number;
        if number != self.next_block {
            return Err(StoreError::NonContiguous {
                expected: self.next_block,
                got: number,
            });
        }
        if self.tail.is_none() {
            let index = self.manifest.segments.len() as u64;
            // A committed partial tail was reopened by `open`; reaching
            // here means a fresh segment starts at this block.
            self.tail = Some(SegmentWriter::create(&self.root, index, number)?);
        }
        let entry = BlockEntry {
            block: block.clone(),
            receipts: receipts.to_vec(),
        };
        let sealed = {
            let Some(tail) = self.tail.as_mut() else {
                // Unreachable by construction; surface as corruption
                // rather than panicking.
                return Err(StoreError::ManifestInvalid {
                    detail: "tail segment vanished mid-append".to_string(),
                });
            };
            tail.append(&entry)?;
            tail.blocks() >= self.manifest.segment_blocks
        };
        self.rollups.add_block(&self.manifest.timeline, &entry);
        self.next_block = number + 1;
        self.dirty = true;
        if sealed {
            self.seal_tail()?;
        }
        Ok(())
    }

    /// Fsync the full tail segment, write its final sidecar index,
    /// record its meta, and drop it.
    fn seal_tail(&mut self) -> Result<(), StoreError> {
        if let Some(mut tail) = self.tail.take() {
            tail.sync()?;
            tail.write_index(&self.root)?;
            if let Some(meta) = tail.meta() {
                self.record_meta(meta);
                mev_obs::counter("store.ingest.segments_sealed").inc();
            }
        }
        Ok(())
    }

    /// Replace-or-push `meta` in the in-memory manifest view.
    fn record_meta(&mut self, meta: SegmentMeta) {
        match self
            .manifest
            .segments
            .iter_mut()
            .find(|s| s.index == meta.index)
        {
            Some(slot) => *slot = meta,
            None => self.manifest.segments.push(meta),
        }
    }

    /// Make every append durable: fsync the partial tail (if any),
    /// rewrite its sidecar index, record its zone map, snapshot the
    /// rollup tables, and atomically replace the manifest. The manifest
    /// rename is the single commit point — segment bytes, index bytes,
    /// and rollups land before it and become visible together.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if !self.dirty {
            return Ok(());
        }
        let tail_meta = match self.tail.as_mut() {
            Some(tail) => {
                tail.sync()?;
                tail.write_index(&self.root)?;
                tail.meta()
            }
            None => None,
        };
        if let Some(meta) = tail_meta {
            self.record_meta(meta);
        }
        self.manifest.rollups = self.rollups.to_block();
        self.manifest.validate()?;
        self.manifest.commit(&self.root)?;
        self.dirty = false;
        Ok(())
    }

    /// Ingest an in-memory archive: append every block the store does not
    /// yet hold, then commit. Re-running over the same (or a grown) chain
    /// appends only the new suffix — the incremental re-ingest path.
    pub fn ingest(&mut self, chain: &ChainStore) -> Result<IngestStats, StoreError> {
        let _t = mev_obs::span("store.ingest.ns");
        let tl = chain.timeline();
        let mine = &self.manifest.timeline;
        if tl.genesis_number != mine.genesis_number
            || tl.genesis_timestamp != mine.genesis_timestamp
            || tl.seconds_per_block != mine.seconds_per_block
        {
            return Err(StoreError::TimelineMismatch {
                detail: format!(
                    "chain genesis {} / store genesis {}",
                    tl.genesis_number, mine.genesis_number
                ),
            });
        }
        let sealed_before = mev_obs::counter("store.ingest.segments_sealed").get();
        let mut stats = IngestStats::default();
        for (block, receipts) in chain.iter() {
            if block.header.number < self.next_block {
                stats.skipped += 1;
                continue;
            }
            self.append(block, receipts)?;
            stats.appended += 1;
        }
        self.commit()?;
        stats.segments_sealed =
            mev_obs::counter("store.ingest.segments_sealed").get() - sealed_before;
        mev_obs::counter("store.ingest.blocks").add(stats.appended);
        Ok(stats)
    }

    /// Ingest only the chain's new tail: append every block past
    /// [`StoreWriter::next_block`], then commit. Equivalent to
    /// [`StoreWriter::ingest`] but O(tail) instead of O(chain) per call —
    /// the live-follow hot path, where the chain grows by a few blocks
    /// between cycles and re-walking the whole history to skip it would
    /// dominate.
    pub fn ingest_tail(&mut self, chain: &ChainStore) -> Result<IngestStats, StoreError> {
        let _t = mev_obs::span("store.ingest_tail.ns");
        let tl = chain.timeline();
        let mine = &self.manifest.timeline;
        if tl.genesis_number != mine.genesis_number
            || tl.genesis_timestamp != mine.genesis_timestamp
            || tl.seconds_per_block != mine.seconds_per_block
        {
            return Err(StoreError::TimelineMismatch {
                detail: format!(
                    "chain genesis {} / store genesis {}",
                    tl.genesis_number, mine.genesis_number
                ),
            });
        }
        let sealed_before = mev_obs::counter("store.ingest.segments_sealed").get();
        let mut stats = IngestStats::default();
        if let Some(head) = chain.head_number() {
            for (block, receipts) in chain.range(self.next_block, head) {
                self.append(block, receipts)?;
                stats.appended += 1;
            }
        }
        self.commit()?;
        stats.segments_sealed =
            mev_obs::counter("store.ingest.segments_sealed").get() - sealed_before;
        mev_obs::counter("store.ingest.blocks").add(stats.appended);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{scratch_dir, test_chain};

    #[test]
    fn create_then_open_empty() {
        let dir = scratch_dir("writer-empty");
        let w = StoreWriter::create(&dir, Timeline::paper_span(100), 4).unwrap();
        assert_eq!(w.committed_head(), None);
        drop(w);
        let w2 = StoreWriter::open(&dir).unwrap();
        assert_eq!(w2.committed_head(), None);
        assert!(matches!(
            StoreWriter::create(&dir, Timeline::paper_span(100), 4),
            Err(StoreError::AlreadyExists { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_seals_and_commits() {
        let dir = scratch_dir("writer-ingest");
        let chain = test_chain(10, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        let stats = w.ingest(&chain).unwrap();
        assert_eq!(stats.appended, 10);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.segments_sealed, 2); // 4 + 4 + partial 2
        assert_eq!(w.committed_head(), Some(10_000_009));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reingest_is_incremental() {
        let dir = scratch_dir("writer-reingest");
        let small = test_chain(6, 2);
        let grown = test_chain(11, 2);
        let mut w = StoreWriter::create(&dir, small.timeline().clone(), 4).unwrap();
        w.ingest(&small).unwrap();
        drop(w);
        let mut w2 = StoreWriter::open(&dir).unwrap();
        let again = w2.ingest(&small).unwrap();
        assert_eq!(again.appended, 0);
        assert_eq!(again.skipped, 6);
        let more = w2.ingest(&grown).unwrap();
        assert_eq!(more.appended, 5);
        assert_eq!(more.skipped, 6);
        assert_eq!(w2.committed_head(), Some(10_000_010));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_tail_appends_only_the_suffix() {
        let dir = scratch_dir("writer-ingest-tail");
        let small = test_chain(6, 2);
        let grown = test_chain(11, 2);
        let mut w = StoreWriter::create(&dir, small.timeline().clone(), 4).unwrap();
        w.ingest_tail(&small).unwrap();
        // Same chain again: nothing to append, nothing walked.
        let again = w.ingest_tail(&small).unwrap();
        assert_eq!(again, IngestStats::default());
        let more = w.ingest_tail(&grown).unwrap();
        assert_eq!(more.appended, 5);
        assert_eq!(more.skipped, 0);
        assert_eq!(w.committed_head(), Some(10_000_010));
        // The incremental result is identical to a one-shot ingest
        // (commit_seq aside, which counts commits, not content).
        let batch_dir = scratch_dir("writer-ingest-tail-batch");
        let mut batch = StoreWriter::create(&batch_dir, grown.timeline().clone(), 4).unwrap();
        batch.ingest(&grown).unwrap();
        let a = Manifest::load(&dir).unwrap();
        let b = Manifest::load(&batch_dir).unwrap();
        assert_eq!(a.segments, b.segments, "segment metas diverged");
        assert_eq!(a.rollups, b.rollups, "rollups diverged");
        for seg in &a.segments {
            let x = fs::read(dir.join(&seg.file)).unwrap();
            let y = fs::read(batch_dir.join(&seg.file)).unwrap();
            assert_eq!(x, y, "segment {} bytes diverged", seg.file);
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&batch_dir).ok();
    }

    #[test]
    fn rollups_and_sidecars_ride_the_manifest_commit() {
        let dir = scratch_dir("writer-rollups");
        let chain = test_chain(10, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        w.ingest(&chain).unwrap();
        let m = Manifest::load(&dir).unwrap();
        let rollups = m.rollups.as_ref().unwrap();
        assert_eq!(Some(rollups.head_block), m.head_block());
        assert_eq!(rollups.logs, m.log_count());
        // Every committed segment — sealed and tail alike — carries its
        // sidecar, and the sidecar file is exactly the committed length.
        for seg in &m.segments {
            let im = seg.postings.as_ref().unwrap();
            assert_eq!(im.rows, seg.log_count);
            let len = fs::metadata(dir.join(&im.file)).unwrap().len();
            assert_eq!(len, im.bytes);
        }
        // Growing the store keeps everything in sync.
        drop(w);
        let grown = test_chain(13, 2);
        let mut w2 = StoreWriter::open(&dir).unwrap();
        w2.ingest(&grown).unwrap();
        let m2 = Manifest::load(&dir).unwrap();
        assert_eq!(m2.rollups.as_ref().unwrap().logs, m2.log_count());
        assert!(m2.segments.iter().all(|s| s.postings.is_some()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_rollup_archive_is_rebuilt_on_open() {
        let dir = scratch_dir("writer-rebuild");
        let chain = test_chain(6, 2);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        w.ingest(&chain).unwrap();
        drop(w);
        // Rewrite the manifest as an older archive would have written it:
        // no rollups, no per-segment index metadata.
        let path = dir.join(crate::manifest::MANIFEST_FILE);
        let mut v: serde_json::Value = serde_json::from_slice(&fs::read(&path).unwrap()).unwrap();
        v.as_object_mut().unwrap().remove("rollups");
        for seg in v["segments"].as_array_mut().unwrap() {
            seg.as_object_mut().unwrap().remove("postings");
        }
        fs::write(&path, serde_json::to_vec(&v).unwrap()).unwrap();
        // Opening rebuilds the rollup tables from segment bytes; the next
        // commit persists them again.
        let grown = test_chain(7, 2);
        let mut w2 = StoreWriter::open(&dir).unwrap();
        w2.ingest(&grown).unwrap();
        let m = Manifest::load(&dir).unwrap();
        let rollups = m.rollups.as_ref().unwrap();
        assert_eq!(Some(rollups.head_block), m.head_block());
        assert_eq!(rollups.logs, m.log_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_contiguous_append_is_an_error() {
        let dir = scratch_dir("writer-gap");
        let chain = test_chain(3, 1);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 4).unwrap();
        let (b2, r2) = chain
            .iter()
            .nth(2)
            .map(|(b, r)| (b.clone(), r.to_vec()))
            .unwrap();
        assert!(matches!(
            w.append(&b2, &r2),
            Err(StoreError::NonContiguous {
                expected: 10_000_000,
                got: 10_000_002
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeline_mismatch_is_an_error() {
        let dir = scratch_dir("writer-timeline");
        let chain = test_chain(3, 1);
        let mut w = StoreWriter::create(&dir, Timeline::paper_span(500), 4).unwrap();
        assert!(matches!(
            w.ingest(&chain),
            Err(StoreError::TimelineMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_appends_are_invisible_after_reopen() {
        let dir = scratch_dir("writer-uncommitted");
        let chain = test_chain(6, 1);
        let mut w = StoreWriter::create(&dir, chain.timeline().clone(), 10).unwrap();
        let mut it = chain.iter();
        let (b0, r0) = it.next().unwrap();
        w.append(b0, r0).unwrap();
        w.commit().unwrap();
        let (b1, r1) = it.next().unwrap();
        w.append(b1, r1).unwrap();
        // No commit: simulate a crash by dropping the writer here.
        drop(w);
        let w2 = StoreWriter::open(&dir).unwrap();
        assert_eq!(w2.committed_head(), Some(10_000_000));
        assert_eq!(w2.next_block(), 10_000_001);
        std::fs::remove_dir_all(&dir).ok();
    }
}
